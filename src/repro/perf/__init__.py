"""repro.perf — hot-path benchmarks, golden traces and the perf gate.

Three jobs:

* **Benchmark** the event/link hot path (``python -m repro.perf``):
  micro benches for the engine and links, meso benches running the
  permutation workload per fabric x tier, and the headline
  ``permutation_default`` wall-clock.  Results land in
  ``BENCH_perf.json``; the committed baseline lives in
  ``benchmarks/perf_baseline.json``.
* **Prove** optimizations behavior-preserving: compact run digests
  (:mod:`repro.perf.digest`) recorded as golden traces
  (:mod:`repro.perf.golden`, checked by ``tests/test_golden_traces.py``).
* **Gate** regressions: the CLI's ``--check`` fails when any bench's
  events/sec drops more than 10% below the committed baseline.
* **Profile** on demand: ``--profile N`` reruns each bench under
  cProfile and reports the top-N cumulative hotspots
  (``BENCH_profile.txt``), so the next perf hunt starts from data.
"""

from repro.perf.bench import (
    BenchResult,
    bench_engine_cancel_churn,
    bench_engine_events,
    bench_factories,
    bench_link_stream,
    default_permutation_spec,
    measure_process_stats,
    profile_bench,
    suite,
)
from repro.perf.digest import diff_digests, run_digest, values_hash
from repro.perf.golden import (
    DEFAULT_GOLDEN_DIR,
    check_goldens,
    compute_digest,
    golden_name,
    golden_specs,
    write_goldens,
)

#: A bench regresses when events/sec falls below (1 - this) x baseline.
#: Tightened from 20% when the calendar-queue engine raised the floor:
#: the committed baseline is refreshed in the same change, so the gate
#: now guards the new level, not the pre-optimization one.
REGRESSION_TOLERANCE = 0.10

__all__ = [
    "BenchResult",
    "DEFAULT_GOLDEN_DIR",
    "REGRESSION_TOLERANCE",
    "bench_engine_cancel_churn",
    "bench_engine_events",
    "bench_factories",
    "bench_link_stream",
    "profile_bench",
    "check_goldens",
    "compute_digest",
    "default_permutation_spec",
    "diff_digests",
    "golden_name",
    "golden_specs",
    "measure_process_stats",
    "run_digest",
    "suite",
    "values_hash",
    "write_goldens",
]
