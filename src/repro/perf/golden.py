"""Golden-trace matrix: recorded digests the simulator must reproduce.

A small fabric x tier x workload matrix of deliberately quick scenario
runs, each collapsed to a :func:`repro.perf.digest.run_digest`.  The
recorded digests live in ``tests/golden/*.json`` and are compared by
``tests/test_golden_traces.py`` on every run — any drift in event
ordering, flow rates, drops or queue dynamics fails the suite.

Regenerate (only after an *intentional* behavior change, in the same
commit that explains why)::

    python -m repro.perf golden --regen
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec_with_network
from repro.experiments.spec import ScenarioSpec, TopologySpec
from repro.experiments.store import atomic_write_json
from repro.perf.digest import diff_digests, run_digest
from repro.sim.units import KB, MICROSECOND, MILLISECOND

#: Default location, relative to the repo root (where pytest runs).
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"

_ONE_TIER = TopologySpec(
    "one_tier", dict(num_fas=4, uplinks_per_fa=4, hosts_per_fa=2)
)
_TWO_TIER = TopologySpec(
    "two_tier",
    dict(pods=2, fas_per_pod=2, fes_per_pod=2, spines=2, hosts_per_fa=2),
)
_THREE_TIER = TopologySpec(
    "three_tier",
    dict(
        pods=2, fas_per_pod=2, fes1_per_pod=2, fes2_per_pod=2,
        spines=2, hosts_per_fa=2,
    ),
)

_PERM_WINDOWS = dict(warmup_ns=200 * MICROSECOND, measure_ns=600 * MICROSECOND)
_RAND_WINDOWS = dict(warmup_ns=100 * MICROSECOND, measure_ns=400 * MICROSECOND)


def golden_specs() -> List[ScenarioSpec]:
    """The recorded matrix: every cell runs in a few seconds."""
    specs = [
        # Permutation throughput across fabrics and tiers.
        build_scenario(
            "permutation", kind="stardust", topology=_ONE_TIER, **_PERM_WINDOWS
        ),
        build_scenario(
            "permutation", kind="tcp", topology=_ONE_TIER, **_PERM_WINDOWS
        ),
        build_scenario(
            "permutation", kind="dctcp", topology=_ONE_TIER, **_PERM_WINDOWS
        ),
        build_scenario(
            "permutation", kind="stardust", topology=_TWO_TIER, **_PERM_WINDOWS
        ),
        build_scenario(
            "permutation", kind="tcp", topology=_TWO_TIER, **_PERM_WINDOWS
        ),
        build_scenario(
            "permutation", kind="stardust", topology=_THREE_TIER,
            **_PERM_WINDOWS,
        ),
        # Open-loop uniform random traffic (no transport feedback loop).
        build_scenario(
            "uniform_random", kind="stardust", topology=_TWO_TIER,
            utilization=0.5, **_RAND_WINDOWS,
        ),
        build_scenario(
            "uniform_random", kind="tcp", topology=_TWO_TIER,
            utilization=0.5, **_RAND_WINDOWS,
        ),
        # Incast: synchronized responders, FCT-shaped digest.
        build_scenario(
            "incast", kind="stardust", n_backends=3,
            response_bytes=50 * KB, timeout_ns=5 * MILLISECOND,
        ),
        # Faulted cells: failure experiments must be exactly as
        # reproducible as healthy ones, on both fabrics.  The stardust
        # cell runs the live reachability protocol (self-healing path);
        # the push cell models delayed ECMP rehash (blackholing path).
        build_scenario(
            "permutation_link_failure", kind="stardust",
            topology=_TWO_TIER, fail_at_ns=300 * MICROSECOND,
            downtime_ns=200 * MICROSECOND, **_PERM_WINDOWS,
        ),
        build_scenario(
            "permutation_link_failure", kind="tcp",
            topology=_TWO_TIER, fail_at_ns=300 * MICROSECOND,
            downtime_ns=200 * MICROSECOND, **_PERM_WINDOWS,
        ),
        build_scenario(
            "incast_element_failure", kind="stardust", n_backends=3,
            response_bytes=50 * KB, timeout_ns=5 * MILLISECOND,
        ),
        # Cells at scale: the two large three-tier scenarios the
        # calendar-queue engine unlocked, pinned with windows short
        # enough for CI but deep enough to cross the global spine row
        # under load (~2M events for the permutation cell).
        build_scenario(
            "permutation_three_tier_large", kind="stardust",
            warmup_ns=150 * MICROSECOND, measure_ns=450 * MICROSECOND,
        ),
        build_scenario(
            "mixed_three_tier_large", kind="stardust",
            warmup_ns=200 * MICROSECOND, measure_ns=800 * MICROSECOND,
        ),
    ]
    return specs


def golden_name(spec: ScenarioSpec) -> str:
    """Stable file stem for one golden cell."""
    return (
        f"{spec.scenario}-{spec.fabric}-{spec.topology.kind}"
        f"-{spec.transport}-s{spec.seed}"
    )


def compute_digest(spec: ScenarioSpec) -> Dict:
    """Run ``spec`` hermetically and digest the outcome."""
    result, net = run_spec_with_network(spec)
    return run_digest(result, net)


def write_goldens(directory: Path = DEFAULT_GOLDEN_DIR) -> List[Path]:
    """(Re)record every golden cell under ``directory``."""
    paths = []
    for spec in golden_specs():
        payload = {
            "spec": spec.to_dict(),
            "digest": compute_digest(spec),
            "regenerate": "python -m repro.perf golden --regen",
        }
        paths.append(
            atomic_write_json(
                Path(directory) / f"{golden_name(spec)}.json", payload
            )
        )
    return paths


def check_goldens(
    directory: Path = DEFAULT_GOLDEN_DIR,
) -> List[Tuple[str, Dict[str, tuple]]]:
    """Re-run the matrix and diff against the recorded digests.

    Returns ``[(cell_name, {field: (recorded, computed)})]`` — one entry
    per drifted cell, empty when everything is bit-identical.  A missing
    recording counts as drift (field ``"missing"``).
    """
    drifted = []
    for spec in golden_specs():
        name = golden_name(spec)
        path = Path(directory) / f"{name}.json"
        if not path.exists():
            drifted.append((name, {"missing": (str(path), None)}))
            continue
        recorded = json.loads(path.read_text())["digest"]
        diff = diff_digests(recorded, compute_digest(spec))
        if diff:
            drifted.append((name, diff))
    return drifted
