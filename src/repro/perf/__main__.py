"""Command-line front end: ``python -m repro.perf``.

Examples::

    python -m repro.perf                     # full suite + baseline diff
    python -m repro.perf --quick             # small sizes (smoke)
    python -m repro.perf --only link         # substring filter
    python -m repro.perf --check             # exit 1 on >10% regression
    python -m repro.perf --check --kernel batch   # gate the batch kernel
    python -m repro.perf --write-baseline    # refresh the committed baseline
    python -m repro.perf --profile 25        # cProfile each bench, top 25
    python -m repro.perf golden --check      # verify golden traces
    python -m repro.perf golden --regen      # re-record golden traces
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.store import atomic_write_json
from repro.perf import (
    REGRESSION_TOLERANCE,
    BenchResult,
    bench_factories,
    profile_bench,
    suite,
)
from repro.perf.bench import bench_name
from repro.perf.golden import DEFAULT_GOLDEN_DIR, check_goldens, write_goldens
from repro.sim.kernel import (
    UnknownKernelError,
    get_kernel,
    known_kernel_names,
)

#: Where the committed reference numbers live.
DEFAULT_BASELINE = Path("benchmarks") / "perf_baseline.json"
#: Where a run's fresh numbers land (uploaded as a CI artifact).
DEFAULT_OUT = Path("BENCH_perf.json")
#: Where ``--profile`` writes its per-bench hotspot report.
DEFAULT_PROFILE_OUT = Path("BENCH_profile.txt")


def load_baseline(path: Path) -> Optional[Dict[str, dict]]:
    """The committed baseline's per-bench dicts, or None if absent."""
    try:
        return json.loads(Path(path).read_text())["benches"]
    except (FileNotFoundError, json.JSONDecodeError, KeyError):
        return None


def compare(
    results: List[BenchResult], baseline: Optional[Dict[str, dict]]
) -> List[dict]:
    """Per-bench comparison rows against the baseline (None-safe)."""
    rows = []
    for bench in results:
        row = {
            "name": bench.name,
            "wall_s": bench.wall_s,
            "events_per_sec": bench.events_per_sec,
            "speedup": None,
            "eps_ratio": None,
        }
        base = (baseline or {}).get(bench.name)
        if base and base.get("wall_s"):
            row["speedup"] = base["wall_s"] / bench.wall_s
        if base and base.get("events_per_sec"):
            row["eps_ratio"] = bench.events_per_sec / base["events_per_sec"]
        rows.append(row)
    return rows


def regressions(rows: List[dict]) -> List[dict]:
    """Rows whose events/sec fell below the tolerated baseline fraction."""
    floor = 1.0 - REGRESSION_TOLERANCE
    return [
        r for r in rows
        if r["eps_ratio"] is not None and r["eps_ratio"] < floor
    ]


def unbaselined(rows: List[dict]) -> List[str]:
    """Names of benches that ran but have no baseline row to diff against.

    A bench without a reference is *ungated*: it can regress arbitrarily
    and ``--check`` would still pass.  Callers must surface these —
    historically they were silently skipped, so adding a bench (or a
    kernel variant) without refreshing the baseline weakened the gate
    without anyone noticing.
    """
    return [r["name"] for r in rows if r["eps_ratio"] is None]


def _fmt_table(rows: List[dict]) -> str:
    header = (
        f"{'bench':<32} {'wall[s]':>9} {'events/s':>12} "
        f"{'vs baseline':>12} {'speedup':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        ratio = (
            f"{r['eps_ratio']:.2f}x" if r["eps_ratio"] is not None else "-"
        )
        speedup = (
            f"{r['speedup']:.2f}x" if r["speedup"] is not None else "-"
        )
        lines.append(
            f"{r['name']:<32} {r['wall_s']:>9.3f} "
            f"{r['events_per_sec']:>12,.0f} {ratio:>12} {speedup:>9}"
        )
    return "\n".join(lines)


def cmd_profile(args) -> int:
    """Run each bench under cProfile and report the top-N hotspots."""
    factories = bench_factories(
        quick=args.quick, only=args.only, kernel=args.kernel
    )
    if not factories:
        print(f"no bench matches --only {args.only!r}", file=sys.stderr)
        return 2
    kernel = get_kernel(args.kernel).name
    sections = []
    for name, factory in factories:
        result, report = profile_bench(factory, args.profile)
        header = (
            f"== {name} [kernel={kernel}]: {result.events:,} events, "
            f"{result.wall_s:.2f}s under cProfile =="
        )
        sections.append(f"{header}\n{report}")
        print(sections[-1])
    out = Path(args.profile_out)
    out.write_text("\n".join(sections))
    print(f"profile report -> {out}")
    return 0


def cmd_bench(args) -> int:
    if args.profile:
        if args.check or args.write_baseline:
            # Profiled timings carry tracing overhead; comparing them
            # to an unprofiled baseline would be meaningless (and a
            # profiled baseline would poison every later check).
            print(
                "--profile runs are not baseline-comparable; "
                "ignoring --check/--write-baseline",
                file=sys.stderr,
            )
        return cmd_profile(args)
    if args.quick and (args.check or args.write_baseline):
        # Quick sizes are not comparable to the full-size baseline: a
        # short run amortizes setup differently, so ratios would be
        # noise (and a quick baseline would poison full-run checks).
        print(
            "--quick runs are not baseline-comparable; "
            "ignoring --check/--write-baseline",
            file=sys.stderr,
        )
        args.check = args.write_baseline = False
    results = suite(quick=args.quick, only=args.only, kernel=args.kernel)
    if not results:
        print(f"no bench matches --only {args.only!r}", file=sys.stderr)
        return 2
    payload = {
        "schema": 1,
        "benches": {b.name: b.to_dict() for b in results},
    }
    atomic_write_json(Path(args.out), payload)
    if args.write_baseline:
        # Merge over the existing file so a filtered run (--only) can
        # refresh one bench without erasing the others' references.
        merged = dict(load_baseline(Path(args.baseline)) or {})
        merged.update(payload["benches"])
        atomic_write_json(
            Path(args.baseline), {"schema": 1, "benches": merged}
        )
        print(f"baseline written -> {args.baseline}")
    baseline = None if args.quick else load_baseline(Path(args.baseline))
    if args.check and baseline is None:
        # A missing/corrupt baseline must not read as "no regressions".
        print(
            f"cannot --check: no readable baseline at {args.baseline}",
            file=sys.stderr,
        )
        return 1
    rows = compare(results, baseline)
    print(_fmt_table(rows))
    print(f"\nresults -> {args.out}")
    if baseline is None and not args.quick:
        print(f"(no baseline at {args.baseline}; ratios omitted)")
    missing = unbaselined(rows) if baseline is not None else []
    if missing:
        names = ", ".join(missing)
        print(
            f"WARNING: no baseline row for: {names} "
            f"(these benches are not regression-gated)",
            file=sys.stderr,
        )
        if args.check and not args.allow_missing:
            print(
                "cannot --check: the baseline is missing benches "
                "(refresh it with --write-baseline, or pass "
                "--allow-missing to gate only the covered ones)",
                file=sys.stderr,
            )
            return 1
    headline = next(
        (
            r for r in rows
            if r["name"] == bench_name("permutation_default", args.kernel)
        ),
        None,
    )
    if headline and headline["speedup"] is not None:
        print(
            f"default permutation spec: {headline['speedup']:.2f}x "
            f"wall-clock vs committed baseline"
        )
    bad = regressions(rows)
    if bad:
        names = ", ".join(r["name"] for r in bad)
        print(
            f"PERF REGRESSION (> {REGRESSION_TOLERANCE:.0%} below "
            f"baseline events/sec): {names}",
            file=sys.stderr,
        )
        if args.check:
            return 1
    elif args.check:
        print("perf check passed (all benches within tolerance)")
    return 0


def cmd_golden(args) -> int:
    directory = Path(args.dir)
    if args.regen:
        paths = write_goldens(directory)
        print(f"{len(paths)} golden traces recorded -> {directory}")
        return 0
    drifted = check_goldens(directory)
    if not drifted:
        print(f"golden traces OK ({directory})")
        return 0
    for name, diff in drifted:
        print(f"DRIFT {name}:", file=sys.stderr)
        for field, (recorded, computed) in diff.items():
            print(
                f"  {field}: recorded={recorded!r} computed={computed!r}",
                file=sys.stderr,
            )
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Hot-path benchmarks and golden-trace checks.",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes, skip the headline bench (smoke/CI-fast)",
    )
    parser.add_argument(
        "--only", default=None, help="run benches whose name contains this"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT),
        help=f"where to write results (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help=f"committed baseline to diff against (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="also record this run as the new committed baseline",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"exit 1 if events/sec regresses more than "
             f"{REGRESSION_TOLERANCE:.0%} vs the baseline, or if a "
             f"bench has no baseline row (see --allow-missing)",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="with --check: warn instead of failing when a bench has "
             "no baseline row (gates only the covered benches)",
    )
    parser.add_argument(
        "--kernel", default=None, metavar="NAME",
        help="engine kernel to run every bench on (one of: "
             f"{', '.join(known_kernel_names())}; default "
             "wheel — non-default kernels get their own "
             "'name[kernel]' rows in results and the baseline)",
    )
    parser.add_argument(
        "--profile", type=int, default=0, metavar="N",
        help="run each bench under cProfile and report the top-N "
             "cumulative hotspots (skips the baseline diff)",
    )
    parser.add_argument(
        "--profile-out", default=str(DEFAULT_PROFILE_OUT),
        help=f"where --profile writes its report "
             f"(default {DEFAULT_PROFILE_OUT})",
    )
    sub = parser.add_subparsers(dest="command")
    golden = sub.add_parser(
        "golden", help="check or re-record the golden-trace matrix"
    )
    golden.add_argument(
        "--dir", default=str(DEFAULT_GOLDEN_DIR),
        help=f"golden trace directory (default {DEFAULT_GOLDEN_DIR})",
    )
    mode = golden.add_mutually_exclusive_group()
    mode.add_argument(
        "--check", dest="golden_check", action="store_true",
        help="verify recorded digests (the default)",
    )
    mode.add_argument(
        "--regen", action="store_true",
        help="re-record digests (only after an intentional change)",
    )

    args = parser.parse_args(argv)
    if args.command == "golden":
        return cmd_golden(args)
    try:
        get_kernel(args.kernel)
    except UnknownKernelError as exc:
        print(exc, file=sys.stderr)
        return 2
    return cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())
