"""Compact, exact digests of simulation runs.

A *digest* is a small JSON-safe dict that pins down everything a run
produced — delivered bytes, drops, per-flow rates, latency histograms —
without storing megabytes of samples.  Aggregates are kept verbatim;
sample vectors are collapsed to a SHA-256 over their canonical JSON, so
a single bit of drift anywhere in the simulation changes the digest.

This is what makes the hot-path optimization *provably* behavior
preserving: the golden-trace tests compare digests recorded before the
optimization against digests computed after it, and any difference in
event ordering, flow rates or queue dynamics shows up as a hash
mismatch rather than a judgement call.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Sequence

from repro.experiments.runner import RunResult


def values_hash(values: Sequence[Any]) -> str:
    """Order-sensitive hash of a numeric sample vector.

    Floats go through ``json.dumps``, i.e. ``repr``-style shortest
    round-trip formatting — two runs hash equal iff every sample is
    bit-identical, which is exactly the determinism contract the
    simulator makes (integer-ns clock, seq-ordered events).
    """
    payload = json.dumps(list(values), separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_digest(result: RunResult, net) -> Dict[str, Any]:
    """Digest one completed run (the network is read, never re-run)."""
    metrics = net.collect_metrics()
    return {
        "scenario": result.scenario,
        "fabric": result.fabric,
        "transport": result.transport,
        "seed": result.seed,
        "spec_hash": result.spec_hash,
        "delivered_bytes": result.delivered_bytes,
        "drops": result.drops,
        "ingress_drops": metrics.ingress_drops,
        "fabric_drops": metrics.fabric_drops,
        "sim_time_ns": result.sim_time_ns,
        "events_fired": net.sim.events_fired,
        "flow_rates_hash": values_hash(result.flow_rates_gbps),
        "fcts_hash": values_hash(result.fcts_ns),
        "cell_latency_hash": values_hash(metrics.cell_latency_ns.samples),
        "packet_latency_hash": values_hash(metrics.packet_latency_ns.samples),
        "queue_depth_hash": values_hash(metrics.queue_depth.samples),
    }


def diff_digests(
    recorded: Dict[str, Any], computed: Dict[str, Any]
) -> Dict[str, tuple]:
    """Field-by-field differences, ``{field: (recorded, computed)}``."""
    keys = sorted(set(recorded) | set(computed))
    return {
        k: (recorded.get(k), computed.get(k))
        for k in keys
        if recorded.get(k) != computed.get(k)
    }
