"""Micro and meso benchmarks for the simulation hot path.

Micro benches isolate the engine and link layers (pure event churn, a
single saturated link); meso benches run the permutation workload over
a fabric x tier matrix through the real experiment runner.  Every bench
reports wall-clock seconds and **events/sec** — the engine's native
throughput unit, which is what the perf-regression gate tracks — and
the meso benches also carry a result digest so a speedup can never
silently come from computing something different.

The headline bench, ``permutation_default``, is the unmodified default
permutation spec (``python -m repro.experiments show permutation``);
its wall-clock against the committed baseline is the number the
ROADMAP's "as fast as the hardware allows" trajectory tracks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec_with_network
from repro.experiments.spec import ScenarioSpec
from repro.perf.digest import run_digest
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.kernel import DEFAULT_KERNEL, build_simulator, get_kernel
from repro.sim.link import Link
from repro.sim.units import MICROSECOND, gbps


@dataclass
class BenchResult:
    """One bench's outcome."""

    name: str
    wall_s: float
    events: int
    sim_time_ns: int = 0
    digest: Optional[Dict[str, Any]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        """Engine throughput (callbacks executed per wall second)."""
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for ``BENCH_perf.json``."""
        payload: Dict[str, Any] = {
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "sim_time_ns": self.sim_time_ns,
        }
        if self.digest is not None:
            payload["digest"] = self.digest
        if self.extra:
            payload["extra"] = self.extra
        return payload


def bench_name(base: str, kernel: Optional[str] = None) -> str:
    """A bench's report/baseline row name under ``kernel``.

    The reference ``wheel`` kernel keeps the historical bare names, so
    every pre-kernel baseline row and trend line stays comparable;
    alternative kernels get their own rows (``link_stream[batch]``)
    and therefore their own regression references.
    """
    canonical = get_kernel(kernel).name
    if canonical == DEFAULT_KERNEL:
        return base
    return f"{base}[{canonical}]"


# ----------------------------------------------------------------------
# Micro: the engine and link layers in isolation
# ----------------------------------------------------------------------


def bench_engine_events(
    n: int = 400_000, chains: int = 64, kernel: Optional[str] = None
) -> BenchResult:
    """Pure event throughput: self-rescheduling callback chains.

    ``chains`` concurrent tickers re-arm themselves until ``n`` total
    callbacks have fired, keeping the heap small and steady — this is
    the per-event overhead a link-serialization event pays, with no
    device logic on top.
    """
    sim = build_simulator(kernel)
    # The fast path when present (post-optimization), else the classic
    # API — the comparison between the two IS the measurement.
    call_later = getattr(sim, "call_later", sim.schedule)
    budget = [n]

    def tick() -> None:
        budget[0] -= 1
        if budget[0] > 0:
            call_later(7, tick)

    for i in range(chains):
        sim.schedule(i + 1, tick)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return BenchResult(
        bench_name("engine_events", kernel), wall, sim.events_fired,
        sim_time_ns=sim.now,
    )


def bench_engine_cancel_churn(
    n: int = 120_000, kernel: Optional[str] = None
) -> BenchResult:
    """Cancel/reschedule churn: half of all scheduled events die young.

    Models PeriodicTask.set_period storms (DCQCN rate updates); the
    engine must skip the corpses cheaply and keep the heap compact.
    """
    sim = build_simulator(kernel)

    def _noop() -> None:
        pass

    started = time.perf_counter()
    for i in range(n):
        sim.at(i + 1, _noop)
        sim.at(i + 1, _noop).cancel()
    sim.run()
    wall = time.perf_counter() - started
    result = BenchResult(
        bench_name("engine_cancel_churn", kernel), wall, sim.events_fired,
        sim_time_ns=sim.now,
    )
    result.extra["pending_after_run"] = sim.pending
    return result


class _Sink(Entity):
    """Counts deliveries; the cheapest possible receiver."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim, "sink")
        self.frames = 0

    def receive(self, payload: Any, link: Link) -> None:
        self.frames += 1


def bench_link_stream(
    frames: int = 150_000, kernel: Optional[str] = None
) -> BenchResult:
    """One saturated 100G link streaming fixed-size frames to a sink.

    Exercises the dominant event pattern of every experiment: enqueue,
    serialize (one event), propagate (one event), deliver.
    """
    sim = build_simulator(kernel)
    src = _Sink(sim)
    dst = _Sink(sim)
    link = Link(sim, src, dst, gbps(100), propagation_ns=100)
    payload = object()
    started = time.perf_counter()
    for _ in range(frames):
        link.send(payload, 512)
    sim.run()
    wall = time.perf_counter() - started
    result = BenchResult(
        bench_name("link_stream", kernel), wall, sim.events_fired,
        sim_time_ns=sim.now,
    )
    result.extra["frames_delivered"] = dst.frames
    return result


# ----------------------------------------------------------------------
# Meso: permutation wall-clock per fabric x tier
# ----------------------------------------------------------------------


def _run_scenario_bench(name: str, spec: ScenarioSpec) -> BenchResult:
    started = time.perf_counter()
    result, net = run_spec_with_network(spec)
    wall = time.perf_counter() - started
    bench = BenchResult(
        name,
        wall,
        net.sim.events_fired,
        sim_time_ns=net.sim.now,
        digest=run_digest(result, net),
    )
    if result.flow_rates_gbps:
        bench.extra["mean_gbps"] = round(result.mean_rate_gbps, 3)
    return bench


def _meso_specs(quick: bool) -> List[tuple]:
    windows = (
        dict(warmup_ns=100 * MICROSECOND, measure_ns=200 * MICROSECOND)
        if quick
        else dict(warmup_ns=500 * MICROSECOND, measure_ns=1500 * MICROSECOND)
    )
    cells = (
        ("permutation_stardust_two_tier", "permutation", "stardust"),
        ("permutation_push_two_tier", "permutation", "tcp"),
        ("permutation_stardust_three_tier", "permutation_three_tier", "stardust"),
        ("permutation_push_three_tier", "permutation_three_tier", "tcp"),
    )
    specs = [
        (name, build_scenario(scenario, kind=kind, **windows))
        for name, scenario, kind in cells
    ]
    # Cells at scale: 32 FAs / 128 hosts across three tiers — the run
    # class the calendar-queue engine unlocked.  Quick mode skips it
    # (like the headline bench) and the windows match its golden cell.
    if not quick:
        specs.append(
            (
                "permutation_three_tier_large",
                build_scenario(
                    "permutation_three_tier_large", kind="stardust",
                    warmup_ns=150 * MICROSECOND,
                    measure_ns=450 * MICROSECOND,
                ),
            )
        )
    return specs


def default_permutation_spec() -> ScenarioSpec:
    """The spec the headline speedup number is measured on."""
    return build_scenario("permutation")


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------

def bench_factories(
    quick: bool = False, only: Optional[str] = None,
    kernel: Optional[str] = None,
) -> List[tuple[str, Callable[[], BenchResult]]]:
    """The suite as (name, factory) pairs, in report order.

    ``only`` filters names by substring; quick mode shrinks sizes and
    drops the minutes-long headline bench; ``kernel`` runs every bench
    on the named engine kernel (see :func:`bench_name` for how rows are
    labelled).  Exposed separately from :func:`suite` so the CLI can
    wrap each bench (cProfile for ``--profile``) without re-declaring
    the matrix.
    """
    kernel = get_kernel(kernel).name

    def _named(base: str) -> str:
        return bench_name(base, kernel)

    benches: List[tuple[str, Callable[[], BenchResult]]] = [
        (
            _named("engine_events"),
            lambda: bench_engine_events(
                40_000 if quick else 400_000, kernel=kernel
            ),
        ),
        (
            _named("engine_cancel_churn"),
            lambda: bench_engine_cancel_churn(
                12_000 if quick else 120_000, kernel=kernel
            ),
        ),
        (
            _named("link_stream"),
            lambda: bench_link_stream(
                15_000 if quick else 150_000, kernel=kernel
            ),
        ),
    ]
    for base, spec in _meso_specs(quick):
        name = _named(base)
        spec = spec.with_updates(kernel=kernel)
        benches.append(
            (name, lambda spec=spec, name=name: _run_scenario_bench(name, spec))
        )
    if not quick:
        name = _named("permutation_default")
        benches.append(
            (
                name,
                lambda name=name: _run_scenario_bench(
                    name,
                    default_permutation_spec().with_updates(kernel=kernel),
                ),
            )
        )
    if only:
        benches = [(n, f) for n, f in benches if only in n]
    return benches


def measure_process_stats(
    factory: Callable[[], BenchResult]
) -> BenchResult:
    """Run one bench and annotate it with process-level cost.

    Adds to ``extra``:

    * ``peak_rss_kb`` — the process high-water resident set after the
      bench (``ru_maxrss``; monotone across the suite, so a bench that
      doesn't raise it cost less memory than everything before it);
    * ``gc_collections`` — collections per GC generation *during* the
      bench, a direct read on how much allocation churn the hot path
      causes.

    Both ride ``BENCH_perf.json`` for trend tracking; the regression
    gate compares only wall/events-per-sec, so these are informational.
    """
    import gc

    before = [s["collections"] for s in gc.get_stats()]
    result = factory()
    after = [s["collections"] for s in gc.get_stats()]
    result.extra["gc_collections"] = [
        a - b for a, b in zip(after, before)
    ]
    try:
        import resource
        import sys

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
            rss //= 1024
        result.extra["peak_rss_kb"] = int(rss)
    except ImportError:  # pragma: no cover - non-POSIX platforms
        pass
    return result


def suite(
    quick: bool = False, only: Optional[str] = None,
    kernel: Optional[str] = None,
) -> List[BenchResult]:
    """Run the suite in report order (see :func:`bench_factories`)."""
    return [
        measure_process_stats(factory)
        for _, factory in bench_factories(quick, only, kernel=kernel)
    ]


def profile_bench(
    factory: Callable[[], BenchResult], top: int
) -> tuple[BenchResult, str]:
    """Run one bench under cProfile; returns (result, top-N report).

    The report is the ``pstats`` cumulative-time table truncated to the
    ``top`` hottest entries — the "where did the time go" answer that
    used to take an ad-hoc script per perf hunt.  Profiled wall times
    carry interpreter tracing overhead, so callers must never compare
    them against an unprofiled baseline.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = factory()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return result, stream.getvalue()
