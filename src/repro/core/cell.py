"""Cells: the only thing the network fabric ever sees.

A data cell carries up to ``cell_payload_bytes`` of packet data as a list
of :class:`CellFragment` records (packet packing means one cell can hold
pieces of several packets).  The header carries exactly what §3.2/§4.2
say it must: destination Fabric Adapter, source Fabric Adapter, VOQ
identity, a sequence number for reassembly, and the FCI bit Fabric
Elements piggyback congestion on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional, Tuple

from repro.net.addressing import DeviceId, PortAddress
from repro.net.packet import Packet


class CellKind(Enum):
    """What a fabric frame is."""

    DATA = auto()
    REACHABILITY = auto()


@dataclass(frozen=True, slots=True)
class VoqId:
    """Identity of a VOQ: destination (FA, port) plus traffic class."""

    dst: PortAddress
    priority: int = 0
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError("priority must be non-negative")
        # VOQ ids key every hot dict on the path (VOQ tables, scheduler
        # demand books, reassembly contexts); cache the hash once at
        # construction.  Same value the generated dataclass __hash__
        # would produce, so hash-ordered structures are unaffected.
        object.__setattr__(self, "_hash", hash((self.dst, self.priority)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.dst}/tc{self.priority}"


@dataclass(frozen=True, slots=True)
class CellFragment:
    """A contiguous slice of one packet carried inside a cell."""

    packet: Packet
    nbytes: int
    end_of_packet: bool

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("fragment must carry at least one byte")
        if self.nbytes > self.packet.size_bytes:
            raise ValueError("fragment larger than its packet")


_cell_ids = itertools.count()


@dataclass(slots=True)
class Cell:
    """One fabric cell (data or reachability).

    ``slots=True`` matters here: cells are created per ~payload-size
    bytes of traffic and their attributes are read at every hop, so
    dict-free instances shave both construction and access costs on the
    hottest object in the simulation.
    """

    kind: CellKind
    dst_fa: DeviceId
    src_fa: DeviceId
    header_bytes: int
    voq: Optional[VoqId] = None
    seq: int = 0
    fragments: Tuple[CellFragment, ...] = ()
    fci: bool = False
    created_ns: int = 0
    cell_id: int = field(default_factory=lambda: next(_cell_ids))
    # Reachability payload: the set of FA ids the sender can reach,
    # and the sender's identity (used by the protocol only).
    reachable: Optional[frozenset] = None
    sender: Optional[DeviceId] = None
    _payload_bytes: int = field(init=False, repr=False, compare=False)
    #: On-wire size.  A stored slot, not a property: it is read at every
    #: hop (spray, FCI check, link send) and neither the header nor the
    #: fragments ever change after construction.
    size_bytes: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.header_bytes < 0:
            raise ValueError("header bytes must be non-negative")
        if self.kind is CellKind.DATA and self.voq is None:
            raise ValueError("data cells need a VOQ id")
        # Fragments never change after construction, but the sizes are
        # read at every hop — memoize both.
        self._payload_bytes = sum(f.nbytes for f in self.fragments)
        self.size_bytes = self.header_bytes + self._payload_bytes

    @classmethod
    def data(
        cls,
        dst_fa: DeviceId,
        src_fa: DeviceId,
        header_bytes: int,
        voq: VoqId,
        seq: int,
        fragments: Tuple[CellFragment, ...],
        created_ns: int,
        payload_bytes: int,
    ) -> "Cell":
        """Fast constructor for DATA cells — the hot per-cell allocation.

        The packing layer creates one cell per ~payload-size bytes of
        traffic and already knows the payload sum and that a VOQ id is
        present, so this skips the dataclass ``__init__`` defaults
        machinery and ``__post_init__`` validation.  Must assign every
        slot the dataclass declares.
        """
        cell = cls.__new__(cls)
        cell.kind = CellKind.DATA
        cell.dst_fa = dst_fa
        cell.src_fa = src_fa
        cell.header_bytes = header_bytes
        cell.voq = voq
        cell.seq = seq
        cell.fragments = fragments
        cell.fci = False
        cell.created_ns = created_ns
        cell.cell_id = next(_cell_ids)
        cell.reachable = None
        cell.sender = None
        cell._payload_bytes = payload_bytes
        cell.size_bytes = header_bytes + payload_bytes
        return cell

    @property
    def payload_bytes(self) -> int:
        """Payload bytes carried by this cell."""
        return self._payload_bytes

    @property
    def priority(self) -> int:
        """Traffic class of the cell's VOQ (0 for control)."""
        return self.voq.priority if self.voq is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is CellKind.REACHABILITY:
            return f"<ReachCell from dev{self.sender}>"
        return (
            f"<Cell#{self.cell_id} fa{self.src_fa}->fa{self.dst_fa} "
            f"voq={self.voq} seq={self.seq} {self.size_bytes}B"
            f"{' FCI' if self.fci else ''}>"
        )
