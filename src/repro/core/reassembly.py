"""Cell-to-packet reassembly at the egress Fabric Adapter (§4.1).

Cells of one VOQ are sequence-numbered at the ingress; dynamic
forwarding may deliver them out of order, so each (source FA, VOQ)
context holds a small resequencing buffer and processes cells strictly
in sequence.  Fragments accumulate per packet; when a packet's final
fragment is processed the packet pops out whole.  A context stuck
waiting for a missing sequence number longer than the reassembly
timeout skips ahead and discards the packets the gap corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.cell import Cell, VoqId
from repro.net.addressing import DeviceId
from repro.net.packet import Packet
from repro.sim.engine import Simulator


@dataclass(slots=True)
class _Context:
    """Resequencing state for one (source FA, VOQ) stream."""

    expected_seq: int = 0
    pending: Dict[int, Cell] = field(default_factory=dict)
    #: Bytes received so far for the packet currently being reassembled.
    partial_packet: Optional[Packet] = None
    partial_bytes: int = 0
    #: Time the head-of-line gap appeared (for timeout).
    stalled_since_ns: Optional[int] = None
    #: A packet discarded by timeout whose straggler fragments must be
    #: swallowed without re-counting the discard.
    discarded_packet: Optional[Packet] = None


class ReassemblyEngine:
    """All reassembly contexts of one Fabric Adapter."""

    __slots__ = (
        "sim", "_deliver", "_timeout_ns", "_contexts",
        "cells_received", "cells_out_of_order", "packets_completed",
        "packets_discarded", "timeouts",
    )

    def __init__(
        self,
        sim: Simulator,
        deliver: Callable[[Packet, VoqId], None],
        timeout_ns: int,
    ) -> None:
        self.sim = sim
        self._deliver = deliver
        self._timeout_ns = timeout_ns
        self._contexts: Dict[Tuple[DeviceId, VoqId], _Context] = {}
        # Accounting.
        self.cells_received = 0
        self.cells_out_of_order = 0
        self.packets_completed = 0
        self.packets_discarded = 0
        self.timeouts = 0

    @property
    def open_contexts(self) -> int:
        """Number of (source, VOQ) reassembly contexts in use."""
        return len(self._contexts)

    def max_pending(self) -> int:
        """Largest resequencing buffer across contexts (bounded by FE
        queue depth, per §4.1 — tests assert this stays small)."""
        if not self._contexts:
            return 0
        return max(len(c.pending) for c in self._contexts.values())

    def receive(self, cell: Cell) -> None:
        """Accept one data cell from the fabric."""
        if cell.voq is None:
            raise ValueError("reassembly got a cell with no VOQ id")
        self.cells_received += 1
        key = (cell.src_fa, cell.voq)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = _Context()
            self._contexts[key] = ctx

        if cell.seq < ctx.expected_seq:
            # Duplicate or late after a timeout skip — drop it.
            return
        if cell.seq != ctx.expected_seq:
            self.cells_out_of_order += 1
            ctx.pending[cell.seq] = cell
            if ctx.stalled_since_ns is None:
                ctx.stalled_since_ns = self.sim.now
                self.sim.schedule(
                    self._timeout_ns, lambda: self._check_timeout(key)
                )
            return

        self._consume(ctx, cell)
        # Drain whatever the arrival unblocked.
        while ctx.expected_seq in ctx.pending:
            self._consume(ctx, ctx.pending.pop(ctx.expected_seq))
        ctx.stalled_since_ns = self.sim.now if ctx.pending else None
        if ctx.pending:
            self.sim.schedule(
                self._timeout_ns, lambda: self._check_timeout(key)
            )

    def _consume(self, ctx: _Context, cell: Cell) -> None:
        ctx.expected_seq = cell.seq + 1
        for frag in cell.fragments:
            if frag.packet is ctx.discarded_packet:
                # Straggler fragment of a packet a timeout already
                # discarded; swallow it silently.
                if frag.end_of_packet:
                    ctx.discarded_packet = None
                continue
            if ctx.partial_packet is None:
                ctx.partial_packet = frag.packet
                ctx.partial_bytes = 0
            elif ctx.partial_packet is not frag.packet:
                # The stream skipped a packet boundary (only possible
                # after a timeout discard); drop the stale partial.
                self.packets_discarded += 1
                ctx.partial_packet = frag.packet
                ctx.partial_bytes = 0
            ctx.partial_bytes += frag.nbytes
            if frag.end_of_packet:
                packet = ctx.partial_packet
                complete = ctx.partial_bytes == packet.size_bytes
                ctx.partial_packet = None
                ctx.partial_bytes = 0
                if complete:
                    self.packets_completed += 1
                    assert cell.voq is not None
                    self._deliver(packet, cell.voq)
                else:
                    self.packets_discarded += 1

    def _check_timeout(self, key: Tuple[DeviceId, VoqId]) -> None:
        ctx = self._contexts.get(key)
        if ctx is None or ctx.stalled_since_ns is None:
            return
        if self.sim.now - ctx.stalled_since_ns < self._timeout_ns:
            return
        if not ctx.pending:
            ctx.stalled_since_ns = None
            return
        # Skip the gap: resume at the lowest buffered sequence number.
        self.timeouts += 1
        if ctx.partial_packet is not None:
            self.packets_discarded += 1
            ctx.discarded_packet = ctx.partial_packet
            ctx.partial_packet = None
            ctx.partial_bytes = 0
        ctx.expected_seq = min(ctx.pending)
        while ctx.expected_seq in ctx.pending:
            self._consume(ctx, ctx.pending.pop(ctx.expected_seq))
        ctx.stalled_since_ns = self.sim.now if ctx.pending else None
        if ctx.pending:
            self.sim.schedule(
                self._timeout_ns, lambda: self._check_timeout(key)
            )
