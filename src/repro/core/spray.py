"""Spray arbitration: per-destination round-robin over a rotating
random permutation of eligible links (§5.3).

The arbiter walks the eligible link set in a random permutation order
and reshuffles the permutation every few rounds, so transient
synchronization between packet arrival patterns and the walk order
cannot persist.  Ablation modes (pure random pick, static hash) exist so
benchmarks can show why the paper's choice wins.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Sequence, TypeVar

L = TypeVar("L", bound=Hashable)


class SprayArbiter:
    """Chooses the next link for a (destination, link-set) stream."""

    __slots__ = ("_rng", "_reshuffle_every", "mode", "_state")

    MODES = ("permutation", "random", "static")

    def __init__(
        self,
        rng: random.Random,
        reshuffle_every: int = 64,
        mode: str = "permutation",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown spray mode {mode!r}")
        if reshuffle_every < 1:
            raise ValueError("reshuffle period must be >= 1")
        self._rng = rng
        self._reshuffle_every = reshuffle_every
        self.mode = mode
        # Per destination, mutated in place:
        # [permutation, cursor, cells_since_shuffle, last_links_seen].
        # last_links_seen is the eligible sequence exactly as last
        # passed.  Devices memoize their eligible lists per topology
        # epoch, so between reachability events every pick toward a
        # destination passes the *same object* — one identity check
        # replaces the membership compare entirely.  A fresh-but-equal
        # list (uncached callers) still short-circuits on the C-level
        # equality walk, and only a real membership change pays the two
        # set() builds and a reshuffle.
        self._state: Dict[Hashable, list] = {}

    def pick(self, dst: Hashable, links: Sequence[L]) -> L:
        """The link to use for the next cell toward ``dst``.

        ``links`` is the currently eligible set; if it changed since the
        last call (reachability update) the walk restarts on the new set.
        """
        if not links:
            raise ValueError(f"no eligible links toward {dst}")
        if self.mode != "permutation":
            # Ablation modes, off the hot path: the common case above
            # pays exactly one (interned) string compare.
            if self.mode == "random":
                return self._rng.choice(list(links))
            # ECMP-like: a fixed link per destination (ablation only).
            # Destinations are DeviceId/VoqId built on integer ids, whose
            # hashes are PYTHONHASHSEED-independent.
            return links[hash(dst) % len(links)]  # repro-lint: allow=DET004 -- int-based hashes are seed-stable; static mode is an ablation

        state = self._state.get(dst)
        if state is None:
            perm = list(links)
            self._rng.shuffle(perm)
            state = [perm, 0, 0, links]
            self._state[dst] = state
        elif links is not state[3]:
            if links != state[3]:
                # Same membership in a different order keeps the walk; a
                # membership change (reachability update) restarts it.
                if set(state[0]) != set(links):
                    perm = list(links)
                    self._rng.shuffle(perm)
                    state[0] = perm
                    state[1] = 0
                    state[2] = 0
            state[3] = links
        perm = state[0]
        cursor = state[1]
        link = perm[cursor]
        cursor += 1
        state[2] += 1
        if cursor >= len(perm):
            cursor = 0
            if state[2] >= self._reshuffle_every:
                self._rng.shuffle(perm)
                state[2] = 0
        state[1] = cursor
        return link

    def forget(self, dst: Hashable) -> None:
        """Drop per-destination state (device removed)."""
        self._state.pop(dst, None)
