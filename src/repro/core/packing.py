"""Packet packing: chopping a credit-worth burst of packets into cells.

§3.4: when a VOQ receives a credit it treats the dequeued burst as one
byte stream and slices it into maximum-size cells, so a cell may carry
the tail of one packet, several whole packets and the head of another.
Only the final cell of a burst may be short.  Without packing (the
ablation, and the pre-Jericho "Arad" behaviour) every packet is chopped
independently, so every packet's last cell is short — the waste Fig 8
quantifies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.cell import Cell, CellFragment, VoqId
from repro.net.packet import Packet


def pack_burst(
    packets: Sequence[Packet],
    *,
    payload_bytes: int,
    header_bytes: int,
    dst_fa: int,
    src_fa: int,
    voq: VoqId,
    first_seq: int,
    created_ns: int = 0,
    packing: bool = True,
) -> List[Cell]:
    """Chop ``packets`` into cells.

    Returns the cells in transmission order, sequence-numbered starting
    at ``first_seq``.  With ``packing=False`` each packet starts a fresh
    cell (no fragments of different packets share a cell).
    """
    if payload_bytes <= 0:
        raise ValueError("cell payload must be positive")
    if not packets:
        return []

    cells: List[Cell] = []
    seq = first_seq

    def emit(fragments: List[CellFragment], filled: int) -> None:
        """Close a cell carrying ``filled`` payload bytes (the packer
        tracks the fill level, so the cell constructor need not re-sum
        its fragments)."""
        nonlocal seq
        cells.append(
            Cell.data(
                dst_fa=dst_fa,
                src_fa=src_fa,
                header_bytes=header_bytes,
                voq=voq,
                seq=seq,
                fragments=tuple(fragments),
                created_ns=created_ns,
                payload_bytes=filled,
            )
        )
        seq += 1

    if packing:
        current: List[CellFragment] = []
        room = payload_bytes
        for packet in packets:
            remaining = packet.size_bytes
            while remaining > 0:
                take = min(room, remaining)
                remaining -= take
                current.append(
                    CellFragment(packet, take, end_of_packet=remaining == 0)
                )
                room -= take
                if room == 0:
                    emit(current, payload_bytes)
                    current = []
                    room = payload_bytes
        if current:
            emit(current, payload_bytes - room)
    else:
        for packet in packets:
            remaining = packet.size_bytes
            while remaining > 0:
                take = min(payload_bytes, remaining)
                remaining -= take
                emit(
                    [CellFragment(packet, take, end_of_packet=remaining == 0)],
                    take,
                )

    return cells


def cells_for_bytes(
    nbytes: int, payload_bytes: int, packing: bool = True
) -> int:
    """How many cells a contiguous burst of ``nbytes`` needs.

    For unpacked mode this is per-packet; callers sum per packet.
    Useful for closed-form checks and the pipeline model.
    """
    if nbytes < 0:
        raise ValueError("bytes must be non-negative")
    if payload_bytes <= 0:
        raise ValueError("cell payload must be positive")
    return -(-nbytes // payload_bytes)


def burst_wire_bytes(
    packets: Iterable[Packet],
    *,
    payload_bytes: int,
    header_bytes: int,
    packing: bool = True,
) -> int:
    """Total fabric bytes (headers included) for a burst of packets."""
    if packing:
        total = sum(p.size_bytes for p in packets)
        ncells = cells_for_bytes(total, payload_bytes)
    else:
        ncells = sum(
            cells_for_bytes(p.size_bytes, payload_bytes) for p in packets
        )
        total = sum(p.size_bytes for p in packets)
    return total + ncells * header_bytes
