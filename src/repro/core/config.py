"""Configuration of a Stardust fabric.

One :class:`StardustConfig` object parameterizes every mechanism the
paper describes: cell geometry, credit size and speedup, FCI behaviour,
spray arbitration, buffer sizes and the reachability protocol.  The
defaults follow the paper's running examples (256B cells, 4KB credits,
~2-3% credit speedup, 50G fabric links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.units import KB, MB, MICROSECOND, gbps


@dataclass(slots=True)
class StardustConfig:
    """Knobs for Fabric Adapters, Fabric Elements and the fabric protocol."""

    # --- cell geometry (§3.2, §3.4) -----------------------------------
    #: Maximum cell size on the wire, header included (matches the FE
    #: datapath width; the paper uses 256B).
    cell_size_bytes: int = 256
    #: Cell header: destination/source FA, VOQ id, sequence number, flags.
    cell_header_bytes: int = 16
    #: Pack multiple packets/fragments per cell (§3.4).  Turning this off
    #: reproduces the older-generation ("Arad") behaviour and the
    #: "Switch - Cells" curve of Fig 8.
    packet_packing: bool = True

    # --- credits (§3.3, §4.1) ------------------------------------------
    #: Bytes released by one credit (paper example: 4KB).
    credit_size_bytes: int = 4 * KB
    #: Credit rate exceeds egress port rate by this fraction (paper: ~2%).
    credit_speedup: float = 0.02
    #: Traffic classes (VOQ = destination port x class).
    traffic_classes: int = 1
    #: Ingress VOQs report demand to the egress scheduler immediately
    #: once this many unreported bytes accumulate...
    voq_report_threshold_bytes: int = 4 * KB
    #: ...and in any case within this long of the first unreported byte
    #: (so sub-threshold tails are never stranded).
    voq_report_flush_ns: int = 1 * MICROSECOND
    #: Strict priority across classes (class 0 = highest); within a class
    #: credits are round-robin across requesting VOQs.  With
    #: ``strict_priority=False`` classes share by weighted round-robin
    #: using ``class_weights`` (§4.1: "typically a combination of
    #: round-robin, strict priority and weighted").
    strict_priority: bool = True
    #: WRR weights per class (used when strict_priority is False);
    #: missing classes default to weight 1.
    class_weights: tuple = ()
    #: Traffic classes served *without* waiting for credits (§5.6's
    #: low-latency VOQs).  Their aggregate bandwidth must be small —
    #: they bypass the scheduler entirely.
    low_latency_classes: tuple = ()

    # --- host flow control (§5.4) ----------------------------------------
    #: Send PAUSE toward hosts when the shared ingress pool passes this
    #: occupancy (None disables host flow control).
    host_pause_threshold: Optional[float] = None
    #: ...and RESUME below this occupancy.
    host_resume_threshold: float = 0.7

    # --- buffers --------------------------------------------------------
    #: Deep ingress packet buffer per Fabric Adapter (§5.4 example: 32MB).
    ingress_buffer_bytes: int = 32 * MB
    #: Shallow egress (reassembled packet) buffer per port — sized to
    #: absorb credit-loop in-flight data only (§4.1; the §6.2
    #: extrapolation gives ~tens of KB per port).
    egress_buffer_bytes: int = 64 * KB
    #: Egress buffer high watermark: above it, stop granting credits.
    egress_high_watermark: float = 0.75
    #: ...and resume below this.
    egress_low_watermark: float = 0.5

    # --- FCI congestion indication (§4.2) --------------------------------
    #: FE link queue depth (in cells) above which transiting cells are
    #: FCI-marked.  Fig 9 shows healthy sub-unity loads reach ~40-70
    #: cells, so the threshold sits above that: FCI is an
    #: oversubscription backstop, not a steady-state governor.
    fci_threshold_cells: int = 96
    #: Multiplicative slow-down of credit generation while FCI-marked
    #: cells arrive (credit period is multiplied by this).
    fci_throttle_factor: float = 1.5
    #: FCI throttle decays back to normal after this long without marks.
    fci_decay_ns: int = 20 * MICROSECOND

    # --- spray arbitration (§5.3) ----------------------------------------
    #: Cells sent per destination before the arbiter's random permutation
    #: of eligible links is reshuffled.
    spray_reshuffle_cells: int = 64

    # --- reassembly (§4.1) -----------------------------------------------
    #: Discard a partially reassembled packet when its context is stuck
    #: this long (link error / loss recovery).
    reassembly_timeout_ns: int = 500 * MICROSECOND

    # --- reachability protocol (§5.9, Appendix E) ------------------------
    #: Interval between reachability cells on each link.
    reachability_period_ns: int = 10 * MICROSECOND
    #: Consecutive good messages needed to declare a link up.
    reachability_up_threshold: int = 3
    #: Missed periods after which a link is declared down.
    reachability_miss_threshold: int = 3
    #: Reachability cell size (Appendix E: 24B).
    reachability_cell_bytes: int = 24

    # --- link rates -------------------------------------------------------
    #: Fabric (FA<->FE, FE<->FE) serial link rate.
    fabric_link_rate_bps: int = gbps(50)
    #: Host-facing port rate.
    host_link_rate_bps: int = gbps(50)
    #: Fiber propagation delay per fabric link.
    fabric_propagation_ns: int = 100
    #: Propagation delay on host links.
    host_propagation_ns: int = 50
    #: Per-hop forwarding latency of control-plane messages (credit
    #: requests/grants ride the FE control crossbar).
    control_hop_ns: int = 200

    # --- misc --------------------------------------------------------------
    seed: int = 1

    def __post_init__(self) -> None:
        if self.cell_header_bytes >= self.cell_size_bytes:
            raise ValueError("cell header must be smaller than the cell")
        if self.cell_size_bytes <= 0 or self.cell_header_bytes < 0:
            raise ValueError("invalid cell geometry")
        if self.credit_size_bytes < self.cell_payload_bytes:
            raise ValueError("a credit must cover at least one cell")
        if self.credit_speedup < 0:
            raise ValueError("credit speedup must be non-negative")
        if self.traffic_classes < 1:
            raise ValueError("need at least one traffic class")
        if not 0 < self.egress_low_watermark <= self.egress_high_watermark <= 1:
            raise ValueError("watermarks must satisfy 0 < low <= high <= 1")
        if self.fci_throttle_factor < 1.0:
            raise ValueError("throttle factor must be >= 1")
        if self.spray_reshuffle_cells < 1:
            raise ValueError("reshuffle period must be >= 1 cell")
        if any(w < 1 for w in self.class_weights):
            raise ValueError("class weights must be positive")
        if any(
            c < 0 or c >= self.traffic_classes
            for c in self.low_latency_classes
        ):
            raise ValueError("low-latency classes must be valid classes")
        if self.host_pause_threshold is not None and not (
            0 < self.host_resume_threshold < self.host_pause_threshold <= 1
        ):
            raise ValueError(
                "need 0 < resume threshold < pause threshold <= 1"
            )

    @property
    def cell_payload_bytes(self) -> int:
        """Payload capacity of one cell."""
        return self.cell_size_bytes - self.cell_header_bytes
