"""The Fabric Element: a radically simple cell switch (§4.2).

A Fabric Element never parses packets.  It keeps one table — destination
Fabric Adapter to outgoing links — sprays cells across all eligible
links (down-routes preferred, else up), marks FCI on cells leaving
through a congested queue, and participates in the reachability
protocol.  That is the entire device; everything a normal switch does
besides this (header processing, big lookup tables, per-flow state,
deep buffers) is deliberately absent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.cell import Cell, CellKind
from repro.core.config import StardustConfig
from repro.core.reachability import ReachabilityMonitor
from repro.core.spray import SprayArbiter
from repro.net.addressing import DeviceId
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.stats import Histogram


@dataclass(eq=False, slots=True)  # identity semantics: unique physical objects
class FabricPort:
    """One full-duplex attachment of a Fabric Element."""

    neighbor: DeviceId
    out: Link
    direction: str  # "up" (toward spine) or "down" (toward edge)

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down"):
            raise ValueError(f"bad direction {self.direction!r}")


class FabricElement(Entity):
    """A cell switch.  ``tier`` 1 is adjacent to Fabric Adapters."""

    __slots__ = (
        "config", "fe_id", "tier", "pod", "_ports", "_inbound_index",
        "_down_map", "_up_map", "_static_up_all", "_elig_cache",
        "_elig_epoch", "_spray", "_monitor", "_advertiser",
        "down_queue_depth", "sample_down_queues", "cells_forwarded",
        "cells_fci_marked", "no_route_drops", "alive", "dead_drops",
        "_fci_threshold",
    )

    def __init__(
        self,
        sim: Simulator,
        config: StardustConfig,
        fe_id: DeviceId,
        tier: int,
        name: str,
        spray_mode: str = "permutation",
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.fe_id = fe_id
        self.tier = tier
        #: Pod membership in two-tier topologies (set by the builder;
        #: None for spine elements and one-tier fabrics).
        self.pod: Optional[int] = None
        self._ports: List[FabricPort] = []
        #: Inbound link -> its port's attachment index; the index is
        #: the reachability monitor's stable per-run key.
        self._inbound_index: Dict[Link, int] = {}

        # Forwarding view.  down_map: dst FA -> ports whose subtree holds
        # it.  up_eligible: dst FA -> up ports advertising it (dynamic
        # mode) or all live up ports (static mode).
        self._down_map: Dict[DeviceId, List[FabricPort]] = {}
        self._up_map: Dict[DeviceId, List[FabricPort]] = {}
        self._static_up_all = False
        # Eligible-port lists memoized per destination, keyed on the
        # simulator's topology epoch: between liveness/reachability
        # changes every cell toward one FA sprays over the same list
        # object, so the per-hop filter rebuild (and the spray
        # arbiter's membership compare) collapses to two dict hits.
        self._elig_cache: Dict[DeviceId, List[FabricPort]] = {}
        self._elig_epoch = -1

        self._spray = SprayArbiter(
            rng or random.Random(config.seed ^ (0x5EED + fe_id)),
            reshuffle_every=config.spray_reshuffle_cells,
            mode=spray_mode,
        )

        # Reachability protocol state (dynamic mode only).
        self._monitor: Optional[ReachabilityMonitor] = None
        self._advertiser: Optional[PeriodicTask] = None

        # Instrumentation: queue depth (in cells) observed by arriving
        # cells on down ports — the paper's Fig 9 (right).
        self.down_queue_depth = Histogram(f"{name}.down_queue_cells")
        self.sample_down_queues = False
        self.cells_forwarded = 0
        self.cells_fci_marked = 0
        self.no_route_drops = 0
        #: Element-death state: a failed FE neither forwards nor
        #: advertises; cells that still reach it are counted here.
        self.alive = True
        self.dead_drops = 0
        # The FCI threshold is consulted once per forwarded cell; keep
        # it off the config attribute chain.
        self._fci_threshold = config.fci_threshold_cells

    # ------------------------------------------------------------------
    # Wiring (builder API)
    # ------------------------------------------------------------------
    def add_port(
        self, neighbor: DeviceId, out: Link, inbound: Link, direction: str
    ) -> FabricPort:
        """Attach a fabric port (out link + inbound link + direction)."""
        port = FabricPort(neighbor=neighbor, out=out, direction=direction)
        self._inbound_index[inbound] = len(self._ports)
        self._ports.append(port)
        self.sim.topology_epoch += 1
        return port

    @property
    def fabric_ports(self) -> List[FabricPort]:
        """All attached ports, in attachment order."""
        return list(self._ports)

    @property
    def up_ports(self) -> List[FabricPort]:
        """Ports toward the next tier up."""
        return [p for p in self._ports if p.direction == "up"]

    @property
    def down_ports(self) -> List[FabricPort]:
        """Ports toward the edge."""
        return [p for p in self._ports if p.direction == "down"]

    def set_static_reachability(
        self,
        down_map: Dict[DeviceId, List[FabricPort]],
        up_reaches_everything: bool = True,
    ) -> None:
        """Install forwarding state directly (reachability='static')."""
        # Copy defensively against caller mutation, but only once per
        # distinct input list: builders hand every edge of a pod the
        # same port list, and the installed lists are never mutated in
        # place (table rebuilds replace the whole dict).
        # Keyed by element tuple: ports have identity semantics, so two
        # keys collide exactly when the lists hold the same ports in the
        # same order — and shared copies are safe because installed
        # lists are never mutated.
        copies: Dict[Tuple[FabricPort, ...], List[FabricPort]] = {}
        self._down_map = {
            d: copies.setdefault(tuple(ps), list(ps))
            for d, ps in down_map.items()
        }
        self._static_up_all = up_reaches_everything
        self.sim.topology_epoch += 1

    def enable_protocol(self) -> None:
        """Run the live reachability protocol (reachability='dynamic')."""
        self._monitor = ReachabilityMonitor(
            self.sim,
            self.config.reachability_period_ns,
            self.config.reachability_up_threshold,
            self.config.reachability_miss_threshold,
            self._rebuild_tables,
        )
        for index in range(len(self._ports)):
            self._monitor.track(index)
        self._advertiser = PeriodicTask(
            self.sim,
            self.config.reachability_period_ns,
            self._advertise,
            phase_ns=(self.fe_id % 7 + 1)
            * (self.config.reachability_period_ns // 8 + 1),
        )

    # ------------------------------------------------------------------
    # Reachability protocol
    # ------------------------------------------------------------------
    def _down_reachable(self) -> FrozenSet[DeviceId]:
        return frozenset(self._down_map.keys())

    def _all_reachable(self) -> FrozenSet[DeviceId]:
        return frozenset(self._down_map.keys()) | frozenset(
            self._up_map.keys()
        )

    def _advertise(self) -> None:
        down_set = self._down_reachable()
        full_set = self._all_reachable()
        for port in self._ports:
            if not port.out.up:
                continue
            # Up-neighbors must only hear what we reach *downward*
            # (up/down routing keeps the fabric loop-free); down-neighbors
            # hear everything we can reach.
            advertised = down_set if port.direction == "up" else full_set
            cell = Cell(
                kind=CellKind.REACHABILITY,
                dst_fa=0,  # reachability cells are per-link, not routed
                src_fa=self.fe_id,
                header_bytes=self.config.reachability_cell_bytes,
                sender=self.fe_id,
                reachable=advertised,
            )
            port.out.send(cell, self.config.reachability_cell_bytes)

    def _rebuild_tables(self) -> None:
        """Recompute forwarding maps from the monitor's learned state."""
        assert self._monitor is not None
        down: Dict[DeviceId, List[FabricPort]] = {}
        up: Dict[DeviceId, List[FabricPort]] = {}
        for index, port in enumerate(self._ports):
            learned = self._monitor.reachable_via(index)
            target = down if port.direction == "down" else up
            for dst in learned:
                target.setdefault(dst, []).append(port)
        self._down_map = down
        self._up_map = up
        self.sim.topology_epoch += 1

    def _on_reachability_cell(self, cell: Cell, in_link: Link) -> None:
        if self._monitor is None:
            return  # static mode ignores protocol traffic
        assert cell.reachable is not None
        index = self._inbound_index.get(in_link)
        if index is not None:
            self._monitor.heard(index, cell.reachable)

    # ------------------------------------------------------------------
    # Failure injection (§5.10 device death)
    # ------------------------------------------------------------------
    def fail(self) -> int:
        """Kill this element: every outgoing link goes down, the
        advertiser falls silent, and arriving cells are dropped.

        Returns the number of frames lost from the outgoing queues.
        Links *into* a dead element belong to its neighbors; callers
        that model full device death fail those too (the injector does).
        """
        self.alive = False
        return sum(port.out.fail() for port in self._ports)

    def restore(self) -> None:
        """Bring the element (and its outgoing links) back up."""
        self.alive = True
        for port in self._ports:
            port.out.restore()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def receive(self, payload: Cell, link: Link) -> None:
        """Handle an arriving cell (data or reachability).

        This *is* the per-cell per-hop hot path (forwarding is inlined
        rather than delegated): route lookup via the epoch-memoized
        eligible list, spray, FCI mark, send.
        """
        if not self.alive:
            self.dead_drops += 1
            return
        if payload.kind is CellKind.REACHABILITY:
            self._on_reachability_cell(payload, link)
            return
        dst_fa = payload.dst_fa
        # Inlined eligible_ports cache hit: the memoized per-epoch list
        # is hit on virtually every data cell, and this method runs once
        # per cell per hop — the call frame is measurable.
        if self.sim.topology_epoch == self._elig_epoch:
            ports = self._elig_cache.get(dst_fa)
            if ports is None:
                ports = self.eligible_ports(dst_fa)
        else:
            ports = self.eligible_ports(dst_fa)
        if not ports:
            self.no_route_drops += 1
            return
        port = self._spray.pick(dst_fa, ports)
        out = port.out
        depth = out.queued_frames
        # FCI: piggyback congestion on cells leaving a congested queue.
        if depth >= self._fci_threshold:
            payload.fci = True
            self.cells_fci_marked += 1
        if self.sample_down_queues and port.direction == "down":
            self.down_queue_depth.record(depth)
        self.cells_forwarded += 1
        out.send(payload, payload.size_bytes)

    def eligible_ports(self, dst_fa: DeviceId) -> List[FabricPort]:
        """Live ports usable toward ``dst_fa`` (down-routes preferred).

        Memoized per destination until the topology epoch moves (a link
        fails or recovers, a table rebuilds): repeat callers get the
        same list object back, which the spray arbiter exploits with an
        identity check.
        """
        epoch = self.sim.topology_epoch
        cache = self._elig_cache
        if epoch != self._elig_epoch:
            cache.clear()
            self._elig_epoch = epoch
        else:
            ports = cache.get(dst_fa)
            if ports is not None:
                return ports
        down = [
            p for p in self._down_map.get(dst_fa, ()) if p.out.up
        ]
        if down:
            ports = down
        elif self._static_up_all:
            ports = [p for p in self.up_ports if p.out.up]
        else:
            ports = [p for p in self._up_map.get(dst_fa, ()) if p.out.up]
        cache[dst_fa] = ports
        return ports

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop protocol tasks (teardown)."""
        if self._advertiser is not None:
            self._advertiser.stop()
        if self._monitor is not None:
            self._monitor.stop()
