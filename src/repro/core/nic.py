"""§8: the future data center — Fabric Adapters reduced to NICs.

The paper's closing vision removes ToRs entirely: every host gets a
NIC with a *reduced* Fabric Adapter inside (host-scale VOQ count,
host-memory-backed buffering, a lighter fabric interface), attached
directly to Fabric Elements.  Structurally the NIC is a Fabric Adapter
with exactly one "host port" (the PCIe/DMA path) and a handful of
fabric uplinks; its reachability table shrinks by
Num-FA-uplinks / Num-NIC-ports, or disappears when it attaches to a
single Fabric Element.

:class:`StardustNic` encodes those reductions on top of
:class:`~repro.core.fabric_adapter.FabricAdapter`, and
:func:`build_nic_edge_network` wires an all-FE network with NICs at
the edge — the "elimination of packet switches" of §1.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import StardustConfig
from repro.core.fabric_adapter import FabricAdapter
from repro.fabrics.stardust import StardustNetwork
from repro.fabrics.wiring import OneTierSpec
from repro.sim.units import KB, MB


#: Host-scale resource defaults (§8: "the number of VOQs will match
#: host-scale requirements", "the host's memory will be used for
#: further buffering").
NIC_DEFAULTS = dict(
    ingress_buffer_bytes=4 * MB,  # host-memory backed, per NIC
    egress_buffer_bytes=32 * KB,  # one port's worth of in-flight data
)


def nic_config(base: Optional[StardustConfig] = None) -> StardustConfig:
    """A StardustConfig with §8's host-scale reductions applied."""
    from dataclasses import replace

    base = base or StardustConfig()
    return replace(base, **NIC_DEFAULTS)


class StardustNic(FabricAdapter):
    """A Fabric-Adapter-on-a-NIC: one host port, few uplinks.

    Behaviourally identical to a Fabric Adapter (that is the point —
    the same scheduling/cell machinery, scaled down); exposed as its
    own type so experiments can assert the reductions.
    """

    # Empty on purpose: build_nic_edge_network rebrands live
    # FabricAdapter instances via __class__ assignment, which requires
    # an identical slot layout (no added instance state).
    __slots__ = ()

    @property
    def is_single_homed(self) -> bool:
        """Attached to exactly one Fabric Element (table-free mode)."""
        return len({up.dst for up in self.uplinks}) == 1

    def reachability_entries(self) -> int:
        """§8: table size shrinks with the uplink count (0 when
        single-homed — the lone FE makes every decision)."""
        if self.is_single_homed:
            return 0
        return len(self._uplinks)


def build_nic_edge_network(
    n_nics: int,
    uplinks_per_nic: int,
    config: Optional[StardustConfig] = None,
    reachability: str = "static",
) -> StardustNetwork:
    """An all-cell-switch network with NICs at the edge.

    Structurally a one-tier Stardust fabric whose "Fabric Adapters"
    are :class:`StardustNic` devices with a single host port each; the
    former ToR tier is gone, replaced by Fabric Elements (§8).
    """
    spec = OneTierSpec(
        num_fas=n_nics, uplinks_per_fa=uplinks_per_nic, hosts_per_fa=1
    )
    net = StardustNetwork(
        spec, config=nic_config(config), reachability=reachability
    )
    # Rebrand the edge devices as NICs (same mechanics, reduced scale).
    for fa in net.fas:
        fa.__class__ = StardustNic
    return net
