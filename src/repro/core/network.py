"""Deprecated location — fabric construction moved to :mod:`repro.fabrics`.

:class:`StardustNetwork` now lives in :mod:`repro.fabrics.stardust`
(registered as the ``"stardust"`` fabric backend) and the topology
specs in :mod:`repro.fabrics.wiring`, where one wiring plan serves
every fabric.  This module re-exports them so existing imports keep
working; new code should import from :mod:`repro.fabrics`.
"""

from repro.fabrics.stardust import StardustNetwork
from repro.fabrics.wiring import OneTierSpec, ThreeTierSpec, TwoTierSpec

__all__ = [
    "OneTierSpec",
    "StardustNetwork",
    "ThreeTierSpec",
    "TwoTierSpec",
]
