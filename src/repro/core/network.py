"""Builders that wire Fabric Adapters and Fabric Elements into fabrics.

Two concrete shapes cover the paper's evaluations:

* :class:`OneTierSpec` — FAs <-> one row of FEs (the Arista 7500E-style
  system of §6.1.2).
* :class:`TwoTierSpec` — pods of FAs + tier-1 FEs, spine row of tier-2
  FEs (the §6.2 simulation).

Every physical link is an independent serial link (link bundle of one,
the paper's core scaling argument).  ``reachability='static'`` installs
forwarding tables directly; ``'dynamic'`` runs the live protocol so
failure experiments can watch the fabric heal itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import StardustConfig
from repro.core.control import ControlPlane
from repro.core.fabric_adapter import FabricAdapter
from repro.core.fabric_element import FabricElement, FabricPort
from repro.net.addressing import DeviceId, PortAddress
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.stats import Histogram


@dataclass(frozen=True)
class OneTierSpec:
    """FAs directly attached to a single row of Fabric Elements."""

    num_fas: int
    uplinks_per_fa: int
    hosts_per_fa: int
    num_fes: Optional[int] = None  # default: one uplink per FE

    def __post_init__(self) -> None:
        if self.num_fas < 2:
            raise ValueError("need at least two Fabric Adapters")
        if self.uplinks_per_fa < 1 or self.hosts_per_fa < 1:
            raise ValueError("links per device must be positive")
        fes = self.num_fes if self.num_fes is not None else self.uplinks_per_fa
        if fes < 1 or self.uplinks_per_fa % fes != 0:
            raise ValueError("uplinks_per_fa must be a multiple of num_fes")

    @property
    def tiers(self) -> int:
        """Number of fabric tiers in this topology."""
        return 1

    @property
    def fe_count(self) -> int:
        """Number of Fabric Elements in the single tier."""
        return self.num_fes if self.num_fes is not None else self.uplinks_per_fa


@dataclass(frozen=True)
class TwoTierSpec:
    """Pods of (FAs x tier-1 FEs) under a spine row of tier-2 FEs.

    Within a pod every FA has one link to every tier-1 FE; every tier-1
    FE has one uplink to every spine.  This mirrors the §6.2 setup
    (256 FAs, t=32, 128 tier-1 FEs, 64 spines) at configurable scale.
    """

    pods: int
    fas_per_pod: int
    fes_per_pod: int
    spines: int
    hosts_per_fa: int

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ValueError("need at least one pod")
        if min(self.fas_per_pod, self.fes_per_pod, self.spines) < 1:
            raise ValueError("pod shape must be positive")
        if self.hosts_per_fa < 1:
            raise ValueError("hosts_per_fa must be positive")

    @property
    def tiers(self) -> int:
        """Number of fabric tiers in this topology."""
        return 2

    @property
    def num_fas(self) -> int:
        """Total Fabric Adapters across all pods."""
        return self.pods * self.fas_per_pod

    @property
    def uplinks_per_fa(self) -> int:
        """Fabric uplinks per Fabric Adapter."""
        return self.fes_per_pod


@dataclass(frozen=True)
class ThreeTierSpec:
    """Pods of (FAs x tier-1 x tier-2) under a global tier-3 spine row.

    Within a pod: every FA connects once to every tier-1 FE, every
    tier-1 FE once to every tier-2 FE.  Globally: every tier-2 FE
    connects once to every tier-3 spine.  §5.1: each added tier
    multiplies reach by another factor of the radix — with unbundled
    links, by the full radix.
    """

    pods: int
    fas_per_pod: int
    fes1_per_pod: int
    fes2_per_pod: int
    spines: int
    hosts_per_fa: int

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ValueError("need at least one pod")
        if min(
            self.fas_per_pod, self.fes1_per_pod,
            self.fes2_per_pod, self.spines,
        ) < 1:
            raise ValueError("pod shape must be positive")
        if self.hosts_per_fa < 1:
            raise ValueError("hosts_per_fa must be positive")

    @property
    def tiers(self) -> int:
        """Number of fabric tiers in this topology."""
        return 3

    @property
    def num_fas(self) -> int:
        """Total Fabric Adapters across all pods."""
        return self.pods * self.fas_per_pod

    @property
    def uplinks_per_fa(self) -> int:
        """Fabric uplinks per Fabric Adapter."""
        return self.fes1_per_pod


class StardustNetwork:
    """A fully wired Stardust fabric plus host attachment points."""

    def __init__(
        self,
        spec,
        config: Optional[StardustConfig] = None,
        sim: Optional[Simulator] = None,
        reachability: str = "static",
        spray_mode: str = "permutation",
    ) -> None:
        if reachability not in ("static", "dynamic"):
            raise ValueError(f"unknown reachability mode {reachability!r}")
        self.spec = spec
        self.config = config or StardustConfig()
        self.sim = sim or Simulator()
        self.reachability = reachability

        self.control = ControlPlane(self.sim, self._control_delay)
        self.fas: List[FabricAdapter] = []
        self.fes: List[FabricElement] = []
        self._host_sinks: Dict[PortAddress, Entity] = {}

        if isinstance(spec, OneTierSpec):
            self._build_one_tier(spec, spray_mode)
        elif isinstance(spec, TwoTierSpec):
            self._build_two_tier(spec, spray_mode)
        elif isinstance(spec, ThreeTierSpec):
            self._build_three_tier(spec, spray_mode)
        else:
            raise TypeError(f"unknown spec {type(spec).__name__}")

        if reachability == "dynamic":
            for fa in self.fas:
                fa.enable_protocol()
            for fe in self.fes:
                fe.enable_protocol()
        else:
            for fa in self.fas:
                fa.set_static_reachability()

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def _control_delay(self, src: DeviceId, dst: DeviceId) -> int:
        cfg = self.config
        if src == dst:
            return cfg.control_hop_ns
        hops = 2 * self.spec.tiers
        return hops * (cfg.control_hop_ns + cfg.fabric_propagation_ns)

    def _new_fa(self, fa_id: int, spray_mode: str) -> FabricAdapter:
        fa = FabricAdapter(
            self.sim,
            self.config,
            fa_id,
            f"fa{fa_id}",
            self.control,
            spray_mode=spray_mode,
        )
        self.fas.append(fa)
        return fa

    def _new_fe(self, fe_id: int, tier: int, spray_mode: str) -> FabricElement:
        fe = FabricElement(
            self.sim,
            self.config,
            fe_id,
            tier,
            f"fe{tier}.{fe_id}",
            spray_mode=spray_mode,
        )
        self.fes.append(fe)
        return fe

    def _connect_fa_fe(self, fa: FabricAdapter, fe: FabricElement) -> None:
        cfg = self.config
        up = Link(
            self.sim, fa, fe, cfg.fabric_link_rate_bps,
            cfg.fabric_propagation_ns, name=f"{fa.name}->{fe.name}",
        )
        down = Link(
            self.sim, fe, fa, cfg.fabric_link_rate_bps,
            cfg.fabric_propagation_ns, name=f"{fe.name}->{fa.name}",
        )
        fa.add_uplink(up, down)
        fe.add_port(fa.fa_id, down, up, direction="down")

    def _connect_fe_fe(self, lower: FabricElement, upper: FabricElement) -> None:
        cfg = self.config
        up = Link(
            self.sim, lower, upper, cfg.fabric_link_rate_bps,
            cfg.fabric_propagation_ns, name=f"{lower.name}->{upper.name}",
        )
        down = Link(
            self.sim, upper, lower, cfg.fabric_link_rate_bps,
            cfg.fabric_propagation_ns, name=f"{upper.name}->{lower.name}",
        )
        lower.add_port(upper.fe_id, up, down, direction="up")
        upper.add_port(lower.fe_id, down, up, direction="down")

    def _build_one_tier(self, spec: OneTierSpec, spray_mode: str) -> None:
        for fa_id in range(spec.num_fas):
            self._new_fa(fa_id, spray_mode)
        links_per_fe = spec.uplinks_per_fa // spec.fe_count
        for fe_id in range(spec.fe_count):
            fe = self._new_fe(fe_id, tier=1, spray_mode=spray_mode)
            fe.sample_down_queues = True
            for fa in self.fas:
                for _ in range(links_per_fe):
                    self._connect_fa_fe(fa, fe)
        if self.reachability == "static":
            for fe in self.fes:
                down_map = {}
                for port in fe.down_ports:
                    down_map.setdefault(port.neighbor, []).append(port)
                fe.set_static_reachability(down_map, up_reaches_everything=False)

    def _build_two_tier(self, spec: TwoTierSpec, spray_mode: str) -> None:
        for fa_id in range(spec.num_fas):
            self._new_fa(fa_id, spray_mode)
        tier1: List[FabricElement] = []
        fe_id = 0
        for pod in range(spec.pods):
            pod_fas = self.fas[
                pod * spec.fas_per_pod : (pod + 1) * spec.fas_per_pod
            ]
            for _ in range(spec.fes_per_pod):
                fe = self._new_fe(fe_id, tier=1, spray_mode=spray_mode)
                fe.sample_down_queues = True
                fe_id += 1
                tier1.append(fe)
                for fa in pod_fas:
                    self._connect_fa_fe(fa, fe)
        spines: List[FabricElement] = []
        for _ in range(spec.spines):
            spine = self._new_fe(fe_id, tier=2, spray_mode=spray_mode)
            fe_id += 1
            spines.append(spine)
        for fe in tier1:
            for spine in spines:
                self._connect_fe_fe(fe, spine)

        if self.reachability == "static":
            for fe in tier1:
                down_map = {}
                for port in fe.down_ports:
                    down_map.setdefault(port.neighbor, []).append(port)
                fe.set_static_reachability(down_map, up_reaches_everything=True)
            for spine in spines:
                # A spine's "down" ports are its only ports; it reaches a
                # destination through every tier-1 FE in that FA's pod.
                down_map: Dict[DeviceId, List[FabricPort]] = {}
                by_neighbor = {p.neighbor: p for p in spine.down_ports}
                for pod in range(spec.pods):
                    pod_fes = tier1[
                        pod * spec.fes_per_pod : (pod + 1) * spec.fes_per_pod
                    ]
                    pod_fas = self.fas[
                        pod * spec.fas_per_pod : (pod + 1) * spec.fas_per_pod
                    ]
                    ports = [by_neighbor[fe.fe_id] for fe in pod_fes]
                    for fa in pod_fas:
                        down_map[fa.fa_id] = ports
                spine.set_static_reachability(
                    down_map, up_reaches_everything=False
                )

    def _build_three_tier(self, spec: ThreeTierSpec, spray_mode: str) -> None:
        for fa_id in range(spec.num_fas):
            self._new_fa(fa_id, spray_mode)
        fe_id = 0
        tier2_all: List[FabricElement] = []
        pod_fas_of: Dict[int, List[FabricAdapter]] = {}
        for pod in range(spec.pods):
            pod_fas = self.fas[
                pod * spec.fas_per_pod : (pod + 1) * spec.fas_per_pod
            ]
            pod_fas_of[pod] = pod_fas
            tier1: List[FabricElement] = []
            for _ in range(spec.fes1_per_pod):
                fe = self._new_fe(fe_id, tier=1, spray_mode=spray_mode)
                fe.sample_down_queues = True
                fe_id += 1
                tier1.append(fe)
                for fa in pod_fas:
                    self._connect_fa_fe(fa, fe)
            tier2: List[FabricElement] = []
            for _ in range(spec.fes2_per_pod):
                fe = self._new_fe(fe_id, tier=2, spray_mode=spray_mode)
                fe_id += 1
                fe.pod = pod  # type: ignore[attr-defined]
                tier2.append(fe)
                tier2_all.append(fe)
                for low in tier1:
                    self._connect_fe_fe(low, fe)
        spines: List[FabricElement] = []
        for _ in range(spec.spines):
            spine = self._new_fe(fe_id, tier=3, spray_mode=spray_mode)
            fe_id += 1
            spines.append(spine)
        for mid in tier2_all:
            for spine in spines:
                self._connect_fe_fe(mid, spine)

        if self.reachability == "static":
            # Tier-1: direct down routes to pod FAs; anything else up.
            for fe in self.fes:
                if fe.tier == 1:
                    down_map = {}
                    for port in fe.down_ports:
                        down_map.setdefault(port.neighbor, []).append(port)
                    fe.set_static_reachability(
                        down_map, up_reaches_everything=True
                    )
            # Tier-2: every FA of the own pod is below (via any tier-1
            # port); other pods are up through the spines.
            for fe in self.fes:
                if fe.tier == 2:
                    pod = fe.pod  # type: ignore[attr-defined]
                    down_map = {
                        fa.fa_id: list(fe.down_ports)
                        for fa in pod_fas_of[pod]
                    }
                    fe.set_static_reachability(
                        down_map, up_reaches_everything=True
                    )
            # Spines: reach a FA through any tier-2 FE of its pod.
            for spine in self.fes:
                if spine.tier != 3:
                    continue
                ports_by_pod: Dict[int, List[FabricPort]] = {}
                for port in spine.down_ports:
                    mid = next(
                        fe for fe in self.fes if fe.fe_id == port.neighbor
                    )
                    ports_by_pod.setdefault(
                        mid.pod, []  # type: ignore[attr-defined]
                    ).append(port)
                down_map = {}
                for pod, fas in pod_fas_of.items():
                    for fa in fas:
                        down_map[fa.fa_id] = ports_by_pod[pod]
                spine.set_static_reachability(
                    down_map, up_reaches_everything=False
                )

    # ------------------------------------------------------------------
    # Hosts
    # ------------------------------------------------------------------
    def attach_host(
        self, address: PortAddress, host: Entity
    ) -> tuple[Link, Link]:
        """Attach ``host`` at ``address``; returns (to_fabric, to_host).

        The host sends packets on the first returned link; the Fabric
        Adapter delivers reassembled packets on the second.
        """
        if address in self._host_sinks:
            raise ValueError(f"host already attached at {address}")
        fa = self.fas[address.fa]
        if address.port != len(fa.egress_ports):
            raise ValueError(
                f"attach ports in order: expected port "
                f"{len(fa.egress_ports)}, got {address.port}"
            )
        cfg = self.config
        to_fabric = Link(
            self.sim, host, fa, cfg.host_link_rate_bps,
            cfg.host_propagation_ns, name=f"{host.name}->{fa.name}",
        )
        to_host = Link(
            self.sim, fa, host, cfg.host_link_rate_bps,
            cfg.host_propagation_ns, name=f"{fa.name}->{host.name}",
        )
        host.attach_port(to_fabric)
        fa.add_host_port(to_host)
        self._host_sinks[address] = host
        return to_fabric, to_host

    def host_at(self, address: PortAddress) -> Entity:
        """The host entity attached at ``address``."""
        return self._host_sinks[address]

    @property
    def host_count(self) -> int:
        """Number of attached hosts."""
        return len(self._host_sinks)

    # ------------------------------------------------------------------
    # Running & metrics
    # ------------------------------------------------------------------
    def run(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.sim.run_for(duration_ns)

    def stop(self) -> None:
        """Stop all periodic device tasks (teardown)."""
        for fa in self.fas:
            fa.stop()
        for fe in self.fes:
            fe.stop()

    def cell_latency(self) -> Histogram:
        """Merged fabric-traversal latency histogram (ns)."""
        merged = Histogram("fabric.cell_latency_ns")
        for fa in self.fas:
            merged.extend(fa.cell_latency.samples)
        return merged

    def packet_latency(self) -> Histogram:
        """Merged host-to-host packet latency histogram (ns)."""
        merged = Histogram("fabric.packet_latency_ns")
        for fa in self.fas:
            merged.extend(fa.packet_latency.samples)
        return merged

    def fabric_queue_depth(self) -> Histogram:
        """Queue depths (cells) seen at last-stage down-links (Fig 9)."""
        merged = Histogram("fabric.down_queue_cells")
        for fe in self.fes:
            merged.extend(fe.down_queue_depth.samples)
        return merged

    def fabric_cell_drops(self) -> int:
        """Cells lost inside the fabric (must be zero: lossless, §5.5)."""
        return sum(fe.no_route_drops for fe in self.fes)

    def ingress_drops(self) -> int:
        """Packets dropped at Fabric Adapter ingress buffers."""
        return sum(fa.ingress_drops for fa in self.fas)

    def total_delivered_bytes(self) -> int:
        """Bytes delivered to hosts across all egress ports."""
        return sum(
            port.delivered.total_bytes
            for fa in self.fas
            for port in fa.egress_ports
        )
