"""Stardust core: the paper's primary contribution.

Public surface:

* :class:`StardustConfig` — every knob of the architecture.
* :class:`StardustNetwork` with :class:`OneTierSpec` / :class:`TwoTierSpec`
  — build and run a fabric.
* :class:`FabricAdapter` / :class:`FabricElement` — the two device types.
* Cells, VOQs, packing, credits, spray, reassembly, reachability — the
  mechanisms, individually importable and testable.
"""

from repro.core.cell import Cell, CellFragment, CellKind, VoqId
from repro.core.config import StardustConfig
from repro.core.control import (
    ControlPlane,
    CreditGrant,
    VoqDrained,
    VoqStatus,
)
from repro.core.credit import EgressScheduler
from repro.core.fabric_adapter import FabricAdapter
from repro.core.fabric_element import FabricElement, FabricPort
from repro.core.network import (
    OneTierSpec,
    StardustNetwork,
    ThreeTierSpec,
    TwoTierSpec,
)
from repro.core.packing import burst_wire_bytes, cells_for_bytes, pack_burst
from repro.core.reachability import ReachabilityMonitor
from repro.core.reassembly import ReassemblyEngine
from repro.core.spray import SprayArbiter
from repro.core.voq import SharedBufferPool, Voq

__all__ = [
    "Cell",
    "CellFragment",
    "CellKind",
    "VoqId",
    "StardustConfig",
    "ControlPlane",
    "CreditGrant",
    "VoqStatus",
    "VoqDrained",
    "EgressScheduler",
    "FabricAdapter",
    "FabricElement",
    "FabricPort",
    "OneTierSpec",
    "TwoTierSpec",
    "ThreeTierSpec",
    "StardustNetwork",
    "pack_burst",
    "cells_for_bytes",
    "burst_wire_bytes",
    "ReachabilityMonitor",
    "ReassemblyEngine",
    "SprayArbiter",
    "SharedBufferPool",
    "Voq",
]
