"""Stardust core: the paper's primary contribution.

Public surface:

* :class:`StardustConfig` — every knob of the architecture.
* :class:`FabricAdapter` / :class:`FabricElement` — the two device types.
* Cells, VOQs, packing, credits, spray, reassembly, reachability — the
  mechanisms, individually importable and testable.
* :class:`StardustNetwork` and the topology specs re-export from
  :mod:`repro.fabrics`, their new home (resolved lazily so that
  package can import the device modules above without a cycle).
"""

from repro.core.cell import Cell, CellFragment, CellKind, VoqId
from repro.core.config import StardustConfig
from repro.core.control import (
    ControlPlane,
    CreditGrant,
    VoqDrained,
    VoqStatus,
)
from repro.core.credit import EgressScheduler
from repro.core.fabric_adapter import FabricAdapter
from repro.core.fabric_element import FabricElement, FabricPort
from repro.core.packing import burst_wire_bytes, cells_for_bytes, pack_burst
from repro.core.reachability import ReachabilityMonitor
from repro.core.reassembly import ReassemblyEngine
from repro.core.spray import SprayArbiter
from repro.core.voq import SharedBufferPool, Voq

#: Names that now live in repro.fabrics, resolved on first access.
_FABRIC_EXPORTS = (
    "OneTierSpec",
    "TwoTierSpec",
    "ThreeTierSpec",
    "StardustNetwork",
)


def __getattr__(name: str) -> object:
    if name in _FABRIC_EXPORTS:
        from repro.core import network

        return getattr(network, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Cell",
    "CellFragment",
    "CellKind",
    "VoqId",
    "StardustConfig",
    "ControlPlane",
    "CreditGrant",
    "VoqStatus",
    "VoqDrained",
    "EgressScheduler",
    "FabricAdapter",
    "FabricElement",
    "FabricPort",
    "OneTierSpec",  # noqa: F822 — lazy re-export from repro.fabrics
    "TwoTierSpec",  # noqa: F822
    "ThreeTierSpec",  # noqa: F822
    "StardustNetwork",  # noqa: F822
    "pack_burst",
    "cells_for_bytes",
    "burst_wire_bytes",
    "ReachabilityMonitor",
    "ReassemblyEngine",
    "SprayArbiter",
    "SharedBufferPool",
    "Voq",
]
