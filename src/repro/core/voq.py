"""Virtual Output Queues at the Fabric Adapter ingress.

One VOQ per (destination port, traffic class).  VOQs share the Fabric
Adapter's deep ingress buffer: admission is checked against the shared
pool, so empty VOQs cost nothing (§3.3).  Each VOQ tracks its credit
balance — credits may overshoot the queue (surplus is remembered) and a
burst may overshoot the credit (deficit is remembered), mirroring the
paper's "surplus data stored for later accounting".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.core.cell import VoqId
from repro.net.packet import Packet


class SharedBufferPool:
    """Byte budget shared by all VOQs of one Fabric Adapter."""

    __slots__ = (
        "capacity_bytes", "used_bytes", "dropped_frames", "dropped_bytes",
    )

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self.dropped_frames = 0
        self.dropped_bytes = 0

    def try_admit(self, nbytes: int) -> bool:
        """Reserve ``nbytes``; False (and a drop recorded) if full."""
        if self.used_bytes + nbytes > self.capacity_bytes:
            self.dropped_frames += 1
            self.dropped_bytes += nbytes
            return False
        self.used_bytes += nbytes
        return True

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool (packets dequeued)."""
        if nbytes > self.used_bytes:
            raise ValueError("releasing more than reserved")
        self.used_bytes -= nbytes

    @property
    def occupancy(self) -> float:
        """Used fraction of the shared buffer pool."""
        return self.used_bytes / self.capacity_bytes

    @property
    def free_bytes(self) -> int:
        """Unreserved bytes remaining in the pool."""
        return self.capacity_bytes - self.used_bytes


class Voq:
    """A single virtual output queue."""

    __slots__ = (
        "id", "_pool", "_packets", "_bytes", "credit_balance",
        "last_reported_bytes", "enqueued_packets", "enqueued_bytes",
        "dequeued_packets", "peak_bytes", "next_seq",
    )

    def __init__(self, voq_id: VoqId, pool: SharedBufferPool) -> None:
        self.id = voq_id
        self._pool = pool
        self._packets: Deque[Packet] = deque()
        self._bytes = 0
        #: Positive balance: credit granted but not yet consumed.
        #: Negative: the last burst overshot its credit (deficit).
        self.credit_balance = 0
        #: Cumulative enqueued bytes last reported to the destination's
        #: egress scheduler (see FabricAdapter demand reporting).
        self.last_reported_bytes = 0
        # Accounting.
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dequeued_packets = 0
        self.peak_bytes = 0
        #: Next cell sequence number for this VOQ's reassembly context.
        self.next_seq = 0

    @property
    def bytes(self) -> int:
        """Bytes currently queued in this VOQ."""
        return self._bytes

    @property
    def packets(self) -> int:
        """Packets currently queued in this VOQ."""
        return len(self._packets)

    @property
    def empty(self) -> bool:
        """True when no packets are queued."""
        return not self._packets

    def push(self, packet: Packet) -> bool:
        """Admit ``packet`` against the shared pool; False if dropped."""
        if not self._pool.try_admit(packet.size_bytes):
            return False
        self._packets.append(packet)
        self._bytes += packet.size_bytes
        self.enqueued_packets += 1
        self.enqueued_bytes += packet.size_bytes
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes
        return True

    def grant(self, credit_bytes: int) -> List[Packet]:
        """Apply a credit and dequeue the burst it releases.

        Dequeues whole packets while the balance is positive; a packet
        that overshoots leaves a deficit that future credits repay
        (§3.3).  Unused balance (queue drained) is kept as surplus.

        Bookkeeping is batched: the balance runs in a local, the shared
        pool is released once for the whole burst, counters update once
        — nothing observes intermediate state (the loop makes no
        callbacks), and per-grant cost is what the credit hot path pays
        on every scheduler pump.
        """
        if credit_bytes <= 0:
            raise ValueError("credit must be positive")
        balance = self.credit_balance + credit_bytes
        burst: List[Packet] = []
        packets = self._packets
        released = 0
        while packets and balance > 0:
            packet = packets.popleft()
            size = packet.size_bytes
            released += size
            balance -= size
            burst.append(packet)
        if released:
            self._bytes -= released
            self._pool.release(released)
            self.dequeued_packets += len(burst)
        if not packets and balance > 0:
            # Queue drained: surplus credit is forfeited (the scheduler
            # stops granting to empty VOQs; keeping the balance would
            # let a later burst burst-out above fabric speedup).
            balance = 0
        self.credit_balance = balance
        return burst

    def take_seq(self, count: int) -> int:
        """Reserve ``count`` consecutive cell sequence numbers."""
        first = self.next_seq
        self.next_seq += count
        return first

    def snapshot(self) -> tuple[int, int, int]:
        """``(bytes, packets, credit_balance)`` — one telemetry sample.

        A single tuple read so per-VOQ probes touch the queue once per
        tick instead of three property round-trips.
        """
        return self._bytes, len(self._packets), self.credit_balance
