"""The Fabric Adapter: the edge of a Stardust network (§4.1).

Ingress: parse arriving host packets, queue them in VOQs against the
deep shared buffer, announce non-empty VOQs to the destination port's
egress scheduler, and on each credit dequeue a burst, pack it into
cells and spray the cells across all uplinks that reach the
destination Fabric Adapter.

Egress: resequence and reassemble arriving cells into packets, buffer
them shallowly per port, drain each port at line rate toward the host,
pace the port's credit generation, throttle it when FCI-marked cells
arrive and pause it when the shallow buffer fills.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, ItemsView, List, Optional

from repro.core.cell import Cell, CellKind, VoqId
from repro.core.config import StardustConfig
from repro.core.control import (
    ControlMessage,
    ControlPlane,
    CreditGrant,
    VoqDrained,
    VoqStatus,
)
from repro.core.credit import EgressScheduler
from repro.core.packing import pack_burst
from repro.core.reachability import ReachabilityMonitor
from repro.core.reassembly import ReassemblyEngine
from repro.core.spray import SprayArbiter
from repro.net.addressing import DeviceId
from repro.net.packet import Packet, PauseFrame
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.stats import Histogram, RateMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.voq import Voq


@dataclass(slots=True)
class EgressPort:
    """One host-facing port: shallow buffer + credit scheduler."""

    index: int
    link: Link
    scheduler: EgressScheduler
    delivered: RateMeter
    drops: int = 0


class FabricAdapter(Entity):
    """A Stardust edge device (ToR role)."""

    __slots__ = (
        "config", "fa_id", "control", "_voq_cls", "buffer_pool", "_voqs",
        "_report_flush_pending", "_uplinks",
        "_static_reach", "_elig_cache", "_elig_epoch", "_live_uplinks",
        "_spray", "egress_ports", "reassembly", "_monitor", "_advertiser",
        "_inbound_index", "cell_latency", "packet_latency", "cells_sent",
        "cells_received", "packets_in", "packets_out", "ingress_drops",
        "local_switched", "low_latency_cells", "hosts_paused",
        "pause_frames_sent", "alive", "dead_drops",
    )

    def __init__(
        self,
        sim: Simulator,
        config: StardustConfig,
        fa_id: DeviceId,
        name: str,
        control: ControlPlane,
        spray_mode: str = "permutation",
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.fa_id = fa_id
        self.control = control
        control.register(fa_id, self)

        from repro.core.voq import SharedBufferPool, Voq

        self._voq_cls = Voq
        self.buffer_pool = SharedBufferPool(config.ingress_buffer_bytes)
        self._voqs: Dict[VoqId, "Voq"] = {}
        self._report_flush_pending: set[VoqId] = set()

        # Fabric side.
        self._uplinks: List[Link] = []
        self._static_reach = True
        # Eligible-uplink lists memoized per destination on the
        # simulator's topology epoch (see FabricElement._elig_cache):
        # the static view is destination-independent, so it shares one
        # list across all destinations.
        self._elig_cache: Dict[DeviceId, List[Link]] = {}
        self._elig_epoch = -1
        self._live_uplinks: Optional[List[Link]] = None

        self._spray = SprayArbiter(
            rng or random.Random(config.seed ^ (0xADA9 + fa_id)),
            reshuffle_every=config.spray_reshuffle_cells,
            mode=spray_mode,
        )

        # Host side.
        self.egress_ports: List[EgressPort] = []

        # Egress machinery.
        self.reassembly = ReassemblyEngine(
            sim, self._packet_reassembled, config.reassembly_timeout_ns
        )

        # Reachability protocol (dynamic mode).
        self._monitor: Optional[ReachabilityMonitor] = None
        self._advertiser: Optional[PeriodicTask] = None
        #: Inbound fabric link -> its uplink's attachment index.  The
        #: index doubles as the reachability monitor's key: stable
        #: across runs, unlike object identities.
        self._inbound_index: Dict[Link, int] = {}

        # Instrumentation.
        self.cell_latency = Histogram(f"{name}.cell_latency_ns")
        self.packet_latency = Histogram(f"{name}.packet_latency_ns")
        self.cells_sent = 0
        self.cells_received = 0
        self.packets_in = 0
        self.packets_out = 0
        self.ingress_drops = 0
        self.local_switched = 0
        self.low_latency_cells = 0
        #: Host flow-control state (§5.4): True while PAUSE is asserted.
        self.hosts_paused = False
        self.pause_frames_sent = 0
        #: Device-death state: a failed FA neither accepts host packets
        #: nor egresses cells; whatever still reaches it is counted.
        self.alive = True
        self.dead_drops = 0

    # ------------------------------------------------------------------
    # Wiring (builder API)
    # ------------------------------------------------------------------
    def add_uplink(self, out: Link, inbound: Link) -> None:
        """Attach a fabric uplink (out) and its reverse (inbound)."""
        self._inbound_index[inbound] = len(self._uplinks)
        self._uplinks.append(out)
        self.sim.topology_epoch += 1

    def add_host_port(self, link: Link) -> EgressPort:
        """Attach a host-facing downlink; creates its egress scheduler."""
        index = len(self.egress_ports)
        scheduler = EgressScheduler(
            self.sim,
            self.config,
            link.rate_bps,
            grant_fn=lambda fa, voq, nb: self._send_grant(fa, voq, nb),
            name=f"{self.name}.p{index}.sched",
        )
        port = EgressPort(
            index=index,
            link=link,
            scheduler=scheduler,
            delivered=RateMeter(f"{self.name}.p{index}.delivered"),
        )
        self.egress_ports.append(port)
        link.on_transmit = lambda _p, port=port: self._egress_drained(port)
        return port

    @property
    def uplinks(self) -> List[Link]:
        """The fabric-facing links, in attachment order."""
        return list(self._uplinks)

    def set_static_reachability(self) -> None:
        """All live uplinks reach every destination (healthy fat-tree)."""
        self._static_reach = True

    def enable_protocol(self) -> None:
        """Learn uplink reachability from FE advertisements."""
        self._static_reach = False
        self._monitor = ReachabilityMonitor(
            self.sim,
            self.config.reachability_period_ns,
            self.config.reachability_up_threshold,
            self.config.reachability_miss_threshold,
            on_change=self._reach_changed,
        )
        for index in range(len(self._uplinks)):
            self._monitor.track(index)
        self._advertiser = PeriodicTask(
            self.sim,
            self.config.reachability_period_ns,
            self._advertise,
            phase_ns=(self.fa_id % 5 + 1)
            * (self.config.reachability_period_ns // 8 + 1),
        )

    def _advertise(self) -> None:
        for up in self._uplinks:
            if not up.up:
                continue
            cell = Cell(
                kind=CellKind.REACHABILITY,
                dst_fa=0,
                src_fa=self.fa_id,
                header_bytes=self.config.reachability_cell_bytes,
                sender=self.fa_id,
                reachable=frozenset({self.fa_id}),
            )
            up.send(cell, self.config.reachability_cell_bytes)

    def _reach_changed(self) -> None:
        """The learned reachability view moved: spoil eligible caches."""
        self.sim.topology_epoch += 1

    def eligible_uplinks(self, dst_fa: DeviceId) -> List[Link]:
        """Live uplinks that reach ``dst_fa`` (reachability view).

        Memoized on the topology epoch; between liveness/reachability
        changes every call returns the same list object (the spray
        arbiter keys its walk state on that identity).
        """
        epoch = self.sim.topology_epoch
        if epoch != self._elig_epoch:
            self._elig_cache.clear()
            self._live_uplinks = None
            self._elig_epoch = epoch
        if self._static_reach:
            live = self._live_uplinks
            if live is None:
                live = self._live_uplinks = [
                    u for u in self._uplinks if u.up
                ]
            return live
        result = self._elig_cache.get(dst_fa)
        if result is not None:
            return result
        assert self._monitor is not None
        result = []
        for index, up in enumerate(self._uplinks):
            if not up.up:
                continue
            if dst_fa in self._monitor.reachable_via(index):
                result.append(up)
        self._elig_cache[dst_fa] = result
        return result

    # ------------------------------------------------------------------
    # Failure injection (§5.10 device death)
    # ------------------------------------------------------------------
    def fail(self) -> int:
        """Kill this FA: uplinks go down, arriving traffic is dropped.

        Returns frames lost from the uplink transmit queues.  Links
        *into* a dead FA (FE down-links, host up-links) belong to its
        neighbors; the fault injector fails the fabric-side ones too.
        """
        self.alive = False
        return sum(up.fail() for up in self._uplinks)

    def restore(self) -> None:
        """Bring the FA (and its uplinks) back up."""
        self.alive = True
        for up in self._uplinks:
            up.restore()

    # ------------------------------------------------------------------
    # Ingress: host packets in
    # ------------------------------------------------------------------
    def receive(self, payload: Any, link: Link) -> None:
        """Dispatch arriving packets (host side) and cells (fabric side)."""
        if not self.alive:
            self.dead_drops += 1
            return
        # Cells first: an FA receives roughly one cell per ~payload-size
        # bytes but only one packet per MTU, so this is the hot branch.
        if isinstance(payload, Cell):
            if payload.kind is CellKind.REACHABILITY:
                if self._monitor is not None:
                    assert payload.reachable is not None
                    index = self._inbound_index.get(link)
                    if index is not None:
                        self._monitor.heard(index, payload.reachable)
                return
            self._egress_cell(payload)
        elif isinstance(payload, Packet):
            self.ingress_packet(payload)
        else:  # pragma: no cover - wiring error
            raise TypeError(f"unexpected payload {type(payload).__name__}")

    def ingress_packet(self, packet: Packet) -> None:
        """Accept a packet from a host (or injector)."""
        self.packets_in += 1
        if packet.dst.fa == self.fa_id:
            # Local switching: same-ToR traffic never enters the fabric.
            self.local_switched += 1
            self._deliver_to_port(packet)
            return
        tc = min(packet.priority, self.config.traffic_classes - 1)
        voq_id = VoqId(dst=packet.dst, priority=tc)
        voq = self._voqs.get(voq_id)
        if voq is None:
            voq = self._voq_cls(voq_id, self.buffer_pool)
            self._voqs[voq_id] = voq
        if not voq.push(packet):
            self.ingress_drops += 1
            return
        self._check_host_pause()
        if tc in self.config.low_latency_classes:
            # §5.6: low-latency VOQs transmit immediately, without
            # waiting a credit round-trip.  (Their aggregate bandwidth
            # is assumed small; nothing throttles them.)
            burst = voq.grant(packet.size_bytes)
            if burst:
                self._emit_burst(voq, burst)
                self.low_latency_cells += 1
            return
        self._maybe_report(voq)

    # ------------------------------------------------------------------
    # Host flow control (§5.4)
    # ------------------------------------------------------------------
    def _check_host_pause(self) -> None:
        threshold = self.config.host_pause_threshold
        if threshold is None:
            return
        occupancy = self.buffer_pool.occupancy
        if not self.hosts_paused and occupancy > threshold:
            self._signal_hosts(pause=True)
        elif (
            self.hosts_paused
            and occupancy < self.config.host_resume_threshold
        ):
            self._signal_hosts(pause=False)

    def _signal_hosts(self, pause: bool) -> None:
        self.hosts_paused = pause
        frame = PauseFrame(pause=pause)
        for port in self.egress_ports:
            if port.link.up:
                self.pause_frames_sent += 1
                port.link.send(frame, frame.size_bytes)

    def _maybe_report(self, voq: "Voq") -> None:
        """Demand reporting: immediately past the threshold, otherwise a
        deferred flush so sub-threshold tails are reported too."""
        unreported = voq.enqueued_bytes - voq.last_reported_bytes
        if unreported <= 0:
            return
        if unreported >= self.config.voq_report_threshold_bytes:
            self._report_now(voq)
        elif voq.id not in self._report_flush_pending:
            self._report_flush_pending.add(voq.id)
            self.sim.schedule(
                self.config.voq_report_flush_ns,
                lambda: self._flush_report(voq),
            )

    def _flush_report(self, voq: "Voq") -> None:
        self._report_flush_pending.discard(voq.id)
        if voq.enqueued_bytes > voq.last_reported_bytes:
            self._report_now(voq)

    def _report_now(self, voq: "Voq") -> None:
        voq.last_reported_bytes = voq.enqueued_bytes
        self.control.send(
            self.fa_id,
            voq.id.dst.fa,
            VoqStatus(
                ingress_fa=self.fa_id,
                voq=voq.id,
                enqueued_bytes=voq.enqueued_bytes,
            ),
        )

    def voq(self, voq_id: VoqId) -> Optional["Voq"]:
        """The VOQ for ``voq_id`` (tests/instrumentation)."""
        return self._voqs.get(voq_id)

    @property
    def voq_count(self) -> int:
        """Number of VOQs ever instantiated (empty ones cost nothing)."""
        return len(self._voqs)

    def total_queued_bytes(self) -> int:
        """Bytes currently queued across all VOQs."""
        return sum(v.bytes for v in self._voqs.values())

    def total_credit_balance(self) -> int:
        """Net credit balance across all VOQs (surpluses minus
        deficits) — the telemetry probes' credit-loop health signal."""
        return sum(v.credit_balance for v in self._voqs.values())

    def voq_items(self) -> ItemsView[VoqId, "Voq"]:
        """Live ``(VoqId, Voq)`` pairs, for per-VOQ telemetry probes.

        VOQs appear lazily (first packet toward a destination), so
        per-VOQ samplers re-enumerate each tick rather than binding a
        fixed list at attach time.
        """
        return self._voqs.items()

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def on_control(self, message: ControlMessage) -> None:
        """Handle a scheduler control message (status/grant)."""
        if isinstance(message, VoqStatus):
            port = self.egress_ports[message.voq.dst.port]
            port.scheduler.report(
                message.ingress_fa, message.voq, message.enqueued_bytes
            )
        elif isinstance(message, VoqDrained):
            port = self.egress_ports[message.voq.dst.port]
            port.scheduler.withdraw(message.ingress_fa, message.voq)
        elif isinstance(message, CreditGrant):
            self._apply_grant(message.voq, message.credit_bytes)
        else:  # pragma: no cover
            raise TypeError(f"unknown control message {message!r}")

    def _send_grant(
        self, ingress_fa: DeviceId, voq: VoqId, nbytes: int
    ) -> None:
        self.control.send(
            self.fa_id, ingress_fa, CreditGrant(voq=voq, credit_bytes=nbytes)
        )

    def _apply_grant(self, voq_id: VoqId, credit_bytes: int) -> None:
        voq = self._voqs.get(voq_id)
        if voq is None:
            return
        burst = voq.grant(credit_bytes)
        self._check_host_pause()  # pool drained: maybe resume hosts
        if not burst:
            return
        self._emit_burst(voq, burst)

    def _emit_burst(self, voq: "Voq", burst: List[Packet]) -> None:
        """Chop a dequeued burst into cells and spray them (§3.4)."""
        voq_id = voq.id
        cells = pack_burst(
            burst,
            payload_bytes=self.config.cell_payload_bytes,
            header_bytes=self.config.cell_header_bytes,
            dst_fa=voq_id.dst.fa,
            src_fa=self.fa_id,
            voq=voq_id,
            first_seq=voq.next_seq,
            created_ns=self.sim.now,
            packing=self.config.packet_packing,
        )
        voq.take_seq(len(cells))
        self._spray_cells(voq_id.dst.fa, cells)

    def _spray_cells(self, dst_fa: DeviceId, cells: List[Cell]) -> None:
        links = self.eligible_uplinks(dst_fa)
        if not links:
            # Destination unreachable right now; the burst is lost the
            # way a real FA would lose it (reassembly timeout covers
            # whatever partially arrived).
            self.ingress_drops += len(cells)
            return
        for cell in cells:
            link = self._spray.pick(dst_fa, links)
            self.cells_sent += 1
            link.send(cell, cell.size_bytes)

    # ------------------------------------------------------------------
    # Egress: cells in, packets out
    # ------------------------------------------------------------------
    def _egress_cell(self, cell: Cell) -> None:
        self.cells_received += 1
        self.cell_latency.record(self.sim.now - cell.created_ns)
        if cell.fci and cell.voq is not None:
            port = self.egress_ports[cell.voq.dst.port]
            port.scheduler.fci_mark()
        self.reassembly.receive(cell)

    def _packet_reassembled(self, packet: Packet, voq: VoqId) -> None:
        self._deliver_to_port(packet)

    def _deliver_to_port(self, packet: Packet) -> None:
        port = self.egress_ports[packet.dst.port]
        cap = self.config.egress_buffer_bytes
        if port.link.queued_bytes + packet.size_bytes > cap:
            port.drops += 1
            return
        self.packets_out += 1
        self.packet_latency.record(self.sim.now - packet.created_ns)
        port.delivered.record(self.sim.now, packet.size_bytes)
        port.link.send(packet, packet.wire_bytes)
        if port.link.queued_bytes > cap * self.config.egress_high_watermark:
            port.scheduler.pause()

    def _egress_drained(self, port: EgressPort) -> None:
        cap = self.config.egress_buffer_bytes
        if (
            port.scheduler.paused
            and port.link.queued_bytes <= cap * self.config.egress_low_watermark
        ):
            port.scheduler.resume()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop schedulers and protocol tasks (teardown)."""
        for port in self.egress_ports:
            port.scheduler.stop()
        if self._advertiser is not None:
            self._advertiser.stop()
        if self._monitor is not None:
            self._monitor.stop()
