"""Distributed egress scheduling: the credit machinery (§3.3, §4.1).

Every egress port of every Fabric Adapter runs an :class:`EgressScheduler`.
Ingress VOQs anywhere in the data center report their demand (cumulative
enqueued bytes — idempotent under loss or reordering of reports); the
scheduler grants credits round-robin across VOQs with outstanding
demand, strict-priority across traffic classes.

Grants are *self-clocked*: after granting ``g`` bytes the next grant is
scheduled ``g x 8 / credit_rate`` later, so the total credit rate tracks
the port rate times (1 + credit speedup) regardless of grant sizes —
a 64-byte grant to an ACK VOQ consumes 64 bytes of port bandwidth, not
a whole credit slot.  A grant never exceeds the VOQ's outstanding
demand, which is how the paper's scheduler can have "a view of all of
the VOQs toward its ports".

The scheduler pauses while the egress buffer is above its high
watermark and stretches its grant gaps while FCI-marked cells arrive.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.cell import VoqId
from repro.core.config import StardustConfig
from repro.net.addressing import DeviceId
from repro.sim.engine import Event, Simulator
from repro.sim.units import SECOND

#: A VOQ as the scheduler sees it: who holds it and which VOQ it is.
RemoteVoq = Tuple[DeviceId, VoqId]

#: Delivers a credit grant back to the ingress FA:
#: (ingress_fa, voq, credit_bytes) -> None.
GrantFn = Callable[[DeviceId, VoqId, int], None]


class EgressScheduler:
    """Demand-aware credit generator for one egress port."""

    __slots__ = (
        "sim", "config", "name", "port_rate_bps", "_grant_fn",
        "_credit_rate_bps", "_enqueued", "_granted", "_rings", "_in_ring",
        "_pump_event", "_paused", "_throttled_until_ns",
        "_wrr_cursor", "_wrr_cached",
        "credits_granted", "credit_bytes_granted", "fci_marks_seen",
    )

    def __init__(
        self,
        sim: Simulator,
        config: StardustConfig,
        port_rate_bps: int,
        grant_fn: GrantFn,
        name: str = "egress-sched",
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.port_rate_bps = port_rate_bps
        self._grant_fn = grant_fn

        #: Credit issue rate in bits/sec (slightly above port rate).
        self._credit_rate_bps = port_rate_bps * (1.0 + config.credit_speedup)

        # Demand bookkeeping (cumulative counters, drift-free).
        self._enqueued: Dict[RemoteVoq, int] = {}
        self._granted: Dict[RemoteVoq, int] = {}

        # One FIFO ring of VOQs with outstanding demand per traffic
        # class (strict priority: class 0 first).
        self._rings: List[Deque[RemoteVoq]] = [
            deque() for _ in range(config.traffic_classes)
        ]
        self._in_ring: set[RemoteVoq] = set()

        # Self-clocking pump.
        self._pump_event: Optional[Event] = None
        self._paused = False
        self._throttled_until_ns = -1

        # Weighted round-robin state (non-strict mode).
        self._wrr_cursor = 0
        self._wrr_cached: Optional[List[int]] = None

        # Accounting.
        self.credits_granted = 0
        self.credit_bytes_granted = 0
        self.fci_marks_seen = 0

    # ------------------------------------------------------------------
    # Demand reports
    # ------------------------------------------------------------------
    def report(
        self, ingress_fa: DeviceId, voq: VoqId, enqueued_bytes: int
    ) -> None:
        """A remote VOQ reports its cumulative enqueued byte count."""
        key = (ingress_fa, voq)
        current = self._enqueued.get(key, 0)
        if enqueued_bytes > current:
            self._enqueued[key] = enqueued_bytes
        if self._demand(key) > 0 and key not in self._in_ring:
            tc = min(voq.priority, len(self._rings) - 1)
            self._rings[tc].append(key)
            self._in_ring.add(key)
        self._kick()

    # Back-compat alias used by a few tests/tools: a bare request is a
    # report of at least one credit's worth of demand.
    def request(self, ingress_fa: DeviceId, voq: VoqId) -> None:
        """Back-compat demand report: ask for effectively unlimited credits."""
        key = (ingress_fa, voq)
        baseline = self._granted.get(key, 0)
        self.report(
            ingress_fa, voq, baseline + self.config.credit_size_bytes * 2**20
        )

    def withdraw(self, ingress_fa: DeviceId, voq: VoqId) -> None:
        """Cancel a VOQ's outstanding demand (drained / torn down)."""
        key = (ingress_fa, voq)
        self._enqueued[key] = self._granted.get(key, 0)

    def _demand(self, key: RemoteVoq) -> int:
        return self._enqueued.get(key, 0) - self._granted.get(key, 0)

    @property
    def active_voqs(self) -> int:
        """VOQs currently holding outstanding demand."""
        return len(self._in_ring)

    def total_demand(self) -> int:
        """Sum of outstanding (unreported-granted) bytes."""
        return sum(
            self._demand(key) for key in self._in_ring
        )

    # ------------------------------------------------------------------
    # Gating
    # ------------------------------------------------------------------
    def pause(self) -> None:
        """Stop granting (egress buffer above high watermark)."""
        self._paused = True

    def resume(self) -> None:
        """Restart granting after a pause, if work is waiting."""
        if self._paused:
            self._paused = False
            self._kick()

    @property
    def paused(self) -> bool:
        """True while the egress buffer holds off credits."""
        return self._paused

    def fci_mark(self) -> None:
        """An FCI-marked cell reached this port: stretch the grant gaps
        until marks stop arriving (§4.2)."""
        self.fci_marks_seen += 1
        self._throttled_until_ns = self.sim.now + self.config.fci_decay_ns

    # ------------------------------------------------------------------
    # The pump
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self._pump_event is None and not self._paused and self._in_ring:
            self._pump_event = self.sim.call_soon(self._pump)

    def _pump(self) -> None:
        self._pump_event = None
        if self._paused:
            return
        ring = self._next_ring()
        if ring is None:
            return
        key = ring.popleft()
        demand = self._demand(key)
        if demand <= 0:
            self._in_ring.discard(key)
            self._kick()
            return
        ring.append(key)  # still hungry: back to the tail
        grant = min(self.config.credit_size_bytes, demand)
        self._granted[key] = self._granted.get(key, 0) + grant
        self.credits_granted += 1
        self.credit_bytes_granted += grant
        ingress_fa, voq = key
        self._grant_fn(ingress_fa, voq, grant)
        # Self-clock: the gap paid is proportional to the bytes granted.
        # The credit rate carries the fractional speedup (1.02x port
        # rate), so the gap is float math by construction; IEEE-754
        # double rounding is platform-deterministic, and moving to
        # scaled-integer math would shift every committed golden trace.
        gap_ns = max(1, int(grant * 8 * SECOND / self._credit_rate_bps))  # repro-lint: allow=DET005 -- credit speedup is fractional; f64 rounding is deterministic and golden-pinned
        if self.sim.now <= self._throttled_until_ns:
            gap_ns = int(gap_ns * self.config.fci_throttle_factor)  # repro-lint: allow=DET005 -- FCI throttle factor is fractional by design; same f64 determinism argument
        self._pump_event = self.sim.schedule(gap_ns, self._pump)

    def _next_ring(self) -> Optional[Deque[RemoteVoq]]:
        """Next traffic-class ring: strict priority or WRR (§4.1)."""
        if self.config.strict_priority:
            for ring in self._rings:
                if ring:
                    return ring
            return None
        # Weighted round-robin: walk a precomputed interleaved pattern
        # of class indices, skipping empty rings.
        pattern = self._wrr_pattern()
        for _ in range(len(pattern)):
            tc = pattern[self._wrr_cursor % len(pattern)]
            self._wrr_cursor += 1
            if self._rings[tc]:
                return self._rings[tc]
        return None

    def _wrr_pattern(self) -> List[int]:
        if self._wrr_cached is None:
            n = self.config.traffic_classes
            weights = list(self.config.class_weights[:n])
            weights += [1] * (n - len(weights))
            # Interleave classes proportionally (largest-remainder walk)
            # so weight (3,1) yields 0,0,1,0 rather than 0,0,0,1.
            pattern: List[int] = []
            credit = [0.0] * n
            for _ in range(sum(weights)):
                for tc in range(n):
                    credit[tc] += weights[tc]
                best = max(range(n), key=lambda tc: credit[tc])
                credit[best] -= sum(weights)
                pattern.append(best)
            self._wrr_cached = pattern
        return self._wrr_cached

    def stop(self) -> None:
        """Stop the grant pump permanently (teardown)."""
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
        self._paused = True
