"""The self-healing reachability protocol (§4.2, §5.8, §5.9).

Every fabric device periodically advertises, on every link, the set of
Fabric Adapters it can reach.  Receivers track per-link health: a link
with no advertisement for ``miss_threshold`` periods is declared down
and its learned reachability purged; a link must deliver
``up_threshold`` consecutive advertisements to be trusted again.

The same machinery runs in Fabric Adapters (to learn which uplinks
reach which destination) and Fabric Elements (to build forwarding
tables), so it lives here as a reusable component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet

from repro.net.addressing import DeviceId
from repro.sim.engine import PeriodicTask, Simulator


@dataclass(slots=True)
class LinkHealth:
    """Receiver-side health state for one incoming link."""

    last_rx_ns: int = -1
    good_count: int = 0
    alive: bool = False
    reachable: FrozenSet[DeviceId] = frozenset()


class ReachabilityMonitor:
    """Tracks advertisement freshness and learned sets per in-link.

    ``on_change`` fires whenever a link's liveness or advertised set
    changes, letting the owning device rebuild its forwarding view.
    """

    __slots__ = (
        "sim", "period_ns", "up_threshold", "miss_threshold",
        "_on_change", "_links", "_watchdog",
        "links_declared_down", "links_declared_up",
    )

    def __init__(
        self,
        sim: Simulator,
        period_ns: int,
        up_threshold: int,
        miss_threshold: int,
        on_change: Callable[[], None],
    ) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        if up_threshold < 1 or miss_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.sim = sim
        self.period_ns = period_ns
        self.up_threshold = up_threshold
        self.miss_threshold = miss_threshold
        self._on_change = on_change
        self._links: Dict[int, LinkHealth] = {}
        # Watchdog sweeps at the advertisement period.
        self._watchdog = PeriodicTask(sim, period_ns, self._sweep)
        self.links_declared_down = 0
        self.links_declared_up = 0

    def track(self, key: int) -> None:
        """Start monitoring in-link ``key`` (any hashable id)."""
        if key not in self._links:
            self._links[key] = LinkHealth()

    def heard(self, key: int, reachable: FrozenSet[DeviceId]) -> None:
        """An advertisement arrived on ``key``."""
        health = self._links.get(key)
        if health is None:
            health = LinkHealth()
            self._links[key] = health
        health.last_rx_ns = self.sim.now
        health.good_count += 1
        changed = False
        if not health.alive and health.good_count >= self.up_threshold:
            health.alive = True
            self.links_declared_up += 1
            changed = True
        if health.alive and health.reachable != reachable:
            health.reachable = reachable
            changed = True
        if changed:
            self._on_change()

    def _sweep(self) -> None:
        deadline = self.miss_threshold * self.period_ns
        changed = False
        for health in self._links.values():
            if not health.alive:
                continue
            if self.sim.now - health.last_rx_ns > deadline:
                health.alive = False
                health.good_count = 0
                health.reachable = frozenset()
                self.links_declared_down += 1
                changed = True
        if changed:
            self._on_change()

    def alive(self, key: int) -> bool:
        """Whether in-link ``key`` is currently considered up."""
        health = self._links.get(key)
        return bool(health and health.alive)

    def reachable_via(self, key: int) -> FrozenSet[DeviceId]:
        """FA set advertised on ``key`` (empty if the link is down)."""
        health = self._links.get(key)
        if health is None or not health.alive:
            return frozenset()
        return health.reachable

    def stop(self) -> None:
        """Stop the watchdog (teardown)."""
        self._watchdog.stop()
