"""Scheduler control messages and the control crossbar.

A Fabric Element is "essentially two k x k crossbars, one for data cells
and one for control messages" (§4.2).  Data cells get the full
event-level treatment; the control crossbar — which carries only tiny,
strictly-paced credit requests and grants — is modelled as a fixed
per-hop latency between Fabric Adapters.  This preserves exactly what
matters to the results (the credit loop delay) without doubling the
event count of every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Protocol

from repro.core.cell import VoqId
from repro.net.addressing import DeviceId
from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class VoqStatus:
    """Ingress VOQ reports its cumulative enqueued byte count.

    Cumulative counters make the report idempotent: a late or duplicated
    status can never inflate the scheduler's demand estimate.
    """

    ingress_fa: DeviceId
    voq: VoqId
    enqueued_bytes: int


@dataclass(frozen=True, slots=True)
class VoqDrained:
    """Ingress VOQ tears down its outstanding demand (e.g. on reset)."""

    ingress_fa: DeviceId
    voq: VoqId


@dataclass(frozen=True, slots=True)
class CreditGrant:
    """Egress scheduler releases ``credit_bytes`` to an ingress VOQ."""

    voq: VoqId
    credit_bytes: int


ControlMessage = VoqStatus | VoqDrained | CreditGrant


class ControlEndpoint(Protocol):
    """What the control plane delivers to (Fabric Adapters)."""

    def on_control(self, message: ControlMessage) -> None:
        """Handle a delivered control message."""
        ...


class ControlPlane:
    """Delivers control messages between Fabric Adapters.

    ``delay_fn(src, dst)`` returns the one-way control-path latency in
    nanoseconds; the network builder derives it from the topology (hops
    x per-hop latency + fiber propagation).
    """

    __slots__ = ("sim", "_delay_fn", "_endpoints", "messages_sent")

    def __init__(
        self,
        sim: Simulator,
        delay_fn: Callable[[DeviceId, DeviceId], int],
    ) -> None:
        self.sim = sim
        self._delay_fn = delay_fn
        self._endpoints: Dict[DeviceId, ControlEndpoint] = {}
        self.messages_sent = 0

    def register(self, fa_id: DeviceId, endpoint: ControlEndpoint) -> None:
        """Register the control endpoint for Fabric Adapter ``fa_id``."""
        if fa_id in self._endpoints:
            raise ValueError(f"fa {fa_id} already registered")
        self._endpoints[fa_id] = endpoint

    def send(
        self, src: DeviceId, dst: DeviceId, message: ControlMessage
    ) -> None:
        """Deliver ``message`` to ``dst`` after the modeled path delay."""
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            raise KeyError(f"no control endpoint for fa {dst}")
        self.messages_sent += 1
        delay = self._delay_fn(src, dst)
        # Fire-and-forget fast path: control messages are never
        # cancelled, so they ride the engine's calendar wheel instead
        # of allocating an Event handle on the spill heap.
        self.sim.call_later(delay, lambda: endpoint.on_control(message))
