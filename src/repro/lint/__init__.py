"""repro.lint: the determinism & hot-path invariant analyzer.

Every result in this reproduction rests on bit-for-bit determinism:
the golden traces pin exact ``(time_ns, seq)`` event order, and the
perf gates pin the hot-path discipline that keeps the engine fast.
The contracts behind both — seeded randomness only, no wall-clock in
simulation paths, no hash/identity ordering, integer nanoseconds,
``__slots__`` in the hot core — used to live in reviewers' heads.
This package turns them into checkable rules:

* :mod:`repro.lint.zones` — the deterministic-zone map (which packages
  carry which contracts);
* :mod:`repro.lint.rules` — the ``@rule`` registry (mirroring the
  fabric/scenario registries) and the shipped DET/HOT/API rules;
* :mod:`repro.lint.analyzer` — the AST pass, per-line suppression
  comments and finding fingerprints;
* :mod:`repro.lint.baseline` — the committed grandfather file so new
  rules can land before every old finding is fixed;
* ``python -m repro.lint`` — the CLI that gates CI.

Suppression syntax (reason string required)::

    x = links[hash(dst) % n]  # repro-lint: allow=DET004 -- int hashes only
    # repro-lint: allow-file=API001 -- CDF inversion, not event ordering
"""

from repro.lint.analyzer import (
    Finding,
    Report,
    analyze_file,
    analyze_paths,
)
from repro.lint.baseline import diff_against_baseline, load_baseline, write_baseline
from repro.lint.rules import RULES, RuleInfo, rule, rule_ids
from repro.lint.zones import DETERMINISTIC_PACKAGES, RELAXED_PACKAGES, zone_for_path

__all__ = [
    "Finding",
    "Report",
    "analyze_file",
    "analyze_paths",
    "diff_against_baseline",
    "load_baseline",
    "write_baseline",
    "RULES",
    "RuleInfo",
    "rule",
    "rule_ids",
    "DETERMINISTIC_PACKAGES",
    "RELAXED_PACKAGES",
    "zone_for_path",
]
