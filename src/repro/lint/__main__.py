"""CLI: ``python -m repro.lint [paths...]``.

Exit codes: 0 clean (or all findings baselined), 1 new findings,
2 usage error.  ``--write-baseline`` snapshots the current findings;
``--output`` writes the JSON report (for the CI artifact) regardless
of the text/json console format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.analyzer import Report, analyze_paths
from repro.lint.baseline import (
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import RULES

DEFAULT_BASELINE = "lint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & hot-path invariant analyzer.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="console report format",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="PATH",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--output", metavar="PATH",
        help="also write the full JSON report to PATH (CI artifact)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rule IDs and exit",
    )
    return parser


def _print_text(report: Report, new: List, stale: List) -> None:
    for finding in new:
        print(finding.format_text())
        if finding.snippet:
            print(f"    {finding.snippet.strip()}")
    baselined = len(report.findings) - len(new)
    summary = ", ".join(
        f"{rule}={count}" for rule, count in report.counts_by_rule().items()
    )
    print(
        f"repro.lint: {report.checked_files} files, "
        f"{len(new)} new finding(s), {baselined} baselined"
        + (f" [{summary}]" if summary else "")
    )
    for entry in stale:
        print(
            "repro.lint: stale baseline entry "
            f"{entry['fingerprint']} ({entry['rule']} {entry['path']}); "
            "remove it from the baseline"
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for info in RULES.values():
            zones = "all" if info.zones is None else ",".join(sorted(info.zones))
            print(f"{info.id}  [{zones}]  {info.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")
    report = analyze_paths(paths, root=Path.cwd())

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        write_baseline(report, baseline_path)
        print(
            f"repro.lint: wrote {len(report.findings)} finding(s) "
            f"to {baseline_path}"
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(baseline_path)
    new, stale = diff_against_baseline(report, baseline)

    if args.output:
        Path(args.output).write_text(
            json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        payload = report.as_dict()
        payload["new_findings"] = [f.as_dict() for f in new]
        payload["stale_baseline_entries"] = stale
        print(json.dumps(payload, indent=2))
    else:
        _print_text(report, new, stale)

    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
