"""The committed baseline: grandfathered findings, keyed by fingerprint.

The baseline lets a new rule land before every historical finding is
fixed: CI fails only on findings whose fingerprint is *not* in the
committed file.  The intended steady state is an empty baseline — this
repo fixes or inline-suppresses everything — and ``tests/test_lint.py``
has a meta-test holding the file to that: every entry must still match
a live finding, so the baseline can only shrink.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

from repro.lint.analyzer import Finding, Report

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """``fingerprint -> entry`` from a baseline file ({} if absent)."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    entries = {}
    for entry in data.get("findings", []):
        entries[str(entry["fingerprint"])] = entry
    return entries


def write_baseline(report: Report, path: Path) -> None:
    """Write ``report``'s findings as the new baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "snippet": f.snippet.strip(),
            }
            for f in report.findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def diff_against_baseline(
    report: Report, baseline: Dict[str, Dict[str, object]]
) -> Tuple[List[Finding], List[Dict[str, object]]]:
    """``(new_findings, stale_entries)`` for ``report`` vs ``baseline``.

    New findings gate CI; stale entries (baseline rows whose finding no
    longer exists) are reported so the file gets trimmed as debt is
    paid down.
    """
    live = {f.fingerprint for f in report.findings}
    new = [f for f in report.findings if f.fingerprint not in baseline]
    stale = [e for fp, e in baseline.items() if fp not in live]
    return new, stale
