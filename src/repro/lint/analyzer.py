"""The per-file AST pass: run rules, honor suppressions, fingerprint.

Suppression comments (a reason string after ``--`` is mandatory)::

    foo = links[hash(dst) % n]  # repro-lint: allow=DET004 -- int hashes
    # repro-lint: allow-file=API001 -- CDF inversion, not event ordering

``allow`` applies to findings reported on the same line; ``allow-file``
applies to the whole module.  A malformed suppression (missing reason)
is itself a finding (LINT000), and a suppression that matched nothing
is a finding too (LINT001) so stale exemptions get cleaned up.

Fingerprints identify a finding across line drift: they hash the rule
ID, the file's repo-relative path, the stripped source line and an
occurrence index — moving code around does not invalidate the
baseline, but changing the flagged line does.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import RULES, ModuleContext

# Suppression comment grammar: "allow=ID[,ID...] -- reason" (line scope)
# or "allow-file=..." (module scope), after the marker prefix.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>allow|allow-file)\s*=\s*"
    r"(?P<rules>[A-Z][A-Z0-9_]*(?:\s*,\s*[A-Z][A-Z0-9_]*)*)"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    fingerprint: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }


@dataclass
class Report:
    """Findings plus scan bookkeeping, across all analyzed files."""

    findings: List[Finding]
    checked_files: int

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "checked_files": self.checked_files,
            "summary": self.counts_by_rule(),
            "findings": [f.as_dict() for f in self.findings],
        }


@dataclass
class _Suppressions:
    by_line: Dict[int, Set[str]]
    file_wide: Set[str]
    used: Set[Tuple[str, int]]  # (rule, line) for by_line; (rule, 0) file-wide
    problems: List[Tuple[int, str]]  # malformed suppressions -> LINT000

    @classmethod
    def parse(cls, source: str) -> "_Suppressions":
        sup = cls(by_line={}, file_wide=set(), used=set(), problems=[])
        # Only real comment tokens count: a docstring that *documents*
        # the suppression syntax must not register as a suppression.
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return sup
        for tok in tokens:
            if tok.type != tokenize.COMMENT or "repro-lint" not in tok.string:
                continue
            lineno, text = tok.start[0], tok.string
            match = _SUPPRESS_RE.search(text)
            if match is None:
                sup.problems.append(
                    (lineno, "malformed repro-lint suppression comment")
                )
                continue
            if not match.group("reason"):
                sup.problems.append(
                    (
                        lineno,
                        "suppression without a reason; append "
                        "'-- <why this is safe>'",
                    )
                )
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("scope") == "allow-file":
                sup.file_wide |= rules
            else:
                sup.by_line.setdefault(lineno, set()).update(rules)
        return sup

    def covers(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_wide:
            self.used.add((rule_id, 0))
            return True
        if rule_id in self.by_line.get(line, set()):
            self.used.add((rule_id, line))
            return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        stale: List[Tuple[int, str]] = []
        for line, rules in sorted(self.by_line.items()):
            for rule_id in sorted(rules):
                if (rule_id, line) not in self.used:
                    stale.append((line, rule_id))
        for rule_id in sorted(self.file_wide):
            if (rule_id, 0) not in self.used:
                stale.append((1, rule_id))
        return stale


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def _fingerprint(rule_id: str, path: str, snippet: str, occurrence: int) -> str:
    digest = hashlib.sha1(
        f"{rule_id}|{path}|{snippet.strip()}|{occurrence}".encode()
    )
    return digest.hexdigest()[:16]


def analyze_file(path: Path, root: Optional[Path] = None) -> Tuple[List[Finding], int]:
    """Run every applicable rule over one file.

    Returns ``(findings, parsed)`` where ``parsed`` is 1 when the file
    was analyzable (0 on an unreadable file, which is itself a LINT002
    finding — an unparseable deterministic-zone file must not pass).
    """
    display = _display_path(path, root)
    occurrence: Dict[Tuple[str, str], int] = {}

    def make(rule_id: str, line: int, col: int, message: str) -> Finding:
        snippet = lines[line - 1].rstrip() if 0 < line <= len(lines) else ""
        key = (rule_id, snippet.strip())
        idx = occurrence.get(key, 0)
        occurrence[key] = idx + 1
        return Finding(
            rule=rule_id,
            path=display,
            line=line,
            col=col,
            message=message,
            snippet=snippet,
            fingerprint=_fingerprint(rule_id, display, snippet, idx),
        )

    try:
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        lines = [""]
        return [make("LINT002", 1, 0, f"file could not be analyzed: {exc}")], 0

    sup = _Suppressions.parse(source)
    ctx = ModuleContext.build(str(path), tree, lines)

    findings: List[Finding] = []
    for lineno, message in sup.problems:
        findings.append(make("LINT000", lineno, 0, message))
    for info in RULES.values():
        if not info.applies_to(ctx):
            continue
        for node, message in info.check(ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            if sup.covers(info.id, line):
                continue
            findings.append(make(info.id, line, col, message))
    for line, rule_id in sup.unused():
        findings.append(
            make(
                "LINT001",
                line,
                0,
                f"suppression for {rule_id} matched no finding; remove it",
            )
        )
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings, 1


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for entry in paths:
        if entry.is_dir():
            seen.update(p for p in entry.rglob("*.py") if p.is_file())
        elif entry.suffix == ".py":
            seen.add(entry)
    return sorted(seen)


def analyze_paths(
    paths: Sequence[Path], root: Optional[Path] = None
) -> Report:
    """Analyze every ``*.py`` under ``paths``; ``root`` relativizes output."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        file_findings, parsed = analyze_file(path, root)
        findings.extend(file_findings)
        checked += parsed
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return Report(findings=findings, checked_files=checked)
