"""The ``@rule`` registry and the shipped invariant rules.

The registry mirrors :mod:`repro.fabrics.registry`: a decorator
registers each rule under a stable ID, the analyzer iterates
``RULES``, and the CLI lists them with ``--list-rules``.  A rule is a
generator over a :class:`ModuleContext` yielding ``(node, message)``
pairs; the analyzer owns zoning, suppression and fingerprinting so the
rules stay pure AST pattern matchers.

Shipped rules:

========  ==========  =====================================================
ID        Zone        Contract
========  ==========  =====================================================
DET001    all         randomness must flow through seeded ``RandomStreams``
DET002    det         no wall-clock reads inside simulations
DET003    det         no set/dict-keys iteration feeding the scheduler
DET004    det         no ``id()``/``hash()`` in ordering or as dict keys
DET005    det         ``*_ns`` times are integers: no float math/equality
DET006    all         no OS entropy (``os.urandom``/``uuid4``/``secrets``)
HOT001    sim,core    hot-core classes declare ``__slots__``
HOT002    hot table   no closure allocation inside known hot methods
API001    all         ``heapq``/``bisect`` only in the engine + kernels
========  ==========  =====================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.lint.zones import DETERMINISTIC, module_parts, zone_for_path

RuleHit = Tuple[ast.AST, str]


@dataclass
class ModuleContext:
    """Everything a rule needs about one parsed module."""

    path: str
    rel: Tuple[str, ...]
    zone: str
    tree: ast.Module
    lines: List[str]
    #: ``alias -> dotted module`` from ``import x.y as z``.
    imported_modules: Dict[str, str] = field(default_factory=dict)
    #: ``name -> dotted origin`` from ``from x.y import z [as w]``.
    imported_names: Dict[str, str] = field(default_factory=dict)
    #: child AST node -> parent AST node, for ancestor walks.
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, tree: ast.Module, lines: List[str]) -> "ModuleContext":
        ctx = cls(
            path=path,
            rel=module_parts(path),
            zone=zone_for_path(path),
            tree=tree,
            lines=lines,
        )
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.imported_modules[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    ctx.imported_names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return ctx

    def dotted(self, node: ast.AST) -> Optional[str]:
        """Resolve an expression to a dotted name through the imports.

        ``np.random.shuffle`` -> ``numpy.random.shuffle`` when numpy
        was imported as ``np``; unresolvable expressions return None.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = node.id
        root = self.imported_modules.get(base) or self.imported_names.get(base) or base
        chain.append(root)
        return ".".join(reversed(chain))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        seen = node
        while seen in self.parents:
            seen = self.parents[seen]
            yield seen

    def enclosing_statement(self, node: ast.AST) -> ast.AST:
        stmt = node
        for parent in self.ancestors(node):
            if isinstance(parent, ast.stmt):
                return parent
            stmt = parent
        return stmt


CheckFn = Callable[[ModuleContext], Iterator[RuleHit]]


@dataclass(frozen=True)
class RuleInfo:
    """One registered rule: a stable ID, a summary, a zone scope."""

    id: str
    summary: str
    #: ``None`` applies everywhere; otherwise the set of zones checked.
    zones: Optional[FrozenSet[str]]
    check: CheckFn

    def applies_to(self, ctx: ModuleContext) -> bool:
        return self.zones is None or ctx.zone in self.zones


#: Rule registry, keyed by rule ID (insertion order == report order).
RULES: Dict[str, RuleInfo] = {}

_DET_ONLY = frozenset({DETERMINISTIC})


def rule(
    rule_id: str, summary: str, zones: Optional[FrozenSet[str]] = None
) -> Callable[[CheckFn], CheckFn]:
    """Register ``fn`` as the check for ``rule_id`` (mirrors ``@fabric``)."""

    def decorate(fn: CheckFn) -> CheckFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id: {rule_id!r}")
        RULES[rule_id] = RuleInfo(id=rule_id, summary=summary, zones=zones, check=fn)
        return fn

    return decorate


def rule_ids() -> List[str]:
    """Registered rule IDs, in registration order."""
    return list(RULES)


# ----------------------------------------------------------------------
# DET001: unseeded module-level randomness
# ----------------------------------------------------------------------

_RANDOM_MODULE_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "betavariate", "expovariate",
        "gammavariate", "gauss", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes", "seed", "binomialvariate",
    }
)


def _is_randomness_home(ctx: ModuleContext) -> bool:
    return ctx.rel[-2:] == ("sim", "randomness.py")


@rule(
    "DET001",
    "randomness must come from seeded streams (sim/randomness.py), not "
    "module-level random.* / numpy.random",
)
def _det001(ctx: ModuleContext) -> Iterator[RuleHit]:
    if _is_randomness_home(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted is None:
            continue
        if dotted.startswith("random."):
            tail = dotted.split(".", 1)[1]
            if tail in _RANDOM_MODULE_FNS:
                yield node, (
                    f"module-level random.{tail}() shares global state; "
                    "draw from a seeded RandomStreams stream instead"
                )
            elif tail == "Random" and not node.args and not node.keywords:
                yield node, (
                    "random.Random() without a seed is entropy-seeded; "
                    "pass an explicit seed derived from the run seed"
                )
        elif dotted.startswith("numpy.random."):
            tail = dotted.split(".", 2)[2]
            seeded_ctors = {"default_rng", "Generator", "RandomState", "SeedSequence"}
            if tail in seeded_ctors and (node.args or node.keywords):
                continue
            yield node, (
                f"numpy.random.{tail} is unseeded global (or default-seeded) "
                "state; construct a generator from the run seed"
            )


# ----------------------------------------------------------------------
# DET002: wall-clock reads in the deterministic zone
# ----------------------------------------------------------------------

_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


@rule(
    "DET002",
    "no wall-clock reads (time.time/perf_counter/datetime.now) inside "
    "the deterministic zone; simulated time is sim.now",
    zones=_DET_ONLY,
)
def _det002(ctx: ModuleContext) -> Iterator[RuleHit]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted in _CLOCK_CALLS:
            yield node, (
                f"{dotted}() reads the wall clock; deterministic-zone code "
                "must use the simulator clock (sim.now)"
            )


# ----------------------------------------------------------------------
# DET003: set/dict-keys iteration feeding the scheduler
# ----------------------------------------------------------------------

_SCHED_SINKS = frozenset(
    {"schedule_at", "call_later", "rearm_at", "at", "schedule", "call_soon"}
)
_SET_METHODS = frozenset(
    {"keys", "intersection", "union", "difference", "symmetric_difference"}
)


def _called_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _set_iteration_reason(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(expr, ast.Call):
        name = _called_name(expr)
        if name in {"set", "frozenset"}:
            return f"{name}(...)"
        if name in _SET_METHODS and isinstance(expr.func, ast.Attribute):
            return f".{name}() (set/dict-view order)"
    return None


@rule(
    "DET003",
    "no iteration over sets / dict views inside functions that schedule "
    "events; insertion-ordered containers or sorted() only",
    zones=_DET_ONLY,
)
def _det003(ctx: ModuleContext) -> Iterator[RuleHit]:
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        schedules = any(
            isinstance(n, ast.Call) and _called_name(n) in _SCHED_SINKS
            for n in ast.walk(fn)
        )
        if not schedules:
            continue
        for loop in ast.walk(fn):
            if not isinstance(loop, (ast.For, ast.AsyncFor)):
                continue
            reason = _set_iteration_reason(loop.iter)
            if reason is not None:
                yield loop, (
                    f"iterating {reason} in {fn.name}(), which schedules "
                    "events; set/dict-view order is PYTHONHASHSEED-dependent"
                )


# ----------------------------------------------------------------------
# DET004: id()/hash() in ordering or as container keys
# ----------------------------------------------------------------------


@rule(
    "DET004",
    "no id()/hash() for ordering or as dict/set keys in scheduling "
    "paths; use stable indices assigned at wiring time",
    zones=_DET_ONLY,
)
def _det004(ctx: ModuleContext) -> Iterator[RuleHit]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
            continue
        name = node.func.id
        if name == "id" and len(node.args) == 1:
            yield node, (
                "id() values depend on allocation order; key containers by "
                "a stable wiring-time index instead"
            )
        elif name == "hash" and len(node.args) == 1:
            for parent in ctx.ancestors(node):
                if isinstance(parent, (ast.BinOp, ast.Compare, ast.Subscript)):
                    yield node, (
                        "hash() feeding arithmetic/indexing/comparison is "
                        "PYTHONHASHSEED-dependent for str keys; use an "
                        "integer identity"
                    )
                    break
                if isinstance(parent, ast.stmt):
                    break


# ----------------------------------------------------------------------
# DET005: float arithmetic / equality on *_ns time values
# ----------------------------------------------------------------------


def _is_ns_target(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id.endswith("_ns")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("_ns")
    return False


def _float_taint(expr: ast.AST) -> Optional[str]:
    """Why ``expr`` produces a float, or None if it looks integral."""
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "true division (use //)"
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
    return None


def _int_wrapped_float_math(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "int"
        and len(expr.args) == 1
        and isinstance(expr.args[0], ast.BinOp)
        and isinstance(expr.args[0].op, (ast.Mult, ast.Div))
    )


@rule(
    "DET005",
    "*_ns time values are integers: no float arithmetic, float "
    "literals, or float equality on them",
    zones=_DET_ONLY,
)
def _det005(ctx: ModuleContext) -> Iterator[RuleHit]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            else:
                targets, value = [node.target], node.value
            if value is None or not any(_is_ns_target(t) for t in targets):
                continue
            taint = _float_taint(value)
            if taint is not None:
                yield node, (
                    f"float math assigned to a *_ns time value ({taint}); "
                    "nanosecond timestamps must stay integral"
                )
            elif _int_wrapped_float_math(value):
                yield node, (
                    "int(...) truncation of arithmetic assigned to a *_ns "
                    "value hides float rounding; compute in integers"
                )
        elif isinstance(node, ast.Call):
            if _called_name(node) not in _SCHED_SINKS:
                continue
            for arg in node.args:
                taint = _float_taint(arg)
                if taint is not None:
                    yield arg, (
                        f"float math in a scheduling-time argument ({taint}); "
                        "event times must be integer nanoseconds"
                    )
        elif isinstance(node, ast.Compare):
            ok_ops = all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            if not ok_ops:
                continue
            sides = [node.left, *node.comparators]
            if not any(_is_ns_target(s) for s in sides):
                continue
            for s in sides:
                if isinstance(s, ast.Constant) and isinstance(s.value, float):
                    yield node, (
                        "float equality against a *_ns time value; compare "
                        "integer nanoseconds exactly"
                    )
                    break


# ----------------------------------------------------------------------
# DET006: OS entropy sources
# ----------------------------------------------------------------------

_ENTROPY_PREFIXES = ("secrets.",)
_ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})


@rule(
    "DET006",
    "no OS entropy (os.urandom, uuid.uuid4, secrets.*): identifiers "
    "must derive from the run seed",
)
def _det006(ctx: ModuleContext) -> Iterator[RuleHit]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted is None:
            continue
        if dotted in _ENTROPY_CALLS or dotted.startswith(_ENTROPY_PREFIXES):
            yield node, (
                f"{dotted}() draws OS entropy; derive identifiers from the "
                "run seed (sim/randomness.py) so runs replay"
            )


# ----------------------------------------------------------------------
# HOT001: hot-core classes must declare __slots__
# ----------------------------------------------------------------------

_SLOTLESS_OK_BASES = frozenset(
    {
        "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Protocol",
        "ABC", "Exception", "BaseException", "NamedTuple", "TypedDict",
        "Generic",
    }
)


def _base_name(base: ast.AST) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    if isinstance(base, ast.Subscript):
        return _base_name(base.value)
    return None


def _hot001_exempt(node: ast.ClassDef) -> bool:
    if node.name.endswith(("Error", "Exception")):
        return True
    for base in node.bases:
        name = _base_name(base)
        if name in _SLOTLESS_OK_BASES or (
            name is not None and name.endswith(("Error", "Exception"))
        ):
            return True
    return False


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return dec
    return None


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    return False


@rule(
    "HOT001",
    "classes in sim/ and core/ declare __slots__ (or "
    "@dataclass(slots=True)); instance dicts cost the hot path",
)
def _hot001(ctx: ModuleContext) -> Iterator[RuleHit]:
    if ctx.rel[:2] not in {("repro", "sim"), ("repro", "core")}:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or _hot001_exempt(node):
            continue
        dec = _dataclass_decorator(node)
        if dec is not None:
            slots_true = isinstance(dec, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not slots_true:
                yield node, (
                    f"dataclass {node.name} lacks slots=True; hot-core "
                    "instances must not carry a __dict__"
                )
        elif not _declares_slots(node):
            yield node, (
                f"class {node.name} lacks __slots__; hot-core instances "
                "must not carry a __dict__"
            )


# ----------------------------------------------------------------------
# HOT002: closure allocation inside known hot methods
# ----------------------------------------------------------------------

#: (package, module) -> class -> the methods on the per-cell/per-event
#: critical path, where allocating a closure per call is a measured
#: regression (see repro.perf gates).
HOT_METHODS: Dict[Tuple[str, str], Dict[str, FrozenSet[str]]] = {
    ("sim", "engine.py"): {
        "Simulator": frozenset(
            {"run", "run_for", "schedule_at", "call_later", "rearm_at"}
        ),
    },
    ("sim", "link.py"): {
        "Link": frozenset(
            {"send", "_start_next", "_tx_done", "_deliver", "_take_serialized"}
        ),
    },
    # Matches every module in the sim/kernel package (the key is the
    # first two path parts after the package root).
    ("sim", "kernel"): {
        "BatchSimulator": frozenset({"run", "run_for", "_tx_step"}),
    },
    ("core", "fabric_element.py"): {
        "FabricElement": frozenset({"receive", "eligible_ports"}),
    },
    ("core", "fabric_adapter.py"): {
        "FabricAdapter": frozenset({"_spray_cells", "_egress_cell"}),
    },
}


@rule(
    "HOT002",
    "no per-call closure allocation (lambda / nested def / "
    "functools.partial) inside the known hot methods",
)
def _hot002(ctx: ModuleContext) -> Iterator[RuleHit]:
    table = HOT_METHODS.get(ctx.rel[1:3]) if len(ctx.rel) >= 3 else None
    if not table:
        return
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef) or cls.name not in table:
            continue
        hot = table[cls.name]
        for method in cls.body:
            if (
                not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                or method.name not in hot
            ):
                continue
            for inner in ast.walk(method):
                kind = None
                if isinstance(inner, ast.Lambda):
                    kind = "a lambda"
                elif (
                    isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and inner is not method
                ):
                    kind = f"a nested function {inner.name}()"
                elif isinstance(inner, ast.Call):
                    dotted = ctx.dotted(inner.func)
                    if dotted in {"functools.partial", "partial"}:
                        kind = "functools.partial"
                if kind is not None:
                    yield inner, (
                        f"{cls.name}.{method.name}() allocates {kind} per "
                        "call; bind state ahead of the hot path"
                    )


# ----------------------------------------------------------------------
# API001: heapq/bisect stay behind the engine API
# ----------------------------------------------------------------------

_ORDERING_MODULES = frozenset({"heapq", "bisect"})


@rule(
    "API001",
    "heapq/bisect are scheduler internals: only sim/engine.py and the "
    "sim/kernel package touch them; everything else goes through the "
    "Simulator API",
)
def _api001(ctx: ModuleContext) -> Iterator[RuleHit]:
    # Kernel implementations ARE the scheduler: the sim/kernel package
    # is the pluggable half of sim/engine.py (see repro.sim.kernel
    # .registry for the contract), so it shares the exemption.  Nothing
    # outside those two places may maintain event order by hand.
    if ctx.rel[-2:] == ("sim", "engine.py") or ctx.rel[-3:-1] == (
        "sim",
        "kernel",
    ):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".", 1)[0] in _ORDERING_MODULES:
                    yield node, (
                        f"import {alias.name}: priority-queue ordering "
                        "belongs to sim/engine.py; use the Simulator API"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".", 1)[0] in _ORDERING_MODULES:
                yield node, (
                    f"from {node.module} import ...: priority-queue "
                    "ordering belongs to sim/engine.py"
                )
        elif isinstance(node, ast.Call):
            dotted = ctx.dotted(node.func)
            if dotted and dotted.split(".", 1)[0] in _ORDERING_MODULES:
                yield node, (
                    f"{dotted}() outside sim/engine.py; event/order "
                    "maintenance goes through the Simulator API"
                )
