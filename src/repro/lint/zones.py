"""The deterministic-zone map: which packages carry which contracts.

Everything that executes *inside* a simulation — the engine, devices,
fabrics, transports, workload generators, fault injection — is in the
**deterministic zone**: wall-clock reads, unseeded randomness, identity
ordering or float time arithmetic there can silently change event order
and break golden-trace byte-identity.  Harness code that runs *around*
simulations (experiment runners, perf benchmarking, telemetry export,
closed-form analysis) is **relaxed**: it may read wall clocks and use
floats freely because nothing it does feeds back into event order.

The map is fail-closed: a package under ``repro`` that is not listed
as relaxed is treated as deterministic, so a new simulation-path
package is covered from its first commit.  Paths outside the ``repro``
package (tests, benchmarks, examples) are relaxed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

#: Simulation-path packages: every event fired here must be a pure
#: function of (spec, seed).
DETERMINISTIC_PACKAGES = frozenset(
    {
        "sim",
        "core",
        "fabrics",
        "transport",
        "net",
        "baselines",
        "workloads",
        "faults",
        "topology",
        "pipeline",
    }
)

#: Harness packages: run around simulations, never inside them.
RELAXED_PACKAGES = frozenset(
    {"experiments", "perf", "telemetry", "analysis", "lint"}
)

#: Module-level carve-outs inside otherwise-deterministic packages.
#: ``repro.store`` is deterministic by default (the byte format, the
#: indexes and the query path must be pure functions of their inputs),
#: but two modules legitimately touch the wall clock: ``meta.py``
#: stamps creation timestamps into store metadata, and the maintenance
#: CLI times its own throughput report.
RELAXED_MODULES = frozenset(
    {
        ("store", "meta.py"),
        ("store", "__main__.py"),
    }
)

DETERMINISTIC = "deterministic"
RELAXED = "relaxed"


def module_parts(path: Union[str, Path]) -> Tuple[str, ...]:
    """``path`` relative to the ``repro`` package root, as parts.

    ``src/repro/sim/engine.py`` -> ``("repro", "sim", "engine.py")``;
    paths not under a ``repro`` directory return their last two parts,
    which is enough for the file-specific rule exemptions.
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i:])
    return tuple(parts[-2:])


def zone_for_path(path: Union[str, Path]) -> str:
    """``"deterministic"`` or ``"relaxed"`` for a source file path."""
    parts = module_parts(path)
    if not parts or parts[0] != "repro":
        return RELAXED
    if len(parts) < 3:
        # Files directly under repro/ (the package __init__).
        return RELAXED
    package = parts[1]
    if package in RELAXED_PACKAGES:
        return RELAXED
    if (package, parts[-1]) in RELAXED_MODULES:
        return RELAXED
    # Fail closed: unknown packages under repro/ get the strict rules.
    return DETERMINISTIC
