"""Baseline systems the paper compares against.

:mod:`repro.baselines.ethernet` — a standard output-queued Ethernet
packet switch with ECMP flow hashing, drop-tail buffers and optional
ECN marking.

:mod:`repro.baselines.push_fabric` — a "push" data center fabric built
from those switches on the same topologies as Stardust (§5.2's
comparison), so host-level experiments are apples-to-apples.
"""

from repro.baselines.ethernet import EthernetSwitch, EthPort, EthConfig
from repro.baselines.push_fabric import PushFabricNetwork

__all__ = [
    "EthernetSwitch",
    "EthPort",
    "EthConfig",
    "PushFabricNetwork",
]
