"""Baseline systems the paper compares against.

:mod:`repro.baselines.ethernet` — a standard output-queued Ethernet
packet switch with ECMP flow hashing, drop-tail buffers and optional
ECN marking.

:class:`PushFabricNetwork` — a "push" data center fabric built from
those switches on the same topologies as Stardust (§5.2's comparison)
— now lives in :mod:`repro.fabrics.push` and re-exports from here
(resolved lazily so that package can import the switch module above
without a cycle).
"""

from repro.baselines.ethernet import EthConfig, EthernetSwitch, EthPort


def __getattr__(name):
    if name == "PushFabricNetwork":
        from repro.fabrics.push import PushFabricNetwork

        return PushFabricNetwork
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EthernetSwitch",
    "EthPort",
    "EthConfig",
    "PushFabricNetwork",  # noqa: F822 — lazy re-export from repro.fabrics
]
