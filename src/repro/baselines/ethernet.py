"""A standard Ethernet packet switch: the fabric Stardust replaces.

Autonomous output-queued switch with:

* per-output drop-tail buffers (finite, shared nothing);
* ECMP: flows are hashed onto one uplink and stay there (§5.3's
  "flow hashing ... 40%-80% utilization" observation), with an optional
  per-packet spraying mode used by ablations;
* ECN marking above a configurable queue threshold (for DCTCP/DCQCN);
* strict-priority awareness only in the drop decision (a pushed fabric
  has no scheduler — that is the point of Fig 7/Fig 12).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.addressing import DeviceId
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.stats import Histogram


@dataclass
class EthConfig:
    """Ethernet switch knobs."""

    #: Per-output-port buffer (the paper's comparisons use 100 full
    #: packets; 100 x 9000B for jumbo runs).
    port_buffer_bytes: int = 150_000
    #: Queue depth above which departing packets are ECN-marked
    #: (DCTCP-style marking at ~K packets).  None disables marking.
    ecn_threshold_bytes: Optional[int] = 30_000
    #: "flow" = ECMP per-flow hash; "packet" = per-packet spray
    #: (ablation; reorders packets).
    load_balance: str = "flow"
    #: How long after a link failure the switch keeps hashing flows
    #: onto the dead path (§5.10: a pushed fabric blackholes flows
    #: until routing/ECMP rehash converges).  Packets picked onto a
    #: dead-but-not-yet-rehashed port are dropped and their flows
    #: counted as blackholed.  0 = instant rehash (the historical,
    #: optimistic behavior; keeps no-fault runs byte-identical).
    ecmp_rehash_ns: int = 0

    def __post_init__(self) -> None:
        if self.port_buffer_bytes <= 0:
            raise ValueError("buffer must be positive")
        if self.load_balance not in ("flow", "packet"):
            raise ValueError(f"unknown load_balance {self.load_balance!r}")
        if self.ecmp_rehash_ns < 0:
            raise ValueError("ecmp_rehash_ns must be non-negative")


@dataclass(eq=False)
class EthPort:
    """One output port of an Ethernet switch."""

    neighbor: Optional[DeviceId]
    out: Link
    direction: str  # "up", "down", or "host"

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down", "host"):
            raise ValueError(f"bad direction {self.direction!r}")


def _flow_hash(flow_id: int, salt: int, buckets: int) -> int:
    """Deterministic ECMP hash (stable across runs)."""
    digest = hashlib.md5(f"{flow_id}:{salt}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % buckets


class EthernetSwitch(Entity):
    """Output-queued packet switch with ECMP."""

    def __init__(
        self,
        sim: Simulator,
        config: EthConfig,
        switch_id: DeviceId,
        name: str,
        tier: int = 0,
    ) -> None:
        super().__init__(sim, name)
        self.config = config
        self.switch_id = switch_id
        self.tier = tier
        self._ports: List[EthPort] = []
        self._host_ports: Dict[int, EthPort] = {}
        #: dst ToR id -> candidate down ports.
        self._down_map: Dict[DeviceId, List[EthPort]] = {}
        self._spray_cursor = 0
        # Accounting.
        self.forwarded = 0
        self.dropped = 0
        self.ecn_marked = 0
        self.no_route_drops = 0
        #: Payload bytes accepted onto host-facing ports (drops excluded).
        self.delivered_host_bytes = 0
        self.queue_depth = Histogram(f"{name}.queue_bytes")
        self.sample_queues = False
        # Failure modelling: packets hashed onto a failed-but-not-yet-
        # rehashed ECMP path are blackholed (dropped + flow recorded);
        # a dead switch drops everything it receives.
        self._rehash_ns = config.ecmp_rehash_ns
        self.blackholed = 0
        self.blackholed_flow_ids: set = set()
        self.alive = True
        self.dead_drops = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_port(
        self,
        out: Link,
        direction: str,
        neighbor: Optional[DeviceId] = None,
        host_port_index: Optional[int] = None,
    ) -> EthPort:
        """Attach an output port (up/down/host)."""
        port = EthPort(neighbor=neighbor, out=out, direction=direction)
        self._ports.append(port)
        if direction == "host":
            if host_port_index is None:
                raise ValueError("host ports need an index")
            self._host_ports[host_port_index] = port
        return port

    def add_down_route(self, dst_tor: DeviceId, port: EthPort) -> None:
        """Route ``dst_tor`` through ``port`` (down-table entry)."""
        self._down_map.setdefault(dst_tor, []).append(port)

    @property
    def up_ports(self) -> List[EthPort]:
        """Ports toward the next tier up."""
        return [p for p in self._ports if p.direction == "up"]

    @property
    def eth_ports(self) -> List[EthPort]:
        """All attached ports."""
        return list(self._ports)

    # ------------------------------------------------------------------
    # Failure injection (§5.10 device death)
    # ------------------------------------------------------------------
    def fail(self) -> int:
        """Kill this switch: all output links down, arrivals dropped.

        Returns frames lost from the output queues.  Links *into* a
        dead switch belong to its neighbors; the fault injector fails
        those too.
        """
        self.alive = False
        return sum(port.out.fail() for port in self._ports)

    def restore(self) -> None:
        """Bring the switch (and its output links) back up."""
        self.alive = True
        for port in self._ports:
            port.out.restore()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def receive(self, payload: Packet, link: Link) -> None:
        """Forward an arriving packet."""
        self.forward(payload)

    def forward(self, packet: Packet) -> None:
        """Route ``packet`` and enqueue it on an output port."""
        if not self.alive:
            self.dead_drops += 1
            return
        port = self._route(packet)
        if port is None:
            self.no_route_drops += 1
            return
        if not port.out.up:
            # ECMP still hashes this flow onto the dead path: the
            # packet is blackholed until the rehash interval elapses.
            self.blackholed += 1
            self.blackholed_flow_ids.add(packet.flow_id)
            return
        self._enqueue(port, packet)

    def _live(self, ports) -> List[EthPort]:
        """ECMP candidate set: live ports, plus — while the rehash
        delay has not elapsed — recently failed ones (whose packets
        blackhole), modelling slow ECMP convergence."""
        rehash = self._rehash_ns
        if not rehash:
            return [p for p in ports if p.out.up]
        now = self.sim.now
        return [
            p for p in ports
            if p.out.up or now < p.out.failed_at_ns + rehash
        ]

    def _route(self, packet: Packet) -> Optional[EthPort]:
        dst_tor = packet.dst.fa
        if dst_tor == self.switch_id and self._host_ports:
            return self._host_ports.get(packet.dst.port)
        down = self._live(self._down_map.get(dst_tor, ()))
        if down:
            return self._pick(packet, down)
        ups = self._live(self.up_ports)
        if not ups:
            return None
        return self._pick(packet, ups)

    def _pick(self, packet: Packet, candidates: List[EthPort]) -> EthPort:
        if len(candidates) == 1:
            return candidates[0]
        if self.config.load_balance == "packet":
            self._spray_cursor = (self._spray_cursor + 1) % len(candidates)
            return candidates[self._spray_cursor]
        index = _flow_hash(packet.flow_id, self.switch_id, len(candidates))
        return candidates[index]

    def _enqueue(self, port: EthPort, packet: Packet) -> None:
        out = port.out
        if self.sample_queues:
            self.queue_depth.record(out.queued_bytes)
        if out.queued_bytes + packet.wire_bytes > self.config.port_buffer_bytes:
            self.dropped += 1
            return
        threshold = self.config.ecn_threshold_bytes
        if threshold is not None and out.queued_bytes >= threshold:
            packet.ecn = True
            self.ecn_marked += 1
        self.forwarded += 1
        if port.direction == "host":
            self.delivered_host_bytes += packet.size_bytes
        out.send(packet, packet.wire_bytes)
