"""Deprecated location — the push fabric moved to :mod:`repro.fabrics`.

:class:`PushFabricNetwork` now lives in :mod:`repro.fabrics.push`
(registered as the ``"push"`` fabric backend, alias ``"ethernet"``)
and builds one/two/three-tier topologies from the shared wiring plan.
This module re-exports it so existing imports keep working; new code
should import from :mod:`repro.fabrics`.
"""

from repro.fabrics.push import PushFabricNetwork

__all__ = ["PushFabricNetwork"]
