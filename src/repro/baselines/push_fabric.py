"""A "push" data center fabric: the §5.2 strawman, fully built.

Same topologies as :class:`repro.core.network.StardustNetwork`
(:class:`OneTierSpec` / :class:`TwoTierSpec`), same link rates and
propagation — but every node is an autonomous Ethernet packet switch
that pushes packets toward the destination with ECMP and drops on local
congestion.  Host experiments run unchanged against either network, so
Fig 7, Fig 10 and Fig 12 compare mechanism against mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.ethernet import EthConfig, EthernetSwitch, EthPort
from repro.core.network import OneTierSpec, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.stats import Histogram
from repro.sim.units import gbps


class PushFabricNetwork:
    """Ethernet-switch fabric mirroring a Stardust topology."""

    def __init__(
        self,
        spec,
        config: Optional[EthConfig] = None,
        sim: Optional[Simulator] = None,
        fabric_link_rate_bps: int = gbps(50),
        host_link_rate_bps: int = gbps(50),
        fabric_propagation_ns: int = 100,
        host_propagation_ns: int = 50,
    ) -> None:
        self.spec = spec
        self.config = config or EthConfig()
        self.sim = sim or Simulator()
        self.fabric_link_rate_bps = fabric_link_rate_bps
        self.host_link_rate_bps = host_link_rate_bps
        self.fabric_propagation_ns = fabric_propagation_ns
        self.host_propagation_ns = host_propagation_ns

        self.tors: List[EthernetSwitch] = []
        self.fabric: List[EthernetSwitch] = []
        self._host_sinks: Dict[PortAddress, Entity] = {}

        if isinstance(spec, OneTierSpec):
            self._build_one_tier(spec)
        elif isinstance(spec, TwoTierSpec):
            self._build_two_tier(spec)
        else:
            raise TypeError(f"unknown spec {type(spec).__name__}")

    # ------------------------------------------------------------------
    def _new_switch(self, sid: int, name: str, tier: int) -> EthernetSwitch:
        return EthernetSwitch(self.sim, self.config, sid, name, tier=tier)

    def _connect(
        self, lower: EthernetSwitch, upper: EthernetSwitch
    ) -> EthPort:
        """Full-duplex fabric link; installs routing both ways."""
        up = Link(
            self.sim, lower, upper, self.fabric_link_rate_bps,
            self.fabric_propagation_ns, name=f"{lower.name}->{upper.name}",
        )
        down = Link(
            self.sim, upper, lower, self.fabric_link_rate_bps,
            self.fabric_propagation_ns, name=f"{upper.name}->{lower.name}",
        )
        lower.add_port(up, "up", neighbor=upper.switch_id)
        down_port = upper.add_port(down, "down", neighbor=lower.switch_id)
        return down_port

    def _build_one_tier(self, spec: OneTierSpec) -> None:
        for tor_id in range(spec.num_fas):
            self.tors.append(self._new_switch(tor_id, f"tor{tor_id}", 0))
        links_per_fe = spec.uplinks_per_fa // spec.fe_count
        for i in range(spec.fe_count):
            sw = self._new_switch(10_000 + i, f"agg{i}", 1)
            sw.sample_queues = True
            self.fabric.append(sw)
            for tor in self.tors:
                for _ in range(links_per_fe):
                    down_port = self._connect(tor, sw)
                    sw.add_down_route(tor.switch_id, down_port)

    def _build_two_tier(self, spec: TwoTierSpec) -> None:
        for tor_id in range(spec.num_fas):
            self.tors.append(self._new_switch(tor_id, f"tor{tor_id}", 0))
        tier1: List[EthernetSwitch] = []
        sid = 10_000
        for pod in range(spec.pods):
            pod_tors = self.tors[
                pod * spec.fas_per_pod : (pod + 1) * spec.fas_per_pod
            ]
            for _ in range(spec.fes_per_pod):
                sw = self._new_switch(sid, f"agg{sid - 10_000}", 1)
                sw.sample_queues = True
                sid += 1
                tier1.append(sw)
                self.fabric.append(sw)
                for tor in pod_tors:
                    down_port = self._connect(tor, sw)
                    sw.add_down_route(tor.switch_id, down_port)
        spines: List[EthernetSwitch] = []
        for _ in range(spec.spines):
            spine = self._new_switch(sid, f"spine{sid - 10_000}", 2)
            sid += 1
            spines.append(spine)
            self.fabric.append(spine)
        for low in tier1:
            for spine in spines:
                down_port = self._connect(low, spine)
                # The spine reaches every ToR below this tier-1 switch.
                for tor_id in low._down_map:
                    spine.add_down_route(tor_id, down_port)

    # ------------------------------------------------------------------
    def attach_host(
        self, address: PortAddress, host: Entity
    ) -> tuple[Link, Link]:
        """Attach ``host`` at ``address``; returns (to_fabric, to_host)."""
        if address in self._host_sinks:
            raise ValueError(f"host already attached at {address}")
        tor = self.tors[address.fa]
        to_fabric = Link(
            self.sim, host, tor, self.host_link_rate_bps,
            self.host_propagation_ns, name=f"{host.name}->{tor.name}",
        )
        to_host = Link(
            self.sim, tor, host, self.host_link_rate_bps,
            self.host_propagation_ns, name=f"{tor.name}->{host.name}",
        )
        host.attach_port(to_fabric)
        tor.add_port(to_host, "host", host_port_index=address.port)
        self._host_sinks[address] = host
        return to_fabric, to_host

    def host_at(self, address: PortAddress) -> Entity:
        """The host entity attached at ``address``."""
        return self._host_sinks[address]

    # ------------------------------------------------------------------
    def run(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.sim.run_for(duration_ns)

    def total_drops(self) -> int:
        """Packets dropped inside the network (ToRs + fabric)."""
        return sum(s.dropped for s in self.tors + self.fabric)

    def fabric_drops(self) -> int:
        """Packets dropped in the fabric proper (§5.2's complaint)."""
        return sum(s.dropped for s in self.fabric)

    def fabric_queue_depth(self) -> Histogram:
        """Merged queue-depth samples from fabric switches (bytes)."""
        merged = Histogram("push.queue_bytes")
        for sw in self.fabric:
            merged.extend(sw.queue_depth.samples)
        return merged
