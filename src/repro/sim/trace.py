"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorized records into a
bounded ring buffer.  Components trace cheaply (no string formatting
unless a category is enabled), and tests/tools can filter and assert
on what actually happened — useful when debugging credit loops or
reachability convergence.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Iterator, List, Optional, Union


from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced event."""

    time_ns: int
    category: str
    source: str
    message: str
    data: Optional[dict] = None

    def __str__(self) -> str:
        return f"[{self.time_ns:>12}ns] {self.category:<12} {self.source}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form; ``data`` is omitted when absent so one
        record is one compact JSONL line."""
        out = {
            "time_ns": self.time_ns,
            "category": self.category,
            "source": self.source,
            "message": self.message,
        }
        if self.data is not None:
            out["data"] = self.data
        return out


class Tracer:
    """Category-gated ring buffer of simulation events."""

    __slots__ = ("sim", "_records", "_enabled", "_all", "dropped")

    def __init__(self, sim: Simulator, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._enabled: set[str] = set()
        self._all = False
        self.dropped = 0

    # ------------------------------------------------------------------
    def enable(self, *categories: str) -> None:
        """Enable specific categories, or everything with ``"*"``."""
        for category in categories:
            if category == "*":
                self._all = True
            else:
                self._enabled.add(category)

    def disable(self, *categories: str) -> None:
        """Disable categories (or everything with ``"*"``)."""
        for category in categories:
            if category == "*":
                self._all = False
            else:
                self._enabled.discard(category)

    def wants(self, category: str) -> bool:
        """Cheap pre-check so callers can skip formatting entirely."""
        return self._all or category in self._enabled

    def record(
        self,
        category: str,
        source: str,
        message: str,
        data: Optional[dict] = None,
    ) -> None:
        """Append a record if its category is enabled."""
        if not self.wants(category):
            return
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(
            TraceRecord(self.sim.now, category, source, message, data)
        )

    # ------------------------------------------------------------------
    def records(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since_ns: int = 0,
    ) -> List[TraceRecord]:
        """Filtered view of the buffer."""
        out = []
        for record in self._records:
            if record.time_ns < since_ns:
                continue
            if category is not None and record.category != category:
                continue
            if source is not None and record.source != source:
                continue
            out.append(record)
        return out

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def count(self, category: Optional[str] = None) -> int:
        """Number of buffered records (optionally per category)."""
        return len(self.records(category))

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write the buffered records to ``path`` as JSONL.

        One :meth:`TraceRecord.to_dict` object per line; returns the
        number of records written.  This is the same shape the timeline
        exporter consumes, so a dumped buffer can be replayed into a
        Perfetto timeline after the run.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as fh:
            for record in self._records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True))
                fh.write("\n")
        return len(self._records)

    def clear(self) -> None:
        """Empty the buffer and reset the drop counter."""
        self._records.clear()
        self.dropped = 0

    def dump(self, limit: int = 50) -> str:
        """The last ``limit`` records as printable lines."""
        tail = list(self._records)[-limit:]
        return "\n".join(str(r) for r in tail)
