"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorized records into a
bounded ring buffer.  Components trace cheaply (no string formatting
unless a category is enabled), and tests/tools can filter and assert
on what actually happened — useful when debugging credit loops or
reachability convergence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time_ns: int
    category: str
    source: str
    message: str
    data: Optional[dict] = None

    def __str__(self) -> str:
        return f"[{self.time_ns:>12}ns] {self.category:<12} {self.source}: {self.message}"


class Tracer:
    """Category-gated ring buffer of simulation events."""

    def __init__(self, sim: Simulator, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._enabled: set[str] = set()
        self._all = False
        self.dropped = 0

    # ------------------------------------------------------------------
    def enable(self, *categories: str) -> None:
        """Enable specific categories, or everything with ``"*"``."""
        for category in categories:
            if category == "*":
                self._all = True
            else:
                self._enabled.add(category)

    def disable(self, *categories: str) -> None:
        """Disable categories (or everything with ``"*"``)."""
        for category in categories:
            if category == "*":
                self._all = False
            else:
                self._enabled.discard(category)

    def wants(self, category: str) -> bool:
        """Cheap pre-check so callers can skip formatting entirely."""
        return self._all or category in self._enabled

    def record(
        self,
        category: str,
        source: str,
        message: str,
        data: Optional[dict] = None,
    ) -> None:
        """Append a record if its category is enabled."""
        if not self.wants(category):
            return
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(
            TraceRecord(self.sim.now, category, source, message, data)
        )

    # ------------------------------------------------------------------
    def records(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        since_ns: int = 0,
    ) -> List[TraceRecord]:
        """Filtered view of the buffer."""
        out = []
        for record in self._records:
            if record.time_ns < since_ns:
                continue
            if category is not None and record.category != category:
                continue
            if source is not None and record.source != source:
                continue
            out.append(record)
        return out

    def count(self, category: Optional[str] = None) -> int:
        """Number of buffered records (optionally per category)."""
        return len(self.records(category))

    def clear(self) -> None:
        """Empty the buffer and reset the drop counter."""
        self._records.clear()
        self.dropped = 0

    def dump(self, limit: int = 50) -> str:
        """The last ``limit`` records as printable lines."""
        tail = list(self._records)[-limit:]
        return "\n".join(str(r) for r in tail)
