"""The discrete-event engine.

A :class:`Simulator` owns a priority queue of scheduled callbacks keyed
by ``(time_ns, sequence)``.  The sequence number makes scheduling order a
total order, so two events at the same instant always fire in the order
they were scheduled — determinism we rely on for reproducible benchmarks.

Typical use::

    sim = Simulator()
    sim.schedule(100, lambda: print("at t=100ns"))
    sim.run(until=1_000_000)

Hot-path design
---------------

Heap entries are plain ``[time_ns, seq, fn]`` lists, not objects: list
comparison is a single C call that short-circuits on ``time_ns`` then
``seq`` (``seq`` is unique, so ``fn`` never participates).  The earlier
``@dataclass(order=True)`` event spent more time in its generated
``__lt__`` than the simulation spent in device logic — ~18 comparisons
per push/pop on a million-event heap, each building two tuples.

Two scheduling surfaces share that representation:

* :meth:`Simulator.at` / :meth:`Simulator.schedule` return an
  :class:`Event` handle wrapping the entry, for callers that may cancel
  (periodic tasks, timeout guards).
* :meth:`Simulator.schedule_at` / :meth:`Simulator.call_later` push the
  bare entry and return nothing — the fast path for the dominant
  link-serialization events, which are never cancelled.

Cancellation stays lazy (``fn = None``; skipped when popped), but the
engine now *accounts* for the corpses and compacts the heap in place
when they exceed half of it, so cancel/reschedule storms cannot leak
unbounded memory past ``run(until=...)``.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

_INF = float("inf")


class SimError(RuntimeError):
    """Raised for scheduling misuse (past events, negative delays...)."""


class Event:
    """Handle for a scheduled callback that may need cancelling.

    Wraps the engine's ``[time_ns, seq, fn]`` heap entry; cancelled
    events stay in the heap (lazy deletion) but the simulator counts
    them and compacts when they dominate.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    @property
    def time_ns(self) -> int:
        """Absolute firing time."""
        return self._entry[0]

    @property
    def seq(self) -> int:
        """Scheduling sequence number (ties broken by this)."""
        return self._entry[1]

    @property
    def cancelled(self) -> bool:
        """Whether this event is spent: cancelled or already fired."""
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        entry = self._entry
        if entry[2] is not None:
            entry[2] = None
            self._sim._note_cancelled()


class Simulator:
    """Integer-nanosecond discrete event scheduler."""

    #: Compaction only kicks in past this many corpses — tiny heaps are
    #: cheaper to drain than to rebuild.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_fired: int = 0
        self._cancelled: int = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for sanity checks).

        Cancelled events never count: popping a corpse is bookkeeping,
        not work performed.
        """
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including not-yet-compacted
        cancelled ones; see :attr:`pending_live` for the exact count)."""
        return len(self._heap)

    @property
    def pending_live(self) -> int:
        """Number of queued events that will actually fire."""
        return len(self._heap) - self._cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute time ``time_ns``; cancellable."""
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        entry = [time_ns, self._seq, fn]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(self, entry)

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay_ns`` from now; cancellable."""
        if delay_ns < 0:
            raise SimError(f"negative delay {delay_ns}")
        return self.at(self._now + delay_ns, fn)

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> None:
        """Fast path: schedule at absolute ``time_ns``, no Event handle.

        For fire-and-forget events (the per-frame serialization and
        propagation events dominating every run): skips the handle
        allocation entirely.  Not cancellable.
        """
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, [time_ns, seq, fn])

    def call_later(self, delay_ns: int, fn: Callable[[], None]) -> None:
        """Fast path: schedule ``delay_ns`` from now, no Event handle."""
        if delay_ns < 0:
            raise SimError(f"negative delay {delay_ns}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, [self._now + delay_ns, seq, fn])

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current instant (after pending same-time
        events already queued)."""
        return self.at(self._now, fn)

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place matters: ``run`` holds a local reference to the heap
        list, so compaction (triggered by a cancel inside a callback)
        must mutate the same object.  Rebuilding preserves pop order
        because ``(time_ns, seq)`` is a total order.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[2] is not None]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        Returns the simulation time when the run stopped.  Events exactly
        at ``until`` are executed; later ones stay queued so the run can
        be resumed — as is the first event past a ``max_events`` stop.
        """
        if self._running:
            raise SimError("simulator is not re-entrant")
        self._running = True
        # Local bindings shave an attribute lookup per event on the
        # hottest loop in the codebase; the heap list itself is never
        # rebound (push/compact mutate it in place) so locals stay valid
        # across callbacks that schedule more work.
        heap = self._heap
        heappop = heapq.heappop
        horizon = _INF if until is None else until
        limit = _INF if max_events is None else max_events
        fired_this_run = 0
        try:
            while heap:
                entry = heap[0]
                if entry[0] > horizon:
                    self._now = until
                    break
                fn = entry[2]
                if fn is None:
                    # Lazy-deleted corpse: drop it without charging
                    # events_fired or the max_events budget.
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                if fired_this_run >= limit:
                    break
                heappop(heap)
                # Neutralize before firing: cancelling an already-fired
                # event's handle (stale RTO guards do this) must not be
                # booked as a heap corpse.
                entry[2] = None
                self._now = entry[0]
                fn()
                self._events_fired += 1
                fired_this_run += 1
            else:
                # Queue drained: advance the clock to the horizon if given.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_for(self, duration_ns: int) -> int:
        """Run for ``duration_ns`` beyond the current time."""
        return self.run(until=self._now + duration_ns)


class PeriodicTask:
    """Re-arms a callback every ``period_ns`` until stopped.

    Used for credit generation, reachability message emission and rate
    meters.  The first firing happens after ``phase_ns`` (defaults to one
    full period) so several periodic tasks can be de-synchronized.
    """

    def __init__(
        self,
        sim: Simulator,
        period_ns: int,
        fn: Callable[[], None],
        phase_ns: Optional[int] = None,
    ) -> None:
        if period_ns <= 0:
            raise SimError(f"period must be positive, got {period_ns}")
        self._sim = sim
        self._period = period_ns
        self._fn = fn
        self._stopped = False
        self._event: Optional[Event] = None
        #: When the pending tick was armed (its period is measured from
        #: here) — lets ``set_period`` re-derive the pending fire time.
        self._armed_at = sim.now
        first = period_ns if phase_ns is None else phase_ns
        self._event = sim.schedule(first, self._tick)

    @property
    def period_ns(self) -> int:
        """Current re-arm period."""
        return self._period

    def set_period(self, period_ns: int) -> None:
        """Change the period.

        Lengthening takes effect from the next re-arm (the pending tick
        fires as scheduled).  Shortening also pulls the pending tick
        forward to ``armed_at + period_ns`` (clamped to now), so a
        faster rate applies immediately instead of one stale period
        later.
        """
        if period_ns <= 0:
            raise SimError(f"period must be positive, got {period_ns}")
        self._period = period_ns
        if self._stopped or self._event is None:
            return
        target = max(self._sim.now, self._armed_at + period_ns)
        if target < self._event.time_ns:
            self._event.cancel()
            self._event = self._sim.at(target, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._armed_at = self._sim.now
            self._event = self._sim.schedule(self._period, self._tick)

    def stop(self) -> None:
        """Stop firing (cancels the pending tick)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
