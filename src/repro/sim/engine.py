"""The discrete-event engine.

A :class:`Simulator` owns a priority queue of :class:`Event` objects keyed
by ``(time_ns, sequence)``.  The sequence number makes scheduling order a
total order, so two events at the same instant always fire in the order
they were scheduled — determinism we rely on for reproducible benchmarks.

Typical use::

    sim = Simulator()
    sim.schedule(100, lambda: print("at t=100ns"))
    sim.run(until=1_000_000)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimError(RuntimeError):
    """Raised for scheduling misuse (past events, negative delays...)."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time_ns, seq)``; the payload callback does not
    participate in ordering.  Cancelled events stay in the heap but are
    skipped when popped (lazy deletion), which is far cheaper than a
    re-heapify per cancel.
    """

    time_ns: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        self.cancelled = True


class Simulator:
    """Integer-nanosecond discrete event scheduler."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_fired: int = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for sanity checks)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def at(self, time_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute time ``time_ns``."""
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        event = Event(time_ns, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SimError(f"negative delay {delay_ns}")
        return self.at(self._now + delay_ns, fn)

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current instant (after pending same-time
        events already queued)."""
        return self.at(self._now, fn)

    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        Returns the simulation time when the run stopped.  Events exactly
        at ``until`` are executed; later ones stay queued so the run can
        be resumed.
        """
        if self._running:
            raise SimError("simulator is not re-entrant")
        self._running = True
        fired_this_run = 0
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time_ns > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if max_events is not None and fired_this_run >= max_events:
                    break
                self._now = event.time_ns
                event.fn()
                self._events_fired += 1
                fired_this_run += 1
            else:
                # Queue drained: advance the clock to the horizon if given.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_for(self, duration_ns: int) -> int:
        """Run for ``duration_ns`` beyond the current time."""
        return self.run(until=self._now + duration_ns)


class PeriodicTask:
    """Re-arms a callback every ``period_ns`` until stopped.

    Used for credit generation, reachability message emission and rate
    meters.  The first firing happens after ``phase_ns`` (defaults to one
    full period) so several periodic tasks can be de-synchronized.
    """

    def __init__(
        self,
        sim: Simulator,
        period_ns: int,
        fn: Callable[[], None],
        phase_ns: Optional[int] = None,
    ) -> None:
        if period_ns <= 0:
            raise SimError(f"period must be positive, got {period_ns}")
        self._sim = sim
        self._period = period_ns
        self._fn = fn
        self._stopped = False
        self._event: Optional[Event] = None
        #: When the pending tick was armed (its period is measured from
        #: here) — lets ``set_period`` re-derive the pending fire time.
        self._armed_at = sim.now
        first = period_ns if phase_ns is None else phase_ns
        self._event = sim.schedule(first, self._tick)

    @property
    def period_ns(self) -> int:
        """Current re-arm period."""
        return self._period

    def set_period(self, period_ns: int) -> None:
        """Change the period.

        Lengthening takes effect from the next re-arm (the pending tick
        fires as scheduled).  Shortening also pulls the pending tick
        forward to ``armed_at + period_ns`` (clamped to now), so a
        faster rate applies immediately instead of one stale period
        later.
        """
        if period_ns <= 0:
            raise SimError(f"period must be positive, got {period_ns}")
        self._period = period_ns
        if self._stopped or self._event is None:
            return
        target = max(self._sim.now, self._armed_at + period_ns)
        if target < self._event.time_ns:
            self._event.cancel()
            self._event = self._sim.at(target, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._armed_at = self._sim.now
            self._event = self._sim.schedule(self._period, self._tick)

    def stop(self) -> None:
        """Stop firing (cancels the pending tick)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
