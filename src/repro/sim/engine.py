"""The discrete-event engine.

A :class:`Simulator` owns a scheduler of callbacks keyed by
``(time_ns, sequence)``.  The sequence number makes scheduling order a
total order, so two events at the same instant always fire in the order
they were scheduled — determinism we rely on for reproducible benchmarks.

Typical use::

    sim = Simulator()
    sim.schedule(100, lambda: print("at t=100ns"))
    sim.run(until=1_000_000)

Hot-path design
---------------

Entries are plain ``[time_ns, seq, fn]`` lists, not objects: list
comparison is a single C call that short-circuits on ``time_ns`` then
``seq`` (``seq`` is unique, so ``fn`` never participates).

The scheduler is a *calendar wheel* plus a *spill heap*, replacing the
earlier single global binary heap:

* The wheel is :data:`~Simulator.WHEEL_SLOTS` time buckets of
  :data:`~Simulator.WHEEL_SLOT_NS` nanoseconds each.  The fast paths
  :meth:`Simulator.schedule_at` / :meth:`Simulator.call_later` append
  into the bucket for ``time_ns >> WHEEL_SHIFT`` in O(1) — the dominant
  case, because link serialization and propagation events land
  nanoseconds-to-microseconds ahead.  A bucket is sorted once, when the
  clock enters it, and drained from the tail; inserts that land in the
  bucket currently being drained (delays shorter than one slot) keep it
  ordered via binary insort.
* The spill heap takes everything else: events beyond the wheel horizon
  and *every cancellable event* (:meth:`Simulator.at` /
  :meth:`Simulator.schedule`).  Quarantining cancellables matters as
  much as the O(1) inserts — an RTO-guard storm used to bloat the one
  global heap past 10k entries, so every link event paid O(log n) on a
  heap that was mostly corpses.  Now the corpses sit in the spill heap
  (compacted in place when they dominate it) and the wheel stays dense
  with live work.

Every pop compares the wheel head against the spill head, so the merged
firing order is exactly the ``(time_ns, seq)`` total order of the old
single heap — golden traces recorded against the heap engine stay
byte-identical.

:meth:`Simulator.rearm_at` re-inserts a *spent* entry (one whose event
already fired) with a fresh sequence number and no allocation.  This is
the primitive cell trains ride on: a link serializing k back-to-back
cells steps one reusable entry through the wheel instead of allocating
and heap-pushing k fresh ones (see :mod:`repro.sim.link`).

Telemetry probe hook
--------------------

:meth:`Simulator.set_probe` installs an observation callback invoked
from the run loop on a time cadence — *between* events, never as one.
The probe schedules nothing, so ``events_fired``, event ordering and
the simulation outcome are bit-identical with or without it (golden
traces stay byte-identical either way).  Disabled cost is one int
compare per fired event against a sentinel deadline.  The probe fires
at most once per ``interval_ns``, at the first event on or past each
deadline — sampling rides the event stream, so an idle simulation is
(correctly) not sampled.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

#: "No horizon/budget" sentinel — a time/count no simulation reaches,
#: kept as an int so the hot loop's compares stay int-vs-int.
_NEVER = 1 << 62

#: Calendar-wheel geometry — the single source of truth; the class
#: mirrors these as documented attributes.  The hot paths load these
#: module globals (cheaper than class-attribute lookups), so changing
#: the wheel means changing exactly this pair.
_WHEEL_SHIFT = 6
_WHEEL_SLOTS = 1024
_WHEEL_MASK = _WHEEL_SLOTS - 1


def _insort_desc(bucket: list, entry: list) -> None:
    """Insert ``entry`` into a descending-sorted bucket, keeping order.

    The drain loop pops from the tail, so the bucket is kept largest
    first; among equal times the fresh entry has the largest sequence
    number and lands closest to the head (fires last).  Binary search +
    one C-level ``insert`` beats re-sorting the bucket when sub-slot
    delays (self-rescheduling tickers) insert into the slot currently
    being drained on every event.
    """
    lo = 0
    hi = len(bucket)
    while lo < hi:
        mid = (lo + hi) >> 1
        if bucket[mid] > entry:
            lo = mid + 1
        else:
            hi = mid
    bucket.insert(lo, entry)


class SimError(RuntimeError):
    """Raised for scheduling misuse (past events, negative delays...)."""


class Event:
    """Handle for a scheduled callback that may need cancelling.

    Wraps the engine's ``[time_ns, seq, fn]`` spill-heap entry;
    cancelled events stay in the heap (lazy deletion) but the simulator
    counts them and compacts when they dominate.
    """

    __slots__ = ("_sim", "_entry")

    def __init__(self, sim: "Simulator", entry: list) -> None:
        self._sim = sim
        self._entry = entry

    @property
    def time_ns(self) -> int:
        """Absolute firing time."""
        return self._entry[0]

    @property
    def seq(self) -> int:
        """Scheduling sequence number (ties broken by this)."""
        return self._entry[1]

    @property
    def cancelled(self) -> bool:
        """Whether this event is spent: cancelled or already fired."""
        return self._entry[2] is None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes."""
        entry = self._entry
        if entry[2] is not None:
            entry[2] = None
            self._sim._note_cancelled()


class Simulator:
    """Integer-nanosecond discrete event scheduler."""

    __slots__ = (
        "_buckets", "_cursor", "_wheel_live", "_sorted_slot", "_spill",
        "_now", "_seq", "_events_fired", "_cancelled", "_running",
        "_probe", "_probe_interval", "_probe_due", "topology_epoch",
    )

    #: Width of one calendar-wheel bucket.  64ns means any delay of at
    #: least one slot can never land in the bucket currently being
    #: drained, so mid-drain re-sorts only happen for sub-slot delays —
    #: which imply near-empty buckets.  Derived from the module-level
    #: ``_WHEEL_SHIFT``/``_WHEEL_SLOTS`` pair, which is what the hot
    #: paths read — tune the wheel there, not here.
    WHEEL_SLOT_NS = 1 << _WHEEL_SHIFT
    WHEEL_SHIFT = _WHEEL_SHIFT
    #: Number of wheel buckets (a power of two).  1024 x 64ns ≈ 65us of
    #: horizon: link serialization, propagation and credit self-clock
    #: gaps all land inside; reassembly/report timers and RTO guards
    #: spill.
    WHEEL_SLOTS = _WHEEL_SLOTS

    #: Compaction only kicks in past this many corpses — tiny heaps are
    #: cheaper to drain than to rebuild.
    COMPACT_MIN_CANCELLED = 64

    #: Kernel capability flag, read once per link at wiring time.
    #: Kernels that step cell trains inline (``repro.sim.kernel.batch``)
    #: override this to True; links then arm tagged
    #: ``[time, seq, kind, link]`` entries the kernel's run loop
    #: dispatches without a callback frame.  This reference engine
    #: leaves it False and never sees a tagged entry.
    KERNEL_LINK_INLINE = False

    #: Registry name of this engine core (the kernel registry stamps it
    #: on registration; ``repro.sim.kernel.wheel`` registers this class
    #: itself, so a plain ``Simulator()`` *is* the ``wheel`` kernel).
    kernel_name = "wheel"

    def __init__(self) -> None:
        self._buckets: List[list] = [[] for _ in range(_WHEEL_SLOTS)]
        #: Absolute slot index (time >> WHEEL_SHIFT) being drained.
        #: Invariant: no live wheel entry sits in a slot before it, and
        #: it never exceeds ``now >> WHEEL_SHIFT`` while user code runs.
        self._cursor = 0
        #: Live (unfired) entries in the wheel.
        self._wheel_live = 0
        #: Absolute index of the (unique) slot whose bucket is known to
        #: be descending-sorted — the slot being drained.  Inserts into
        #: it keep order via binary insort; the drain loop sorts any
        #: bucket the cursor enters before trusting its tail.
        self._sorted_slot = -1
        #: Far-future and cancellable events (plus lazy-deleted corpses).
        self._spill: List[list] = []
        self._now: int = 0
        self._seq: int = 0
        self._events_fired: int = 0
        self._cancelled: int = 0
        self._running = False
        #: Telemetry probe: a callback sampled from the run loop on a
        #: time cadence (see :meth:`set_probe`).  ``_probe_due`` is the
        #: next sampling deadline — the ``_NEVER`` sentinel while no
        #: probe is installed, so the hot loop pays one int compare.
        self._probe: Optional[Callable[[int], None]] = None
        self._probe_interval: int = 0
        self._probe_due: int = _NEVER
        #: Bumped whenever link liveness or learned reachability changes
        #: anywhere in the simulation.  Devices key their eligible-link
        #: caches on it: unchanged epoch means the cached spray target
        #: lists are exact, so the per-cell forwarding path skips the
        #: list rebuild it used to pay on every hop.
        self.topology_epoch: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (for sanity checks).

        Cancelled events never count: popping a corpse is bookkeeping,
        not work performed.
        """
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including not-yet-compacted
        cancelled ones; see :attr:`pending_events` for the exact count)."""
        return self._wheel_live + len(self._spill)

    @property
    def pending_events(self) -> int:
        """Number of queued events that will actually fire.

        Unlike :attr:`pending` this excludes cancelled corpses awaiting
        compaction, so it is exact regardless of compaction timing —
        the raw structure length overcounts until a compaction pass
        happens to run.  Also available as ``len(sim)`` and under the
        older name :attr:`pending_live`.
        """
        return self._wheel_live + len(self._spill) - self._cancelled

    #: Pre-existing alias for :attr:`pending_events`.
    pending_live = pending_events

    @property
    def wheel_occupancy(self) -> int:
        """Live entries currently in the calendar wheel (meta-metric)."""
        return self._wheel_live

    @property
    def spill_occupancy(self) -> int:
        """Entries in the spill heap, corpses included (meta-metric)."""
        return len(self._spill)

    @property
    def corpse_count(self) -> int:
        """Cancelled entries awaiting compaction (meta-metric)."""
        return self._cancelled

    def __len__(self) -> int:
        """Exact count of events still due to fire (no corpses)."""
        return self._wheel_live + len(self._spill) - self._cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute time ``time_ns``; cancellable.

        Cancellable events always go to the spill heap, whatever their
        firing time: lazy-deleted corpses then accumulate (and compact)
        there, never between the wheel's live link events.
        """
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        entry = [time_ns, self._seq, fn]
        self._seq += 1
        heapq.heappush(self._spill, entry)
        return Event(self, entry)

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay_ns`` from now; cancellable."""
        if delay_ns < 0:
            raise SimError(f"negative delay {delay_ns}")
        return self.at(self._now + delay_ns, fn)

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> None:
        """Fast path: schedule at absolute ``time_ns``, no Event handle.

        For fire-and-forget events (the per-frame serialization and
        propagation events dominating every run): near-future times are
        one bucket append, no handle allocation.  Not cancellable.
        """
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        slot = time_ns >> _WHEEL_SHIFT
        if slot - self._cursor >= _WHEEL_SLOTS:
            heapq.heappush(self._spill, [time_ns, seq, fn])
        else:
            bucket = self._buckets[slot & _WHEEL_MASK]
            if slot == self._sorted_slot:
                _insort_desc(bucket, [time_ns, seq, fn])
            else:
                bucket.append([time_ns, seq, fn])
            self._wheel_live += 1

    def call_later(self, delay_ns: int, fn: Callable[[], None]) -> None:
        """Fast path: schedule ``delay_ns`` from now, no Event handle."""
        if delay_ns < 0:
            raise SimError(f"negative delay {delay_ns}")
        time_ns = self._now + delay_ns
        seq = self._seq
        self._seq = seq + 1
        slot = time_ns >> _WHEEL_SHIFT
        if slot - self._cursor >= _WHEEL_SLOTS:
            heapq.heappush(self._spill, [time_ns, seq, fn])
        else:
            bucket = self._buckets[slot & _WHEEL_MASK]
            if slot == self._sorted_slot:
                _insort_desc(bucket, [time_ns, seq, fn])
            else:
                bucket.append([time_ns, seq, fn])
            self._wheel_live += 1

    def rearm_at(
        self, time_ns: int, entry: list, fn: Callable[[], None]
    ) -> None:
        """Fast path: re-insert a *spent* entry at ``time_ns``.

        ``entry`` must be a ``[time_ns, seq, fn]`` list whose event has
        already fired (the engine neutralizes fired entries, so callers
        check ``entry[2] is None``).  The entry is re-keyed with a fresh
        sequence number — exactly the ordering a fresh ``schedule_at``
        would get — without allocating a new list.  This is the cell
        train primitive: one link serialization entry stepping through a
        back-to-back run of cells.  Not cancellable.
        """
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        entry[0] = time_ns
        entry[1] = seq
        entry[2] = fn
        slot = time_ns >> _WHEEL_SHIFT
        if slot - self._cursor >= _WHEEL_SLOTS:
            heapq.heappush(self._spill, entry)
        else:
            bucket = self._buckets[slot & _WHEEL_MASK]
            if slot == self._sorted_slot:
                _insort_desc(bucket, entry)
            else:
                bucket.append(entry)
            self._wheel_live += 1

    def call_soon(self, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at the current instant (after pending same-time
        events already queued)."""
        return self.at(self._now, fn)

    # ------------------------------------------------------------------
    # Telemetry probe
    # ------------------------------------------------------------------
    def set_probe(
        self, fn: Callable[[int], None], interval_ns: int
    ) -> None:
        """Install ``fn(now_ns)`` as the run loop's observation probe.

        The probe is called at most once per ``interval_ns`` of
        simulation time, immediately before the first event fired on or
        past each deadline.  It must only *read* simulation state —
        scheduling from a probe is scheduling from inside the hot loop
        and is not supported.  Takes effect from the next :meth:`run`
        call; replaces any previously installed probe.
        """
        if interval_ns <= 0:
            raise SimError(f"probe interval must be positive, got {interval_ns}")
        self._probe = fn
        self._probe_interval = interval_ns
        # First deadline: the next interval boundary at or after now.
        self._probe_due = (self._now // interval_ns) * interval_ns
        if self._probe_due < self._now:
            self._probe_due += interval_ns

    def clear_probe(self) -> None:
        """Remove the probe; the hot loop reverts to the sentinel check."""
        self._probe = None
        self._probe_interval = 0
        self._probe_due = _NEVER

    def _probe_fire(self, time_ns: int) -> int:
        """Invoke the probe and advance the deadline past ``time_ns``.

        Returns the new deadline so the run loop can refresh its local
        mirror.  One sample per crossing, however far the event stream
        jumped — probes observe state, they don't backfill history.
        """
        probe = self._probe
        if probe is not None:
            probe(time_ns)
            interval = self._probe_interval
            due = (time_ns // interval + 1) * interval
        else:  # cleared mid-run from a callback
            due = _NEVER
        self._probe_due = due
        return due

    # ------------------------------------------------------------------
    # Cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled > self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._spill)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the spill heap and re-heapify,
        in place.

        In place matters: ``run`` holds a local reference to the spill
        list, so compaction (triggered by a cancel inside a callback)
        must mutate the same object.  Rebuilding preserves pop order
        because ``(time_ns, seq)`` is a total order.  The wheel never
        holds corpses — only the spill heap takes cancellable events.
        """
        spill = self._spill
        spill[:] = [entry for entry in spill if entry[2] is not None]
        heapq.heapify(spill)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        Returns the simulation time when the run stopped.  Events exactly
        at ``until`` are executed; later ones stay queued so the run can
        be resumed — as is the first event past a ``max_events`` stop.
        """
        if self._running:
            raise SimError("simulator is not re-entrant")
        self._running = True
        # Local bindings shave an attribute lookup per event on the
        # hottest loop in the codebase; the bucket lists and the spill
        # list are never rebound (inserts/compaction mutate in place) so
        # locals stay valid across callbacks that schedule more work.
        # The per-event counters (`_events_fired`, `_wheel_live`) update
        # eagerly so `events_fired`/`pending_events` stay exact even
        # when read from inside a callback.  The int sentinels keep the
        # horizon/budget compares int-vs-int.
        buckets = self._buckets
        spill = self._spill
        heappop = heapq.heappop
        shift = _WHEEL_SHIFT
        mask = _WHEEL_MASK
        nslots = _WHEEL_SLOTS
        horizon = _NEVER if until is None else until
        limit = _NEVER if max_events is None else max_events
        fired = 0
        # Probe deadline mirror: _NEVER when no probe is installed, so
        # the per-event cost of the telemetry hook is one int compare.
        probe_due = self._probe_due
        cursor = self._cursor
        # Only this loop ever writes _sorted_slot (inserts just read it
        # for the insort decision), so a local mirror is safe and saves
        # an attribute read per event.
        sorted_slot = self._sorted_slot
        due = buckets[cursor & mask]
        try:
            while True:
                # ---- wheel candidate: head of the cursor's bucket ----
                if due:
                    if sorted_slot != cursor:
                        # First look at this bucket (or appends landed
                        # while it was not the drain target): establish
                        # descending order once, then trust the tail —
                        # pops and insorts both preserve it.
                        due.sort(reverse=True)
                        sorted_slot = self._sorted_slot = cursor
                    wheel_entry = due[-1]
                elif self._wheel_live:
                    # Scan forward for the next non-empty bucket, but
                    # never past the spill head's slot (firing it must
                    # not strand the cursor ahead of insert targets).
                    bound = spill[0][0] >> shift if spill else cursor + nslots
                    if bound > cursor + nslots:
                        bound = cursor + nslots
                    scan = cursor + 1
                    while scan < bound and not buckets[scan & mask]:
                        scan += 1
                    cursor = self._cursor = scan
                    due = buckets[scan & mask]
                    if due:
                        due.sort(reverse=True)
                        sorted_slot = self._sorted_slot = scan
                        wheel_entry = due[-1]
                    else:
                        wheel_entry = None
                else:
                    wheel_entry = None

                # ---- merge with the spill heap, skipping corpses ----
                if spill:
                    spill_entry = spill[0]
                    if wheel_entry is None or spill_entry < wheel_entry:
                        fn = spill_entry[2]
                        if fn is None:
                            # Lazy-deleted corpse: drop it without
                            # charging events_fired or the budget.
                            heappop(spill)
                            self._cancelled -= 1
                            continue
                        time_ns = spill_entry[0]
                        if time_ns > horizon and until is not None:
                            # (`horizon` may be the _NEVER sentinel; an
                            # event beyond even that is still live and
                            # fires when no horizon was requested.)
                            self._now = until
                            cursor = until >> shift
                            break
                        if fired >= limit:
                            cursor = self._now >> shift
                            break
                        heappop(spill)
                        # Neutralize before firing: cancelling an
                        # already-fired event's handle (stale RTO
                        # guards do this) must not be booked as a
                        # corpse — and spent entries are what
                        # ``rearm_at`` callers recycle.
                        spill_entry[2] = None
                        self._now = time_ns
                        slot = time_ns >> shift
                        if slot != cursor:
                            cursor = self._cursor = slot
                            due = buckets[slot & mask]
                        if time_ns >= probe_due:
                            probe_due = self._probe_fire(time_ns)
                        fn()
                        self._events_fired += 1
                        fired += 1
                        continue
                elif wheel_entry is None:
                    # Both structures drained: advance the clock to the
                    # horizon if one was given.
                    if until is not None and until > self._now:
                        self._now = until
                    cursor = self._now >> shift
                    break

                # ---- fire from the wheel ----
                time_ns = wheel_entry[0]
                if time_ns > horizon and until is not None:
                    self._now = until
                    cursor = until >> shift
                    break
                if fired >= limit:
                    cursor = self._now >> shift
                    break
                due.pop()
                self._wheel_live -= 1
                fn = wheel_entry[2]
                wheel_entry[2] = None
                self._now = time_ns
                if time_ns >= probe_due:
                    probe_due = self._probe_fire(time_ns)
                fn()
                self._events_fired += 1
                fired += 1
        finally:
            self._cursor = cursor
            self._running = False
        return self._now

    def run_for(self, duration_ns: int) -> int:
        """Run for ``duration_ns`` beyond the current time."""
        return self.run(until=self._now + duration_ns)


class PeriodicTask:
    """Re-arms a callback every ``period_ns`` until stopped.

    Used for credit generation, reachability message emission and rate
    meters.  The first firing happens after ``phase_ns`` (defaults to one
    full period) so several periodic tasks can be de-synchronized.
    """

    __slots__ = ("_sim", "_period", "_fn", "_stopped", "_event", "_armed_at")

    def __init__(
        self,
        sim: Simulator,
        period_ns: int,
        fn: Callable[[], None],
        phase_ns: Optional[int] = None,
    ) -> None:
        if period_ns <= 0:
            raise SimError(f"period must be positive, got {period_ns}")
        self._sim = sim
        self._period = period_ns
        self._fn = fn
        self._stopped = False
        self._event: Optional[Event] = None
        #: When the pending tick was armed (its period is measured from
        #: here) — lets ``set_period`` re-derive the pending fire time.
        self._armed_at = sim.now
        first = period_ns if phase_ns is None else phase_ns
        self._event = sim.schedule(first, self._tick)

    @property
    def period_ns(self) -> int:
        """Current re-arm period."""
        return self._period

    def set_period(self, period_ns: int) -> None:
        """Change the period.

        Lengthening takes effect from the next re-arm (the pending tick
        fires as scheduled).  Shortening also pulls the pending tick
        forward to ``armed_at + period_ns`` (clamped to now), so a
        faster rate applies immediately instead of one stale period
        later.
        """
        if period_ns <= 0:
            raise SimError(f"period must be positive, got {period_ns}")
        self._period = period_ns
        if self._stopped or self._event is None:
            return
        target = max(self._sim.now, self._armed_at + period_ns)
        if target < self._event.time_ns:
            self._event.cancel()
            self._event = self._sim.at(target, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._armed_at = self._sim.now
            self._event = self._sim.schedule(self._period, self._tick)

    def stop(self) -> None:
        """Stop firing (cancels the pending tick)."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
