"""Discrete-event simulation substrate.

This package is the foundation every Stardust experiment runs on.  It
provides an integer-nanosecond event engine (:mod:`repro.sim.engine`),
point-to-point links with serialization and propagation delay
(:mod:`repro.sim.link`), drop-accounting FIFO queues
(:mod:`repro.sim.queue`), seeded random streams
(:mod:`repro.sim.randomness`) and measurement helpers
(:mod:`repro.sim.stats`).
"""

from repro.sim.engine import Simulator, Event, SimError
from repro.sim.entity import Entity
from repro.sim.link import Link, LinkDown
from repro.sim.queue import FifoQueue, QueueStats
from repro.sim.randomness import RandomStreams
from repro.sim.stats import (
    Counter,
    Histogram,
    RateMeter,
    TimeWeightedMean,
    percentile,
)
from repro.sim.trace import TraceRecord, Tracer
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    bits_to_time_ns,
    gbps,
    time_ns_for_bytes,
)

__all__ = [
    "Simulator",
    "Event",
    "SimError",
    "Entity",
    "Link",
    "LinkDown",
    "FifoQueue",
    "QueueStats",
    "RandomStreams",
    "Counter",
    "Histogram",
    "RateMeter",
    "TimeWeightedMean",
    "percentile",
    "Tracer",
    "TraceRecord",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "KB",
    "MB",
    "GBPS",
    "gbps",
    "bits_to_time_ns",
    "time_ns_for_bytes",
]
