"""Time, size and rate units used throughout the simulator.

All simulation time is kept in **integer nanoseconds** so that event
ordering is exact and runs are bit-for-bit reproducible.  All data sizes
are kept in **bytes** and all rates in **bits per second**.
"""

from __future__ import annotations

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

KB = 1_000
KIB = 1_024
MB = 1_000_000
MIB = 1_048_576
GB = 1_000_000_000

GBPS = 1_000_000_000


def gbps(value: float) -> int:
    """Return a rate in bits/second for ``value`` gigabits per second."""
    return int(value * GBPS)


def bits_to_time_ns(bits: int, rate_bps: int) -> int:
    """Time (ns) to serialize ``bits`` on a link of ``rate_bps``.

    Rounds up so a transmission never finishes early; this keeps queues
    conservative (slightly pessimistic) and avoids zero-duration sends.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if bits < 0:
        raise ValueError(f"bits must be non-negative, got {bits}")
    return -(-bits * SECOND // rate_bps)


def time_ns_for_bytes(num_bytes: int, rate_bps: int) -> int:
    """Time (ns) to serialize ``num_bytes`` on a link of ``rate_bps``."""
    return bits_to_time_ns(num_bytes * 8, rate_bps)


def bytes_in_time(time_ns: int, rate_bps: int) -> int:
    """How many whole bytes a ``rate_bps`` link moves in ``time_ns``."""
    if time_ns < 0:
        raise ValueError(f"time must be non-negative, got {time_ns}")
    return (time_ns * rate_bps) // (8 * SECOND)
