"""FIFO queues with byte accounting and drop policies.

Ethernet baseline switches use finite :class:`FifoQueue` instances with
drop-tail (and optional ECN marking threshold); Stardust VOQs use the
same structure with a much larger (host-buffer-backed) capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


@dataclass(slots=True)
class QueueStats:
    """Counters shared by every queue in the system."""

    enqueued_frames: int = 0
    enqueued_bytes: int = 0
    dequeued_frames: int = 0
    dequeued_bytes: int = 0
    dropped_frames: int = 0
    dropped_bytes: int = 0
    peak_bytes: int = 0
    peak_frames: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain dict (for reports)."""
        return {
            "enqueued_frames": self.enqueued_frames,
            "enqueued_bytes": self.enqueued_bytes,
            "dequeued_frames": self.dequeued_frames,
            "dequeued_bytes": self.dequeued_bytes,
            "dropped_frames": self.dropped_frames,
            "dropped_bytes": self.dropped_bytes,
            "peak_bytes": self.peak_bytes,
            "peak_frames": self.peak_frames,
        }


class FifoQueue(Generic[T]):
    """A byte-accounted FIFO with optional capacity (drop-tail).

    ``size_of`` maps an item to its byte size; it defaults to an
    attribute lookup of ``wire_bytes`` then ``size_bytes`` so packets and
    cells both work unannotated.
    """

    __slots__ = (
        "name", "capacity_bytes", "_size_of", "_items", "_bytes", "stats",
    )

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        size_of: Optional[Callable[[T], int]] = None,
        name: str = "fifo",
    ) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity must be positive or None")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._size_of = size_of or _default_size_of
        self._items: deque[T] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def bytes(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    @property
    def frames(self) -> int:
        """Items currently queued."""
        return len(self._items)

    @property
    def occupancy(self) -> float:
        """Used fraction of the byte capacity (0.0 when unbounded).

        The telemetry probes sample this: one float per queue per tick,
        comparable across queues of different capacities.
        """
        if self.capacity_bytes is None:
            return 0.0
        return self._bytes / self.capacity_bytes

    def would_fit(self, item: T) -> bool:
        """Whether ``item`` fits under the capacity right now."""
        if self.capacity_bytes is None:
            return True
        return self._bytes + self._size_of(item) <= self.capacity_bytes

    def push(self, item: T) -> bool:
        """Enqueue; returns False (and counts a drop) if it didn't fit."""
        size = self._size_of(item)
        if (
            self.capacity_bytes is not None
            and self._bytes + size > self.capacity_bytes
        ):
            self.stats.dropped_frames += 1
            self.stats.dropped_bytes += size
            return False
        self._items.append(item)
        self._bytes += size
        self.stats.enqueued_frames += 1
        self.stats.enqueued_bytes += size
        if self._bytes > self.stats.peak_bytes:
            self.stats.peak_bytes = self._bytes
        if len(self._items) > self.stats.peak_frames:
            self.stats.peak_frames = len(self._items)
        return True

    def pop(self) -> T:
        """Dequeue the head item; raises IndexError when empty."""
        item = self._items.popleft()
        size = self._size_of(item)
        self._bytes -= size
        self.stats.dequeued_frames += 1
        self.stats.dequeued_bytes += size
        return item

    def peek(self) -> T:
        """Head item without removing it; raises IndexError when empty."""
        return self._items[0]

    def clear(self) -> int:
        """Discard everything queued; returns the number of frames lost."""
        lost = len(self._items)
        self.stats.dropped_frames += lost
        self.stats.dropped_bytes += self._bytes
        self._items.clear()
        self._bytes = 0
        return lost


def _default_size_of(item: Any) -> int:
    for attr in ("wire_bytes", "size_bytes"):
        value = getattr(item, attr, None)
        if value is not None:
            return int(value)
    raise TypeError(
        f"cannot size {type(item).__name__}; provide size_of= to FifoQueue"
    )
