"""Point-to-point simplex links.

A :class:`Link` models one direction of a serial link (Stardust never
bundles links, so one Link is one lane).  It serializes frames in FIFO
order at ``rate_bps`` and delivers each to the destination entity after
an additional ``propagation_ns`` delay.

The link keeps its own transmit queue and exposes its depth; devices
that need finite buffers (Ethernet drop-tail switches) or congestion
marking (Fabric Elements) consult :attr:`queued_bytes` /
:attr:`queued_frames` before or while enqueuing.

Hot-path design
---------------

Every frame used to cost two closure allocations (one for the
serialization-done event, one for delivery) plus a fresh
``time_ns_for_bytes`` division.  Links now schedule two *bound methods*
through the engine's no-handle fast path and keep the frame payloads in
FIFO side queues (``_serializing``, ``_in_flight``): serialization
events complete in scheduling order per link, and propagation adds the
same constant to monotonically increasing completion times, so popping
left always matches the right frame.  Serialization times are memoized
per frame size — fabric traffic uses a handful of distinct sizes, so
the per-cell cost collapses to one dict hit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.units import time_ns_for_bytes


class LinkDown(RuntimeError):
    """Raised when sending on a link that is administratively down."""


class Link:
    """A simplex serial link with serialization + propagation delay."""

    __slots__ = (
        "sim", "src", "dst", "rate_bps", "propagation_ns", "name", "up",
        "_queue", "_queued_bytes", "_busy", "_serializing", "_in_flight",
        "_tx_ns", "tx_frames", "tx_bytes", "peak_queue_bytes",
        "peak_queue_frames", "on_transmit", "on_idle",
        "dropped_frames", "dropped_bytes", "failed_at_ns",
    )

    def __init__(
        self,
        sim: Simulator,
        src: Entity,
        dst: Entity,
        rate_bps: int,
        propagation_ns: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_ns < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.name = name or f"{src.name}->{dst.name}"
        self.up = True

        self._queue: deque[tuple[Any, int]] = deque()
        self._queued_bytes = 0
        self._busy = False
        #: (payload, size, done_ns) whose serialization event is
        #: pending.  Normally at most one entry; fail()/restore() can
        #: leave a stale pre-fail entry alongside a new one, so
        #: ``_tx_done`` matches on done_ns rather than trusting FIFO.
        self._serializing: deque[tuple[Any, int, int]] = deque()
        #: Payloads on the wire (serialized, not yet delivered).  Pure
        #: FIFO is exact here: entries are appended in simulation-time
        #: order and all delivery events share one propagation delay,
        #: so they fire in append order.
        self._in_flight: deque[Any] = deque()
        #: Frame size -> serialization time at this link's rate.
        self._tx_ns: Dict[int, int] = {}

        # Accounting.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.peak_queue_bytes = 0
        self.peak_queue_frames = 0
        #: Frames lost to failure: queued at fail() time, serialized
        #: into a dead link, or in flight when the link went down.
        #: ``dropped_bytes`` counts the sizes where they are known
        #: (queued + serializing; pure-propagation losses only have the
        #: payload, so they count frames but not bytes).
        self.dropped_frames = 0
        self.dropped_bytes = 0
        #: Simulation time of the most recent fail() (0 = never failed).
        #: Consumers model detection/rehash lag relative to this.
        self.failed_at_ns = 0

        # Hooks: on_transmit(payload) fires when serialization starts
        # (Fabric Elements stamp FCI there); on_idle() fires when the
        # transmit queue fully drains.
        self.on_transmit: Optional[Callable[[Any], None]] = None
        self.on_idle: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the transmit queue (not yet on the wire)."""
        return self._queued_bytes

    @property
    def queued_frames(self) -> int:
        """Frames waiting in the transmit queue."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a frame is being serialized."""
        return self._busy

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any, size_bytes: int) -> None:
        """Enqueue ``payload`` for transmission.

        ``size_bytes`` is the on-wire size (including any framing the
        caller wants to account for).  Frames are serialized strictly in
        FIFO order.
        """
        if not self.up:
            raise LinkDown(f"link {self.name} is down")
        if size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {size_bytes}")
        queue = self._queue
        queue.append((payload, size_bytes))
        queued = self._queued_bytes + size_bytes
        self._queued_bytes = queued
        if queued > self.peak_queue_bytes:
            self.peak_queue_bytes = queued
        if len(queue) > self.peak_queue_frames:
            self.peak_queue_frames = len(queue)
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        payload, size = self._queue.popleft()
        self._queued_bytes -= size
        self._busy = True
        if self.on_transmit is not None:
            self.on_transmit(payload)
        tx_time = self._tx_ns.get(size)
        if tx_time is None:
            tx_time = self._tx_ns[size] = time_ns_for_bytes(
                size, self.rate_bps
            )
        self._serializing.append((payload, size, self.sim.now + tx_time))
        self.sim.call_later(tx_time, self._tx_done)

    def _tx_done(self) -> None:
        serializing = self._serializing
        now = self.sim.now
        if serializing[0][2] == now:
            payload, size, _ = serializing.popleft()
        else:
            # A stale pre-fail serialization is still pending and a
            # post-restore frame finished first: this event belongs to
            # the first entry scheduled to complete right now (ties pop
            # in append order, matching event sequence order).
            index = 1
            while serializing[index][2] != now:
                index += 1
            payload, size, _ = serializing[index]
            del serializing[index]
        self.tx_frames += 1
        self.tx_bytes += size
        if self.up:
            # Frame hits the wire; deliver after propagation.
            self._in_flight.append(payload)
            self.sim.call_later(self.propagation_ns, self._deliver)
            # Next frame, if any.
            if self._queue:
                self._start_next()
                return
        else:
            # Serialization finished into a dead link: the frame is
            # lost, and it must be *counted* as lost, not silently
            # dropped (fault-injection accounting).
            self.dropped_frames += 1
            self.dropped_bytes += size
        self._busy = False
        if self.on_idle is not None and not self._queue:
            self.on_idle()

    def _deliver(self) -> None:
        payload = self._in_flight.popleft()
        if self.up:
            self.dst.receive(payload, self)
        else:
            # The link died while the frame was propagating: lost in
            # flight (size unknown here; frames only).
            self.dropped_frames += 1

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> int:
        """Take the link down, dropping everything queued and in flight.

        Returns the number of frames lost from the transmit queue.
        Frames mid-serialization or mid-propagation are counted into
        :attr:`dropped_frames` when their events fire (still down).
        """
        self.up = False
        self.failed_at_ns = self.sim.now
        lost = len(self._queue)
        self.dropped_frames += lost
        self.dropped_bytes += self._queued_bytes
        self._queue.clear()
        self._queued_bytes = 0
        return lost

    def restore(self) -> None:
        """Bring the link back up (queue starts empty)."""
        self.up = True
        self._busy = False

    def set_rate(self, rate_bps: int) -> None:
        """Change the serialization rate (degraded-operation intervals).

        Takes effect from the next frame to start serializing; the
        memoized per-size serialization times are recomputed lazily.
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if rate_bps != self.rate_bps:
            self.rate_bps = rate_bps
            self._tx_ns = {}


def duplex(
    sim: Simulator,
    a: Entity,
    b: Entity,
    rate_bps: int,
    propagation_ns: int = 0,
) -> tuple[Link, Link]:
    """Create the pair of simplex links forming a full-duplex link."""
    fwd = Link(sim, a, b, rate_bps, propagation_ns)
    rev = Link(sim, b, a, rate_bps, propagation_ns)
    a.attach_port(fwd)
    b.attach_port(rev)
    return fwd, rev
