"""Point-to-point simplex links.

A :class:`Link` models one direction of a serial link (Stardust never
bundles links, so one Link is one lane).  It serializes frames in FIFO
order at ``rate_bps`` and delivers each to the destination entity after
an additional ``propagation_ns`` delay.

The link keeps its own transmit queue and exposes its depth; devices
that need finite buffers (Ethernet drop-tail switches) or congestion
marking (Fabric Elements) consult :attr:`queued_bytes` /
:attr:`queued_frames` before or while enqueuing.

Hot-path design: cell trains
----------------------------

When a sender has k back-to-back cells queued, the link serializes them
as one *train*: a single reusable ``[time_ns, seq, fn]`` engine entry
(:meth:`Simulator.rearm_at`) steps through the k serialization
completions at their exact per-cell timestamps, and the frame being
serialized lives in three scalar slots instead of an allocated record.
Per cell that collapses an entry allocation plus two O(log n) heap
operations into one O(1) calendar-bucket re-arm — while firing exactly
the same events at the same ``(time_ns, seq)`` keys as the unbatched
engine, because each step re-arms at the execution point where the old
code scheduled afresh.  (Event *count* is part of every committed golden
digest, so trains amortize per-event cost, never event count.)

Trains split correctly under mid-train disturbances because each step
re-derives its state from the live link: ``set_rate`` flushes the
memoized per-size serialization times, so the next cell of the train
serializes at the new rate; ``fail()`` drops the queued remainder of the
train and lets the in-flight cell finish into a dead link (counted
lost); a post-``restore`` train lays a fresh entry if the pre-fail one
is still pending, and completion matching falls back to a FIFO side
queue (``_ser_extra``) so the stale completion pairs with the right
frame.

Propagation stays on the engine's no-handle fast path: delivery events
share one constant delay, so they fire in append order and a pure FIFO
(``_in_flight``) matches payloads exactly.  Delivery dispatches through
``dst.receive`` as bound at construction — a link's endpoints are fixed
at wiring time, and rebinding ``receive`` on a wired device later is
not supported.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.units import time_ns_for_bytes


class LinkDown(RuntimeError):
    """Raised when sending on a link that is administratively down."""


class Link:
    """A simplex serial link with serialization + propagation delay."""

    __slots__ = (
        "sim", "src", "dst", "rate_bps", "propagation_ns", "name", "up",
        "_queue", "_queued_bytes", "_busy",
        "_ser_payload", "_ser_size", "_ser_done", "_ser_extra",
        "_in_flight", "_tx_ns", "_tx_last_size", "_tx_last_ns",
        "_tx_entry", "_dst_receive", "_inline", "_rx_entry", "_tx_plan",
        "tx_frames", "tx_bytes", "peak_queue_bytes",
        "peak_queue_frames", "on_transmit", "on_idle",
        "dropped_frames", "dropped_bytes", "failed_at_ns",
    )

    def __init__(
        self,
        sim: Simulator,
        src: Entity,
        dst: Entity,
        rate_bps: int,
        propagation_ns: int = 0,
        name: Optional[str] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if propagation_ns < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.name = name or f"{src.name}->{dst.name}"
        self.up = True

        self._queue: deque[tuple[Any, int]] = deque()
        self._queued_bytes = 0
        self._busy = False
        #: The frame currently serializing, held in scalar slots
        #: (``_ser_done`` is -1 when idle).  ``fail()``/``restore()``
        #: can leave a stale pre-fail serialization pending alongside a
        #: new one; those overflow into ``_ser_extra`` (FIFO) and
        #: ``_tx_done`` matches on completion time rather than trusting
        #: the scalars.
        self._ser_payload: Any = None
        self._ser_size = 0
        self._ser_done = -1
        self._ser_extra: deque[tuple[Any, int, int]] = deque()
        #: Payloads on the wire (serialized, not yet delivered).  Pure
        #: FIFO is exact here: entries are appended in simulation-time
        #: order and all delivery events share one propagation delay,
        #: so they fire in append order.
        self._in_flight: deque[Any] = deque()
        #: Frame size -> serialization time at this link's rate, with a
        #: one-entry scalar front (a fabric link carries essentially
        #: one cell size, so the dict is rarely consulted).
        self._tx_ns: Dict[int, int] = {}
        self._tx_last_size = -1
        self._tx_last_ns = 0
        #: Kernel capability, sampled at wiring time: inline kernels
        #: (``repro.sim.kernel.batch``) step this link's events from the
        #: run loop via tagged ``[time, seq, kind, link]`` entries; the
        #: reference wheel kernel arms plain callback entries.
        self._inline: bool = sim.KERNEL_LINK_INLINE
        #: The train entry: one reusable engine entry stepping through
        #: back-to-back serialization completions.  ``entry[2] is None``
        #: means spent (fired or never armed) and safe to re-arm.
        self._tx_entry: list = [0, 0, None, self] if self._inline else [0, 0, None]
        #: Inline kernels only: a reusable delivery entry (the common
        #: case has at most one delivery in flight per link), plus the
        #: train's precomputed completion-time column (an ``array('q')``
        #: filled by the kernel; any train disturbance clears it).
        self._rx_entry: Optional[list] = (
            [0, 0, None, self] if self._inline else None
        )
        self._tx_plan: Any = ()
        #: Bound delivery target — ``dst`` never changes after wiring.
        self._dst_receive: Callable[[Any, "Link"], None] = dst.receive

        # Accounting.
        self.tx_frames = 0
        self.tx_bytes = 0
        self.peak_queue_bytes = 0
        self.peak_queue_frames = 0
        #: Frames lost to failure: queued at fail() time, serialized
        #: into a dead link, or in flight when the link went down.
        #: ``dropped_bytes`` counts the sizes where they are known
        #: (queued + serializing; pure-propagation losses only have the
        #: payload, so they count frames but not bytes).
        self.dropped_frames = 0
        self.dropped_bytes = 0
        #: Simulation time of the most recent fail() (0 = never failed).
        #: Consumers model detection/rehash lag relative to this.
        self.failed_at_ns = 0

        # Hooks: on_transmit(payload) fires when serialization starts
        # (Fabric Elements stamp FCI there); on_idle() fires when the
        # transmit queue fully drains.
        self.on_transmit: Optional[Callable[[Any], None]] = None
        self.on_idle: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------
    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the transmit queue (not yet on the wire)."""
        return self._queued_bytes

    @property
    def queued_frames(self) -> int:
        """Frames waiting in the transmit queue."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a frame is being serialized."""
        return self._busy

    @property
    def in_flight_frames(self) -> int:
        """Frames serialized but not yet delivered (on the wire)."""
        return len(self._in_flight)

    @property
    def serializer_occupancy(self) -> int:
        """Frames occupying the serializer right now (0 or 1, plus any
        stale pre-fail serializations still pending)."""
        occupied = 1 if self._ser_done != -1 else 0
        return occupied + len(self._ser_extra)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, payload: Any, size_bytes: int) -> None:
        """Enqueue ``payload`` for transmission.

        ``size_bytes`` is the on-wire size (including any framing the
        caller wants to account for).  Frames are serialized strictly in
        FIFO order.
        """
        if not self.up:
            raise LinkDown(f"link {self.name} is down")
        if size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {size_bytes}")
        queue = self._queue
        queue.append((payload, size_bytes))
        queued = self._queued_bytes + size_bytes
        self._queued_bytes = queued
        if queued > self.peak_queue_bytes:
            self.peak_queue_bytes = queued
        depth = len(queue)
        if depth > self.peak_queue_frames:
            self.peak_queue_frames = depth
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        """Start (or continue) a serialization train with the next frame."""
        if self._tx_plan:
            # Any arrival here invalidates a precomputed train column:
            # this is the scalar path (fresh train, hook installed, or
            # a stale-serialization corner), and consuming the queue
            # outside the column's accounting would desynchronize it.
            self._tx_plan = ()
        payload, size = self._queue.popleft()
        self._queued_bytes -= size
        self._busy = True
        if self.on_transmit is not None:
            self.on_transmit(payload)
        if size == self._tx_last_size:
            tx_time = self._tx_last_ns
        else:
            tx_time = self._tx_ns.get(size)
            if tx_time is None:
                tx_time = self._tx_ns[size] = time_ns_for_bytes(
                    size, self.rate_bps
                )
            self._tx_last_size = size
            self._tx_last_ns = tx_time
        sim = self.sim
        # Engine-internal clock read: this runs once per serialized
        # frame, and the property indirection is measurable there.
        done = sim._now + tx_time
        if self._ser_done != -1:
            # A stale pre-fail serialization is still pending: demote it
            # to the FIFO side queue so completion matching stays exact.
            self._ser_extra.append(
                (self._ser_payload, self._ser_size, self._ser_done)
            )
        self._ser_payload = payload
        self._ser_size = size
        self._ser_done = done
        entry = self._tx_entry
        if self._inline:
            if entry[2] is not None:
                # The stale serialization owns the train entry; orphan
                # it (its event still fires) and lay a fresh one.
                self._tx_entry = entry = [0, 0, None, self]
            sim.rearm_tagged(done, entry)
        else:
            if entry[2] is not None:
                self._tx_entry = entry = [0, 0, None]
            sim.rearm_at(done, entry, self._tx_done)

    def _tx_done(self) -> None:
        sim = self.sim
        now = sim._now
        if not self._ser_extra:
            payload = self._ser_payload
            size = self._ser_size
            self._ser_payload = None
            self._ser_done = -1
        else:
            payload, size = self._take_serialized(now)
        self.tx_frames += 1
        self.tx_bytes += size
        if self.up:
            # Frame hits the wire; deliver after propagation.
            self._in_flight.append(payload)
            sim.schedule_at(now + self.propagation_ns, self._deliver)
            # Next frame of the train, if any: the common step is
            # inlined (this method *is* the per-cell train step, so a
            # Python call per cell is real cost); hooks and the
            # stale-serialization corner fall back to _start_next.
            queue = self._queue
            if queue:
                if self.on_transmit is None and self._tx_entry[2] is None:
                    payload, size = queue.popleft()
                    self._queued_bytes -= size
                    if size == self._tx_last_size:
                        tx_time = self._tx_last_ns
                    else:
                        tx_time = self._tx_ns.get(size)
                        if tx_time is None:
                            tx_time = self._tx_ns[size] = time_ns_for_bytes(
                                size, self.rate_bps
                            )
                        self._tx_last_size = size
                        self._tx_last_ns = tx_time
                    done = now + tx_time
                    self._ser_payload = payload
                    self._ser_size = size
                    self._ser_done = done
                    sim.rearm_at(done, self._tx_entry, self._tx_done)
                else:
                    self._start_next()
                return
        else:
            # Serialization finished into a dead link: the frame is
            # lost, and it must be *counted* as lost, not silently
            # dropped (fault-injection accounting).
            self.dropped_frames += 1
            self.dropped_bytes += size
        self._busy = False
        if self.on_idle is not None and not self._queue:
            self.on_idle()

    def _take_serialized(self, now: int) -> tuple[Any, int]:
        """Match a completion to its frame when stale serializations from
        a fail/restore cycle coexist with the live train.

        Candidates are checked oldest-first (the side queue preserves
        start order; the scalars hold the newest), matching on the
        completion time — ties pop in start order, which is event
        sequence order.
        """
        extra = self._ser_extra
        for index, (payload, size, done) in enumerate(extra):
            if done == now:
                del extra[index]
                return payload, size
        payload = self._ser_payload
        size = self._ser_size
        self._ser_payload = None
        self._ser_done = -1
        return payload, size

    def _deliver(self) -> None:
        if self.up:
            self._dst_receive(self._in_flight.popleft(), self)
        else:
            # The link died while the frame was propagating: lost in
            # flight (size unknown here; frames only).
            self._in_flight.popleft()
            self.dropped_frames += 1

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> int:
        """Take the link down, dropping everything queued and in flight.

        Returns the number of frames lost from the transmit queue.
        Frames mid-serialization or mid-propagation are counted into
        :attr:`dropped_frames` when their events fire (still down) —
        this is also what splits an in-progress train: its queued
        remainder is dropped here, its in-flight head finishes into the
        dead link.
        """
        self.up = False
        self.sim.topology_epoch += 1
        self.failed_at_ns = self.sim.now
        if self._tx_plan:
            self._tx_plan = ()  # the planned train just lost its cells
        lost = len(self._queue)
        self.dropped_frames += lost
        self.dropped_bytes += self._queued_bytes
        self._queue.clear()
        self._queued_bytes = 0
        return lost

    def restore(self) -> None:
        """Bring the link back up (queue starts empty)."""
        self.up = True
        self.sim.topology_epoch += 1
        self._busy = False

    def set_rate(self, rate_bps: int) -> None:
        """Change the serialization rate (degraded-operation intervals).

        Takes effect from the next frame to start serializing — an
        in-progress train splits here, because every step re-derives its
        serialization time from the (now flushed) memo table.
        """
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if rate_bps != self.rate_bps:
            self.rate_bps = rate_bps
            self._tx_ns = {}
            self._tx_last_size = -1
            if self._tx_plan:
                self._tx_plan = ()  # planned times assumed the old rate


def duplex(
    sim: Simulator,
    a: Entity,
    b: Entity,
    rate_bps: int,
    propagation_ns: int = 0,
) -> tuple[Link, Link]:
    """Create the pair of simplex links forming a full-duplex link."""
    fwd = Link(sim, a, b, rate_bps, propagation_ns)
    rev = Link(sim, b, a, rate_bps, propagation_ns)
    a.attach_port(fwd)
    b.attach_port(rev)
    return fwd, rev
