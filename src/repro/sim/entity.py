"""Base class for simulated devices.

An :class:`Entity` is anything with a name that receives objects from
:class:`repro.sim.link.Link` endpoints: hosts, Fabric Adapters, Fabric
Elements, Ethernet switches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


class Entity:
    """A named participant in the simulation.

    Subclasses implement :meth:`receive` to handle arriving frames and
    may use :meth:`attach_port` bookkeeping to learn their ports.

    The base declares ``__slots__``: the hot-core device classes (FAs,
    FEs) stay dict-free end to end, while edge/baseline subclasses
    that skip ``__slots__`` simply get a ``__dict__`` back.
    """

    __slots__ = ("sim", "name", "ports")

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: list["Link"] = []

    def attach_port(self, link: "Link") -> int:
        """Register ``link`` as the next port; returns the port index."""
        self.ports.append(link)
        return len(self.ports) - 1

    def port_index(self, link: "Link") -> int:
        """Index of ``link`` among this entity's ports."""
        return self.ports.index(link)

    def receive(self, payload: Any, link: "Link") -> None:
        """Handle an object delivered by ``link``.  Subclasses override."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement receive()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
