"""Deterministic random streams.

Every component that needs randomness (spray permutations, workload
inter-arrivals, ECMP hash salts) draws from its own named stream derived
from a single experiment seed.  Component behaviour is therefore stable
when unrelated components are added or removed — crucial for comparing
ablations run-to-run.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}/{name}".encode()
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.seed}/{name}/spawn".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
