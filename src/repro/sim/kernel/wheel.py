"""The ``wheel`` kernel: the reference calendar-wheel engine.

This module registers :class:`repro.sim.engine.Simulator` — today's
code, verbatim — as the kernel named ``wheel``.  It is the semantic
reference every other kernel is tested against: the kernel-parametrized
golden and scheduler-invariant suites assert byte-identical behavior,
and a new kernel is correct exactly when those suites cannot tell it
apart from this one.

Registering the engine class itself (rather than a subclass) means a
plain ``Simulator()`` constructed anywhere — tests, notebooks, the
default ``build_network`` path — *is* the wheel kernel, and carries
``kernel_name == "wheel"``.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.kernel.registry import kernel

kernel(
    "wheel",
    description=(
        "Reference calendar-wheel + spill-heap engine; one Python "
        "callback frame per event."
    ),
    aliases=("reference",),
)(Simulator)
