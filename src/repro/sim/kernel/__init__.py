"""Swappable engine cores behind one narrow boundary.

The engine-kernel boundary is the three inner loops every profile is
made of — calendar-wheel rotation/pop, cell-train stepping, and the
link FIFO drain — plus the scheduling API that feeds them.  A *kernel*
is a :class:`~repro.sim.engine.Simulator` core implementing that
boundary; the registry makes kernels named plugins the same way fabrics
and scenarios already are.

Two kernels ship:

* ``wheel`` — the reference calendar-wheel engine, today's code
  verbatim (:mod:`repro.sim.kernel.wheel`);
* ``batch`` — batched bucket drain + inline tagged cell-train stepping
  with flat ``array('q')`` time columns (:mod:`repro.sim.kernel.batch`).

Every registered kernel must be bit-identical to ``wheel`` on every
committed golden trace; ``ScenarioSpec.kernel`` selects one per run and
is hash-neutral for exactly that reason.
"""

from repro.sim.kernel.registry import (
    DEFAULT_KERNEL,
    KernelEntry,
    UnknownKernelError,
    build_simulator,
    get_kernel,
    kernel,
    kernel_names,
    known_kernel_names,
)

# Importing the implementation modules is what registers them.
from repro.sim.kernel import wheel as _wheel  # noqa: F401
from repro.sim.kernel import batch as _batch  # noqa: F401
from repro.sim.kernel.batch import BatchSimulator

__all__ = [
    "DEFAULT_KERNEL",
    "BatchSimulator",
    "KernelEntry",
    "UnknownKernelError",
    "build_simulator",
    "get_kernel",
    "kernel",
    "kernel_names",
    "known_kernel_names",
]
