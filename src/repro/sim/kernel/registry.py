"""The kernel registry: engine cores are named plugins.

Mirrors the fabric registry of :mod:`repro.fabrics.registry` (and the
scenario/rule registries it mirrors in turn): a :class:`Simulator`
subclass — or the reference class itself — registers under a name::

    @kernel("batch")
    class BatchSimulator(Simulator):
        ...

and everything downstream — ``builders.build_network``, spec
validation, the perf suite's ``--kernel`` flag — resolves kernels with
:func:`get_kernel` / :func:`build_simulator`.  A third kernel drops in
by registering itself; no runner or builder code changes.

The kernel **contract** is the narrow boundary the rest of the codebase
already depends on (see :mod:`repro.sim.engine` for the reference
semantics):

* the scheduling API (``at``/``schedule``/``schedule_at``/``call_later``
  /``rearm_at``/``call_soon``) allocates one sequence number per event,
  in call order — ``(time_ns, seq)`` is the total firing order;
* ``run(until, max_events)`` fires events in exactly that order, counts
  each in ``events_fired``, and never fires a cancelled entry;
* the probe hook (``set_probe``) samples between events on the same
  deadlines, and the occupancy meta-metrics (``wheel_occupancy``,
  ``spill_occupancy``, ``corpse_count``, ``pending_events``) stay
  readable — and exact — from inside callbacks and probes.

Two runs of the same spec under different registered kernels must be
**bit-identical** (same events, same timestamps, same digests); the
kernel-parametrized golden and invariant tests enforce this, which is
what makes ``ScenarioSpec.kernel`` hash-neutral by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

#: The kernel used when a spec leaves ``kernel`` unset: the reference
#: calendar-wheel engine.
DEFAULT_KERNEL = "wheel"


class UnknownKernelError(KeyError, ValueError):
    """Raised when a kernel name is not in the registry.

    Inherits ``ValueError`` too, matching the other registries: spec
    validation raises ``ValueError`` for bad field values, and callers
    catching that must keep working.
    """

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown kernel {self.name!r}; "
            f"registered: {', '.join(self.known) or '(none)'}"
        )


@dataclass(frozen=True, slots=True)
class KernelEntry:
    """One registered engine core."""

    name: str
    cls: Type
    description: str = ""
    aliases: Tuple[str, ...] = ()


_REGISTRY: Dict[str, KernelEntry] = {}
_ALIASES: Dict[str, str] = {}


def kernel(name: str, description: str = "", aliases: Tuple[str, ...] = ()):
    """Class decorator registering a :class:`Simulator` core under ``name``."""

    def register(cls):
        for candidate in (name, *aliases):
            if candidate in _REGISTRY or candidate in _ALIASES:
                raise ValueError(f"kernel {candidate!r} already registered")
        doc = (cls.__doc__ or "").strip()
        _REGISTRY[name] = KernelEntry(
            name,
            cls,
            description or (doc.splitlines()[0] if doc else ""),
            tuple(aliases),
        )
        for alias in aliases:
            _ALIASES[alias] = name
        cls.kernel_name = name
        return cls

    return register


def get_kernel(name: str | None) -> KernelEntry:
    """The registry entry for ``name`` (``None`` → the default kernel).

    Raises :class:`UnknownKernelError` listing the known names when
    ``name`` is not registered.
    """
    if name is None:
        name = DEFAULT_KERNEL
    try:
        return _REGISTRY[_ALIASES.get(name, name)]
    except KeyError:
        raise UnknownKernelError(name, known_kernel_names()) from None


def build_simulator(name: str | None = None):
    """A fresh simulator running the named kernel (``None`` → default)."""
    return get_kernel(name).cls()


def kernel_names() -> List[str]:
    """All registered canonical kernel names, sorted (aliases excluded)."""
    return sorted(_REGISTRY)


def known_kernel_names() -> List[str]:
    """Every name :func:`get_kernel` accepts: canonical names + aliases."""
    return sorted(_REGISTRY) + sorted(_ALIASES)
