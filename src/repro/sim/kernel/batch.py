"""The ``batch`` kernel: vectorized cell-train stepping.

Same events, same ``(time_ns, seq)`` keys, same digests as the
reference ``wheel`` kernel — the kernel-parametrized golden matrix
enforces byte-identity — but the three inner loops that dominate every
profile are restructured so the common case pays no per-event Python
frames beyond the device callback itself:

* **Tagged link entries.**  Under this kernel a link arms its train and
  delivery events as ``[time_ns, seq, kind, link]`` where ``kind`` is a
  small int (:data:`TAG_TX` / :data:`TAG_RX`), not a bound method.  The
  run loop dispatches on the tag and steps the link inline: a
  serialization completion plus its delivery used to cost four extra
  frames (``_tx_done``, ``schedule_at``, ``rearm_at``, ``_deliver``);
  now the only frames are one ``_tx_step`` call and the destination's
  ``receive``.  Seq allocation order inside the step (delivery first,
  then the train re-arm) mirrors ``Link._tx_done`` exactly.  Hooks,
  stale pre-fail serializations, and anything else off the common path
  fall back to the link's own scalar methods.
* **Batched bucket drain.**  The wheel loop re-derives its bucket /
  spill-head / horizon / probe state from scratch per event.  Here,
  once a bucket is sorted, an inner loop drains it against a single
  precomputed bound (min of horizon and next probe deadline) and a
  cached spill-head *entry* whose time is only re-read when a callback
  actually installed a different head (watched by identity — pushes,
  pops and compaction all swap the head object, and an in-heap entry's
  key is never mutated) — the per-event cost of the merge drops to two
  int compares plus one identity check.
* **``array('q')`` train columns.**  When a link's train runs through a
  same-size run of queued cells, the completion times are an arithmetic
  progression; the step materializes them into a flat ``array('q')``
  column in one C call (``range``) and subsequent steps pop precomputed
  times instead of re-deriving them.  Any disturbance that could split
  the train — ``set_rate``, ``fail``, a hook install, the stale
  serialization corner — drops the column and the train re-derives
  state scalar-wise, exactly like the wheel kernel (the column holds
  *times*, never sequence numbers, so event identity is untouched).
* **GC deferral.**  The run loop disables the cyclic garbage collector
  while it owns the process and restores it on exit.  The workloads
  allocate heavily but acyclically (cells, frames, list entries), so
  refcounting already reclaims them; the collector's generation-0
  passes were pure overhead — almost half the wall time of the
  permutation benches.  Event order, counters, and results are
  unaffected; a collection simply happens later.

Counters stay eager (``events_fired``, ``wheel_occupancy``,
``spill_occupancy``, ``corpse_count`` are exact at every callback and
probe), so telemetry's engine probes read the same values under either
kernel.
"""

from __future__ import annotations

import gc
from array import array
from heapq import heappop, heappush
from typing import Optional

from repro.sim.engine import (
    _NEVER,
    _WHEEL_MASK,
    _WHEEL_SHIFT,
    _WHEEL_SLOTS,
    _insort_desc,
    SimError,
    Simulator,
)
from repro.sim.kernel.registry import kernel
from repro.sim.units import time_ns_for_bytes

#: Entry tags: ``entry[2]`` of a link-armed ``[time, seq, kind, link]``
#: entry.  Ints, so the run loop's dispatch is ``fn.__class__ is int``
#: — and a *fired* entry still reads ``entry[2] is None`` like every
#: other spent entry, which is what the link's re-arm guards check.
TAG_TX = 1
TAG_RX = 2

#: Train columns are only materialized for runs at least this long —
#: below it the scan costs more than the memo lookups it replaces.
_PLAN_MIN = 8
#: ...and at most this long per fill, bounding the column's memory on
#: pathologically deep queues (it simply refills when exhausted).
_PLAN_MAX = 256


@kernel(
    "batch",
    description=(
        "Batched bucket drain + inline tagged cell-train stepping with "
        "array('q') time columns; GC deferred while the loop runs."
    ),
)
class BatchSimulator(Simulator):
    """Batch-stepping engine core (bit-identical to ``wheel``)."""

    __slots__ = ()

    #: Links wired to this kernel arm tagged entries (see module doc).
    KERNEL_LINK_INLINE = True

    # ------------------------------------------------------------------
    # Scheduling: the tagged-entry fast paths links use
    # ------------------------------------------------------------------
    def rearm_tagged(self, time_ns: int, entry: list) -> None:
        """Re-arm a spent ``[time, seq, kind, link]`` entry as a TX
        completion at ``time_ns`` (the tagged twin of ``rearm_at``)."""
        if time_ns < self._now:
            raise SimError(
                f"cannot schedule at t={time_ns}ns, now is {self._now}ns"
            )
        seq = self._seq
        self._seq = seq + 1
        entry[0] = time_ns
        entry[1] = seq
        entry[2] = TAG_TX
        slot = time_ns >> _WHEEL_SHIFT
        if slot - self._cursor >= _WHEEL_SLOTS:
            heappush(self._spill, entry)
        else:
            bucket = self._buckets[slot & _WHEEL_MASK]
            if slot == self._sorted_slot:
                _insort_desc(bucket, entry)
            else:
                bucket.append(entry)
            self._wheel_live += 1

    # ------------------------------------------------------------------
    # The inline cell-train step
    # ------------------------------------------------------------------
    def _tx_step(self, link) -> None:
        """One serialization completion on ``link`` — the batch twin of
        ``Link._tx_done``, with the delivery schedule and the train
        re-arm inlined (no engine-call frames).

        Statement order mirrors ``_tx_done``/``_start_next`` exactly
        where it is observable: the delivery's sequence number is
        allocated before the next cell's, accounting happens before the
        hook fallback, and the inline continuation is guarded by the
        same "no hook, train entry spent" condition.
        """
        now = self._now
        if link._ser_extra:
            payload, size = link._take_serialized(now)
        else:
            payload = link._ser_payload
            size = link._ser_size
            link._ser_payload = None
            link._ser_done = -1
        link.tx_frames += 1
        link.tx_bytes += size
        if not link.up:
            # Serialization finished into a dead link: counted lost.
            link.dropped_frames += 1
            link.dropped_bytes += size
            link._busy = False
            if link.on_idle is not None and not link._queue:
                link.on_idle()
            return
        link._in_flight.append(payload)

        # Delivery after propagation, reusing the link's delivery entry
        # when it is free (it usually is: one delivery pending per link
        # at a time unless propagation exceeds serialization).  The
        # engine mirrors (cursor/buckets/sorted slot) are hoisted once
        # for both inline inserts; ``_seq`` is written back once on
        # every exit path below.
        t = now + link.propagation_ns
        seq = self._seq
        cursor = self._cursor
        buckets = self._buckets
        rx = link._rx_entry
        if rx[2] is None:
            rx[0] = t
            rx[1] = seq
            rx[2] = TAG_RX
        else:
            rx = [t, seq, TAG_RX, link]
        slot = t >> _WHEEL_SHIFT
        if slot - cursor >= _WHEEL_SLOTS:
            heappush(self._spill, rx)
        else:
            bucket = buckets[slot & _WHEEL_MASK]
            if slot == self._sorted_slot:
                _insort_desc(bucket, rx)
            else:
                bucket.append(rx)
            self._wheel_live += 1

        queue = link._queue
        if not queue:
            self._seq = seq + 1
            link._busy = False
            if link.on_idle is not None:
                link.on_idle()
            return

        # Next cell of the train.  Same guard as the wheel kernel's
        # inline step: a transmit hook or a stale train entry means the
        # scalar path owns this transition.
        entry = link._tx_entry
        if link.on_transmit is not None or entry[2] is not None:
            self._seq = seq + 1
            link._start_next()
            return
        payload, size = queue.popleft()
        link._queued_bytes -= size
        plan = link._tx_plan
        if plan:
            # Precomputed train column: the completion time was filled
            # by a previous step (descending, so ``pop`` is the next
            # one).  Only same-size runs are planned, so ``size`` is the
            # planned size by construction.
            done = plan.pop()
        else:
            if size == link._tx_last_size:
                tx_time = link._tx_last_ns
            else:
                tx_time = link._tx_ns.get(size)
                if tx_time is None:
                    tx_time = link._tx_ns[size] = time_ns_for_bytes(
                        size, link.rate_bps
                    )
                link._tx_last_size = size
                link._tx_last_ns = tx_time
            done = now + tx_time
            if len(queue) >= _PLAN_MIN and tx_time > 0:
                # Vectorized column fill: completion times of the
                # same-size head run, one C-level materialization.
                n = 0
                for _payload, s in queue:
                    if s != size or n >= _PLAN_MAX:
                        break
                    n += 1
                if n >= _PLAN_MIN:
                    link._tx_plan = array(
                        "q", range(done + n * tx_time, done, -tx_time)
                    )
        link._ser_payload = payload
        link._ser_size = size
        link._ser_done = done
        self._seq = seq + 2
        entry[0] = done
        entry[1] = seq + 1
        entry[2] = TAG_TX
        slot = done >> _WHEEL_SHIFT
        if slot - cursor >= _WHEEL_SLOTS:
            heappush(self._spill, entry)
        else:
            bucket = buckets[slot & _WHEEL_MASK]
            if slot == self._sorted_slot:
                _insort_desc(bucket, entry)
            else:
                bucket.append(entry)
            self._wheel_live += 1

    # ------------------------------------------------------------------
    # The batched run loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events — same semantics and firing order as the wheel
        kernel's loop (see :meth:`repro.sim.engine.Simulator.run`),
        restructured around a batched bucket drain.

        The outer loop is the wheel loop (candidate selection, exact
        spill merge, horizon/budget/probe edges) with tag dispatch
        added; after each generically fired wheel event, the inner
        drain loop keeps firing from the now-sorted bucket while a
        single precomputed bound proves the next entry is safe —
        breaking back to the outer loop for every boundary case (spill
        head due or tied, probe deadline, horizon, budget), which
        re-derives state exactly.
        """
        if self._running:
            raise SimError("simulator is not re-entrant")
        self._running = True
        buckets = self._buckets
        spill = self._spill
        shift = _WHEEL_SHIFT
        mask = _WHEEL_MASK
        nslots = _WHEEL_SLOTS
        horizon = _NEVER if until is None else until
        limit = _NEVER if max_events is None else max_events
        fired = 0
        probe_due = self._probe_due
        cursor = self._cursor
        sorted_slot = self._sorted_slot
        due = buckets[cursor & mask]
        tx_step = self._tx_step
        # Defer cyclic GC while the loop owns the process (restored on
        # exit, even via exceptions); see the module docstring.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                # ---- wheel candidate: head of the cursor's bucket ----
                if due:
                    if sorted_slot != cursor:
                        due.sort(reverse=True)
                        sorted_slot = self._sorted_slot = cursor
                    wheel_entry = due[-1]
                elif self._wheel_live:
                    bound = spill[0][0] >> shift if spill else cursor + nslots
                    if bound > cursor + nslots:
                        bound = cursor + nslots
                    scan = cursor + 1
                    while scan < bound and not buckets[scan & mask]:
                        scan += 1
                    cursor = self._cursor = scan
                    due = buckets[scan & mask]
                    if due:
                        due.sort(reverse=True)
                        sorted_slot = self._sorted_slot = scan
                        wheel_entry = due[-1]
                    else:
                        wheel_entry = None
                else:
                    wheel_entry = None

                # ---- merge with the spill heap, skipping corpses ----
                if spill:
                    spill_entry = spill[0]
                    if wheel_entry is None or spill_entry < wheel_entry:
                        fn = spill_entry[2]
                        if fn is None:
                            heappop(spill)
                            self._cancelled -= 1
                            continue
                        time_ns = spill_entry[0]
                        if time_ns > horizon and until is not None:
                            self._now = until
                            cursor = until >> shift
                            break
                        if fired >= limit:
                            cursor = self._now >> shift
                            break
                        heappop(spill)
                        spill_entry[2] = None
                        self._now = time_ns
                        slot = time_ns >> shift
                        if slot != cursor:
                            cursor = self._cursor = slot
                            due = buckets[slot & mask]
                        if time_ns >= probe_due:
                            probe_due = self._probe_fire(time_ns)
                        if fn.__class__ is int:
                            link = spill_entry[3]
                            if fn == TAG_TX:
                                tx_step(link)
                            elif link.up:
                                link._dst_receive(
                                    link._in_flight.popleft(), link
                                )
                            else:
                                link._in_flight.popleft()
                                link.dropped_frames += 1
                        else:
                            fn()
                        self._events_fired += 1
                        fired += 1
                        continue
                elif wheel_entry is None:
                    if until is not None and until > self._now:
                        self._now = until
                    cursor = self._now >> shift
                    break

                # ---- fire the wheel candidate (full edge checks) ----
                time_ns = wheel_entry[0]
                if time_ns > horizon and until is not None:
                    self._now = until
                    cursor = until >> shift
                    break
                if fired >= limit:
                    cursor = self._now >> shift
                    break
                due.pop()
                self._wheel_live -= 1
                fn = wheel_entry[2]
                wheel_entry[2] = None
                self._now = time_ns
                if time_ns >= probe_due:
                    probe_due = self._probe_fire(time_ns)
                if fn.__class__ is int:
                    link = wheel_entry[3]
                    if fn == TAG_TX:
                        tx_step(link)
                    elif link.up:
                        link._dst_receive(link._in_flight.popleft(), link)
                    else:
                        link._in_flight.popleft()
                        link.dropped_frames += 1
                else:
                    fn()
                self._events_fired += 1
                fired += 1

                # ---- batched drain of the rest of this bucket ----
                # Bound: the drain may fire any entry strictly before
                # the next probe deadline, at or before the horizon, and
                # strictly before the spill head (ties go to the outer
                # loop's exact (time, seq) compare).  The spill head
                # *entry* is cached and the bound recomputed whenever a
                # callback installed a different head object — watching
                # ``len`` is not enough, because a compaction (removing
                # N corpses) plus N pushes leaves the length unchanged
                # while the new head may be earlier.  Identity is exact:
                # pushes, pops and compaction all swap the head object,
                # and an in-heap entry's (time, seq) key is never
                # mutated (rearm requires a popped, spent entry).  A
                # cancellation nulls head[2] in place but keeps its key,
                # so the stale bound is merely conservative and the
                # outer loop drops the corpse.
                lim = probe_due - 1
                if horizon < lim:
                    lim = horizon
                head = spill[0] if spill else None
                if head is not None and head[0] < lim:
                    lim = head[0] - 1
                while due:
                    e = due[-1]
                    time_ns = e[0]
                    if time_ns > lim or fired >= limit:
                        break
                    due.pop()
                    self._wheel_live -= 1
                    fn = e[2]
                    e[2] = None
                    self._now = time_ns
                    if fn.__class__ is int:
                        link = e[3]
                        if fn == TAG_TX:
                            tx_step(link)
                        elif link.up:
                            link._dst_receive(link._in_flight.popleft(), link)
                        else:
                            link._in_flight.popleft()
                            link.dropped_frames += 1
                    else:
                        fn()
                    self._events_fired += 1
                    fired += 1
                    h = spill[0] if spill else None
                    if h is not head:
                        head = h
                        lim = probe_due - 1
                        if horizon < lim:
                            lim = horizon
                        if h is not None and h[0] < lim:
                            lim = h[0] - 1
        finally:
            self._cursor = cursor
            self._running = False
            if gc_was_enabled:
                gc.enable()
        return self._now
