"""Measurement primitives used by experiments.

These are intentionally simple — exact sample stores for percentile
queries at experiment scale, plus streaming counters for rates and
time-weighted occupancies.
"""

from __future__ import annotations

import math
from array import array
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence


def percentile(samples: Sequence[float], pct: float) -> float:
    """The ``pct``-th percentile (0..100) by linear interpolation.

    Raises ValueError on an empty sample set, matching numpy semantics
    closely enough for our use (we only report, never branch, on these).
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1 - frac) + ordered[hi] * frac)


class Counter:
    """A named monotonically-increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter by ``amount`` (default 1)."""
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount


class Histogram:
    """Sample store with summary statistics.

    Keeps every sample (exactly — percentile queries stay sample-exact)
    in an ``array('d')``: one packed C double per sample instead of a
    pointer plus a boxed float, which cuts the resident size of a
    5M-event run's latency histograms by ~4x and makes merges a
    ``memcpy``.  Values coerce to float on append, exactly as the old
    list-of-floats did, so digests hash identically.  Offers mean,
    percentiles, min/max and a fixed-bin distribution for plotting the
    paper's probability curves (Fig 9).
    """

    __slots__ = ("name", "_samples")

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self._samples = array("d")

    def record(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        self._samples.extend(float(v) for v in values)

    def merge(self, other: "Histogram") -> None:
        """Append another histogram's samples.

        Array-to-array extend is a single C copy: the per-run metric
        merges in ``collect_metrics`` walk every recorded sample, so
        this is the cheapest correct form.
        """
        self._samples.extend(other._samples)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._samples:
            raise ValueError(f"{self.name}: no samples")
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        """Smallest sample."""
        return min(self._samples)

    def maximum(self) -> float:
        """Largest sample."""
        return max(self._samples)

    def stdev(self) -> float:
        """Sample standard deviation (0 for <2 samples)."""
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        var = sum((s - mu) ** 2 for s in self._samples) / (
            len(self._samples) - 1
        )
        return math.sqrt(var)

    def pct(self, p: float) -> float:
        """The p-th percentile of the samples."""
        return percentile(self._samples, p)

    def distribution(
        self, bin_width: float, max_value: Optional[float] = None
    ) -> Dict[float, float]:
        """Probability mass per bin of ``bin_width`` (Fig 9 style)."""
        if bin_width <= 0:
            raise ValueError("bin width must be positive")
        if not self._samples:
            return {}
        top = max_value if max_value is not None else max(self._samples)
        dist: Dict[float, float] = {}
        n = len(self._samples)
        for s in self._samples:
            if s > top:
                continue
            b = math.floor(s / bin_width) * bin_width
            dist[b] = dist.get(b, 0.0) + 1.0 / n
        return dict(sorted(dist.items()))

    def ccdf(self) -> List[tuple[float, float]]:
        """(value, P[X >= value]) points — the paper's queue-tail plots."""
        if not self._samples:
            return []
        ordered = sorted(self._samples)
        n = len(ordered)
        points: List[tuple[float, float]] = []
        seen = None
        for i, v in enumerate(ordered):
            if v != seen:
                points.append((v, (n - i) / n))
                seen = v
        return points


class TimeWeightedMean:
    """Mean of a piecewise-constant signal, weighted by holding time.

    Used for average queue occupancy: call :meth:`update` every time the
    level changes, then :meth:`value` integrates level x duration.
    """

    __slots__ = ("_last_time", "_level", "_area", "_peak")

    def __init__(self, start_time_ns: int = 0, level: float = 0.0) -> None:
        self._last_time = start_time_ns
        self._level = level
        self._area = 0.0
        self._peak = level

    def update(self, time_ns: int, level: float) -> None:
        """Record a level change at ``time_ns``."""
        if time_ns < self._last_time:
            raise ValueError("time moved backwards")
        self._area += self._level * (time_ns - self._last_time)
        self._last_time = time_ns
        self._level = level
        if level > self._peak:
            self._peak = level

    @property
    def peak(self) -> float:
        """Highest level seen so far."""
        return self._peak

    def value(self, now_ns: int) -> float:
        """Time-weighted mean level up to ``now_ns``."""
        total = now_ns - (self._last_time - 0)
        area = self._area + self._level * (now_ns - self._last_time)
        if now_ns <= 0:
            return self._level
        return area / now_ns


class RateMeter:
    """Bytes-per-interval meter; reports average goodput in bits/sec.

    Keeps cumulative totals *and* a deque-trimmed trailing window of
    recent observations, so windowed queries — what the telemetry
    probes poll every tick — sum only the retained samples instead of
    rescanning history.  The window is trimmed as samples arrive
    (amortized O(1) per :meth:`record`), bounding memory to one
    ``retention_ns`` of traffic regardless of run length.
    """

    __slots__ = (
        "name", "total_bytes", "first_ns", "last_ns", "retention_ns",
        "_window", "_window_bytes",
    )

    #: Default trailing-window retention: wide enough for the telemetry
    #: probes' cadences, narrow enough to stay a few hundred tuples per
    #: port at line rate.
    DEFAULT_RETENTION_NS = 1_000_000

    def __init__(
        self,
        name: str = "rate",
        retention_ns: int = DEFAULT_RETENTION_NS,
    ) -> None:
        if retention_ns <= 0:
            raise ValueError("retention must be positive")
        self.name = name
        self.total_bytes = 0
        self.first_ns: Optional[int] = None
        self.last_ns: Optional[int] = None
        self.retention_ns = retention_ns
        #: Samples newer than ``last_ns - retention_ns``, oldest first.
        self._window: deque[tuple[int, int]] = deque()
        self._window_bytes = 0

    def record(self, time_ns: int, nbytes: int) -> None:
        """Count ``nbytes`` observed at ``time_ns``."""
        if self.first_ns is None:
            self.first_ns = time_ns
        self.last_ns = time_ns
        self.total_bytes += nbytes
        window = self._window
        window.append((time_ns, nbytes))
        self._window_bytes += nbytes
        cutoff = time_ns - self.retention_ns
        while window and window[0][0] <= cutoff:
            self._window_bytes -= window.popleft()[1]

    def window_bytes(self, window_ns: int) -> int:
        """Bytes observed in the trailing ``(last - window, last]``.

        ``window_ns`` wider than the full observation span answers from
        the cumulative total; wider than :attr:`retention_ns` (but
        narrower than the span) cannot be answered exactly — raise
        rather than silently undercount.
        """
        if window_ns <= 0 or self.last_ns is None:
            return 0
        cutoff = self.last_ns - window_ns
        if self.first_ns is not None and cutoff < self.first_ns:
            return self.total_bytes
        if window_ns > self.retention_ns:
            raise ValueError(
                f"window {window_ns}ns exceeds retention "
                f"{self.retention_ns}ns"
            )
        # The deque holds at most retention_ns of samples, already
        # trimmed; sum the tail newer than the cutoff.
        return sum(nb for t, nb in self._window if t > cutoff)

    def rate_bps(self, window_ns: Optional[int] = None) -> float:
        """Average rate over the trailing ``window_ns``, or over the
        first..last observation span when no window is given."""
        if window_ns is None:
            if self.first_ns is None or self.last_ns is None:
                return 0.0
            span = self.last_ns - self.first_ns
            if span <= 0:
                return 0.0
            return self.total_bytes * 8 * 1e9 / span
        if window_ns <= 0:
            return 0.0
        return self.window_bytes(window_ns) * 8 * 1e9 / window_ns
