"""Stardust (NSDI 2019) reproduction library.

Subpackages:

* :mod:`repro.sim` — discrete-event simulation substrate.
* :mod:`repro.net` — packets, flows, addressing.
* :mod:`repro.core` — the Stardust architecture (Fabric Adapters,
  Fabric Elements, cells, credits, spraying, reachability).
* :mod:`repro.fabrics` — pluggable fabric backends: the
  :class:`FabricNetwork` contract, the ``@fabric`` registry, and the
  shared topology wiring plan.
* :mod:`repro.topology` — fat-tree construction and the Appendix A
  scaling mathematics.
* :mod:`repro.baselines` — Ethernet "push" fabric with ECMP.
* :mod:`repro.transport` — TCP NewReno, DCTCP, DCQCN, MPTCP host models.
* :mod:`repro.workloads` — permutation, incast and trace-shaped traffic.
* :mod:`repro.pipeline` — device-level throughput models (Figs 3 and 8).
* :mod:`repro.analysis` — queueing, cost, power, area and resilience
  models (Figs 9-11, appendices).
"""

__version__ = "1.0.0"

from repro.core import (
    OneTierSpec,
    StardustConfig,
    StardustNetwork,
    ThreeTierSpec,
    TwoTierSpec,
)
from repro.net import Flow, Packet, PortAddress
from repro.sim import Simulator

__all__ = [
    "__version__",
    "StardustConfig",
    "StardustNetwork",
    "OneTierSpec",
    "TwoTierSpec",
    "ThreeTierSpec",
    "Packet",
    "Flow",
    "PortAddress",
    "Simulator",
]
