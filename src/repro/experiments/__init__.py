"""Declarative experiments: scenario specs, a registry, and a runner.

This package is the front door for running evaluations at scale.  A
:class:`~repro.experiments.spec.ScenarioSpec` declares *what* to run
(topology, fabric kind, transport, workload, seed, measurement window,
config overrides) as a JSON-serializable value; the
:mod:`~repro.experiments.registry` names parameterized families of
specs; the :mod:`~repro.experiments.runner` executes spec matrices with
``multiprocessing`` fan-out; the :mod:`~repro.experiments.store` caches
results by spec content hash so repeated sweeps only pay for new cells.

Quickstart::

    from repro.experiments import build_scenario, run_spec

    spec = build_scenario("permutation", kind="stardust", seed=7)
    result = run_spec(spec)
    print(result.flow_rates_gbps)

or from the command line::

    python -m repro.experiments run permutation \
        --kinds stardust,dctcp --seeds 3 --shards 4
"""

from repro.experiments.builders import build_network, push_network, stardust_network
from repro.experiments.registry import (
    UnknownScenarioError,
    build_scenario,
    get_scenario,
    scenario,
    scenario_names,
)
from repro.experiments.runner import RunResult, run_matrix, run_spec
from repro.experiments.spec import (
    KIND_PRESETS,
    ScenarioSpec,
    TopologySpec,
    resolve_kind,
)
from repro.experiments.store import ResultStore
from repro.experiments.summarize import Summary, aggregate, summarize

__all__ = [
    "KIND_PRESETS",
    "ResultStore",
    "RunResult",
    "ScenarioSpec",
    "Summary",
    "TopologySpec",
    "UnknownScenarioError",
    "aggregate",
    "build_network",
    "build_scenario",
    "get_scenario",
    "push_network",
    "resolve_kind",
    "run_matrix",
    "run_spec",
    "scenario",
    "scenario_names",
    "stardust_network",
    "summarize",
]
