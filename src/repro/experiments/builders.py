"""Materialize networks from declarative specs.

The two helper constructors (:func:`stardust_network`,
:func:`push_network`) are the single place fabric construction happens
for experiments; ``benchmarks/harness.py`` delegates here so the
benchmark suite and the experiment runner build byte-identical fabrics.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.ethernet import EthConfig
from repro.baselines.push_fabric import PushFabricNetwork
from repro.core.config import StardustConfig
from repro.core.network import StardustNetwork
from repro.experiments.spec import ScenarioSpec
from repro.sim.units import gbps


def stardust_network(
    topology,
    rate: int = gbps(10),
    cell_bytes: int = 512,
    cell_header_bytes: int = 16,
    **overrides,
) -> StardustNetwork:
    """A Stardust fabric at benchmark scale.

    512B cells / 4KB credits follow the paper's own htsim shortcut
    ("intended to reduce simulation time", Appendix G).
    """
    kwargs = dict(
        fabric_link_rate_bps=rate,
        host_link_rate_bps=rate,
        cell_size_bytes=cell_bytes,
        cell_header_bytes=cell_header_bytes,
    )
    kwargs.update(overrides)  # explicit overrides win, even for cells
    return StardustNetwork(topology, config=StardustConfig(**kwargs))


def push_network(
    topology, rate: int = gbps(10), **eth_overrides
) -> PushFabricNetwork:
    """The Ethernet ECMP fabric on the same topology."""
    config = EthConfig(**eth_overrides) if eth_overrides else EthConfig()
    return PushFabricNetwork(
        topology, config=config,
        fabric_link_rate_bps=rate, host_link_rate_bps=rate,
    )


def build_network(spec: ScenarioSpec, topology: Optional[object] = None):
    """Build the network a :class:`ScenarioSpec` declares.

    ``topology`` lets callers reuse an already-materialized topology
    dataclass; by default it is built from ``spec.topology``.
    """
    topo = topology if topology is not None else spec.topology.build()
    if spec.fabric == "stardust":
        return stardust_network(
            topo, rate=spec.link_rate_bps, **spec.config_overrides
        )
    return push_network(topo, rate=spec.link_rate_bps, **spec.config_overrides)
