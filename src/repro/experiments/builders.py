"""Materialize networks from declarative specs.

:func:`build_network` resolves the spec's fabric through the
:mod:`repro.fabrics.registry` — an unknown fabric name fails with the
registry's known-names error, and a third fabric registered with
``@fabric("name")`` is immediately buildable from specs without any
change here.  ``benchmarks/harness.py`` delegates here so the benchmark
suite and the experiment runner build byte-identical fabrics.

The two helper constructors (:func:`stardust_network`,
:func:`push_network`) are thin deprecation shims over the fabric
classes' own :meth:`~repro.fabrics.base.FabricNetwork.for_experiment`
constructors.
"""

from __future__ import annotations

from typing import Optional

from repro.fabrics.registry import get_fabric
from repro.sim.kernel import build_simulator
from repro.sim.units import gbps


def stardust_network(
    topology,
    rate: int = gbps(10),
    cell_bytes: int = 512,
    cell_header_bytes: int = 16,
    **overrides,
):
    """Deprecated shim for ``StardustNetwork.for_experiment``."""
    return get_fabric("stardust").cls.for_experiment(
        topology, rate=rate, cell_bytes=cell_bytes,
        cell_header_bytes=cell_header_bytes, **overrides,
    )


def push_network(topology, rate: int = gbps(10), **eth_overrides):
    """Deprecated shim for ``PushFabricNetwork.for_experiment``."""
    return get_fabric("push").cls.for_experiment(
        topology, rate=rate, **eth_overrides
    )


def build_network(spec, topology: Optional[object] = None):
    """Build the network a :class:`ScenarioSpec` declares.

    ``topology`` lets callers reuse an already-materialized topology
    dataclass; by default it is built from ``spec.topology``.  The
    engine core comes from the kernel registry (``spec.kernel``; the
    default is the reference ``wheel`` kernel) — every registered
    kernel is bit-identical, so this changes how fast the run executes,
    never what it computes.
    """
    topo = topology if topology is not None else spec.topology.build()
    sim = build_simulator(getattr(spec, "kernel", None))
    return get_fabric(spec.fabric).cls.for_experiment(
        topo, rate=spec.link_rate_bps, sim=sim, **spec.config_overrides
    )
