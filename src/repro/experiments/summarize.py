"""Aggregate run results across seeds.

One sweep produces a :class:`~repro.experiments.runner.RunResult` per
(scenario, fabric, transport, seed) cell; :func:`aggregate` folds the
seed axis away into per-configuration :class:`Summary` rows (mean and
percentiles of per-flow rates and FCTs), and :func:`format_table`
renders them for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import RunResult
from repro.sim.stats import percentile


@dataclass
class Summary:
    """Distribution summary of one metric across pooled samples."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> Optional["Summary"]:
        """Summarize ``values`` (None when empty)."""
        if not values:
            return None
        vals = [float(v) for v in values]
        return cls(
            count=len(vals),
            mean=sum(vals) / len(vals),
            p50=percentile(vals, 50),
            p90=percentile(vals, 90),
            p99=percentile(vals, 99),
            minimum=min(vals),
            maximum=max(vals),
        )


@dataclass
class GroupSummary:
    """All seeds of one (scenario, fabric, transport) configuration."""

    scenario: str
    fabric: str
    transport: str
    seeds: List[int]
    rates_gbps: Optional[Summary]
    fcts_ns: Optional[Summary]
    drops: int
    delivered_bytes: int

    @property
    def label(self) -> str:
        """Compact configuration label for tables."""
        if self.fabric == "stardust" and self.transport == "tcp":
            return "stardust"
        if self.transport == "none":
            return self.fabric
        return f"{self.fabric}+{self.transport}"


def summarize(values: Sequence[float]) -> Optional[Summary]:
    """Convenience alias for :meth:`Summary.of`."""
    return Summary.of(values)


def aggregate(results: Sequence[RunResult]) -> List[GroupSummary]:
    """Fold the seed axis: one row per (scenario, fabric, transport).

    Per-flow rates and FCTs are pooled across seeds before taking
    percentiles, which weighs every flow equally (the paper's Fig 10
    plots do the same).
    """
    groups: Dict[Tuple[str, str, str], List[RunResult]] = {}
    for result in results:
        key = (result.scenario, result.fabric, result.transport)
        groups.setdefault(key, []).append(result)
    rows = []
    for (scenario, fabric, transport), members in sorted(groups.items()):
        rates = [r for m in members for r in m.flow_rates_gbps]
        fcts = [f for m in members for f in m.fcts_ns]
        rows.append(
            GroupSummary(
                scenario=scenario,
                fabric=fabric,
                transport=transport,
                seeds=sorted(m.seed for m in members),
                rates_gbps=Summary.of(rates),
                fcts_ns=Summary.of(fcts),
                drops=sum(m.drops for m in members),
                delivered_bytes=sum(m.delivered_bytes for m in members),
            )
        )
    return rows


def format_resilience(results: Sequence[RunResult]) -> str:
    """One line per faulted run: measured recovery next to Appendix E.

    Empty string when no result carries a resilience section, so
    unfaulted sweeps print exactly what they always printed.
    """
    lines = []
    for r in results:
        m = r.metrics
        if "faults_injected" not in m:
            continue
        recovery = m.get("measured_recovery_ns", 0)
        parts = [
            f"{r.fabric}+{r.transport} s{r.seed}:",
            f"faults={m['faults_injected']}",
            "recovery="
            + ("none-within-run" if recovery < 0 else f"{recovery / 1e3:.0f}us"),
        ]
        if "protocol_detect_ns" in m:
            parts.append(f"detect={m['protocol_detect_ns'] / 1e3:.0f}us")
        if "analytical_recovery_ns" in m:
            parts.append(
                f"analytical={m['analytical_recovery_ns'] / 1e3:.0f}us"
            )
        parts.append(
            f"dip={m.get('dip_depth', 0):.0%}"
            f"/{m.get('dip_duration_ns', 0) / 1e3:.0f}us"
        )
        parts.append(f"lost_in_transit={m.get('frames_lost_in_transit', 0)}")
        if m.get("blackholed_flows"):
            parts.append(f"blackholed_flows={m['blackholed_flows']}")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def format_table(rows: Sequence[GroupSummary]) -> str:
    """Render group summaries as an aligned text table."""
    lines = [
        f"{'configuration':<18} {'seeds':>5} {'mean Gbps':>10} "
        f"{'p50 Gbps':>9} {'p99 FCT ms':>11} {'drops':>8}"
    ]
    for row in rows:
        rate_mean = f"{row.rates_gbps.mean:.2f}" if row.rates_gbps else "-"
        rate_p50 = f"{row.rates_gbps.p50:.2f}" if row.rates_gbps else "-"
        fct_p99 = f"{row.fcts_ns.p99 / 1e6:.2f}" if row.fcts_ns else "-"
        lines.append(
            f"{row.label:<18} {len(row.seeds):>5} {rate_mean:>10} "
            f"{rate_p50:>9} {fct_p99:>11} {row.drops:>8}"
        )
    return "\n".join(lines)
