"""Execute scenario specs — in-process or fanned out across shards.

:func:`run_spec` executes one :class:`~repro.experiments.spec.ScenarioSpec`
hermetically (fresh simulator, fresh flow-id space) and returns a typed
:class:`RunResult`.  :func:`run_matrix` executes a list of specs,
serving completed cells from a :class:`~repro.experiments.store.ResultStore`
and fanning the misses out over ``multiprocessing`` shards (with an
in-process fallback, used automatically when ``shards <= 1`` or the
platform cannot fork/spawn workers).

Because every run is hermetic, the same spec produces bit-identical
results in-process, in a worker process, and across repeated sweeps —
which is what makes the content-hash cache sound.

Fabric accounting comes from the unified
:meth:`~repro.fabrics.base.FabricNetwork.collect_metrics` surface —
the executors never sniff which fabric they were handed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.builders import build_network
from repro.experiments.spec import ScenarioSpec
from repro.net.flow import Flow, reset_flow_ids
from repro.transport.dcqcn import DcqcnNotificationPoint, DcqcnSender
from repro.transport.dctcp import DctcpSender
from repro.transport.host import make_hosts
from repro.workloads.distributions import (
    flow_size_distribution,
    packet_size_distribution,
)
from repro.workloads.generator import UniformRandomTraffic
from repro.workloads.incast import run_incast
from repro.workloads.permutation import host_permutation, start_permutation_flows


@dataclass
class RunResult:
    """Typed outcome of one scenario run (JSON round-trippable)."""

    spec_hash: str
    scenario: str
    fabric: str
    transport: str
    seed: int
    #: Sorted per-flow goodput over the measurement window (throughput
    #: scenarios; empty otherwise).
    flow_rates_gbps: List[float] = field(default_factory=list)
    #: Sorted completion times of finished flows (FCT scenarios).
    fcts_ns: List[int] = field(default_factory=list)
    delivered_bytes: int = 0
    drops: int = 0
    sim_time_ns: int = 0
    #: Workload-specific extras (fairness spread, queue depths, ...).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Engine events the run fired — deterministic per spec; feeds the
    #: live-progress events/s readout (wall time stays out of results).
    events_fired: int = 0
    #: Telemetry artifact (see :mod:`repro.telemetry`); ``None`` — and
    #: omitted from :meth:`to_dict` — on uninstrumented runs, so stored
    #: cells keep their historical shape.
    telemetry: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for the store and the CLI."""
        from dataclasses import asdict

        data = asdict(self)
        if data.get("telemetry") is None:
            del data["telemetry"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are dropped rather than raised on: cells written
        by a newer writer (extra result fields) must stay readable, not
        take the whole store down with a ``TypeError``.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def mean_rate_gbps(self) -> float:
        """Mean of the per-flow rates (0 if none)."""
        if not self.flow_rates_gbps:
            return 0.0
        return sum(self.flow_rates_gbps) / len(self.flow_rates_gbps)


# ----------------------------------------------------------------------
# Transport dispatch
# ----------------------------------------------------------------------


def _sender_kwargs(spec: ScenarioSpec) -> Dict[str, Any]:
    """start_flow keyword arguments for the spec's transport."""
    kwargs: Dict[str, Any] = dict(mss=spec.mss)
    if spec.transport == "dctcp":
        kwargs["sender_cls"] = DctcpSender
    elif spec.transport == "dcqcn":
        kwargs["sender_cls"] = DcqcnSender
        kwargs["line_rate_bps"] = spec.link_rate_bps
    return kwargs


def _start_single_flow(hosts, flow: Flow, spec: ScenarioSpec) -> None:
    """Start one flow under the spec's transport (incl. mptcp/dcqcn)."""
    host = hosts[flow.src]
    if spec.transport == "mptcp":
        from repro.transport.mptcp import MptcpConnection

        subflows = spec.workload.get("mptcp_subflows", 8)
        conn = MptcpConnection(host, flow, n_subflows=subflows, mss=spec.mss)
        if flow.start_ns:
            host.sim.schedule(flow.start_ns, conn.start)
        else:
            conn.start()
        return
    kwargs = _sender_kwargs(spec)
    if spec.transport == "dcqcn":
        receiver = hosts[flow.dst]
        receiver.install_receiver(
            DcqcnNotificationPoint(receiver, flow.flow_id)
        )
    host.start_flow(flow, start_delay_ns=flow.start_ns, **kwargs)


# ----------------------------------------------------------------------
# Workload executors
# ----------------------------------------------------------------------


def _run_permutation(spec: ScenarioSpec, net) -> RunResult:
    """One permutation-throughput run (the Fig 10(a) shape).

    Mirrors the historical ``benchmarks/harness.py`` implementation
    step for step, so identical seeds give identical per-flow rates.
    """
    wl_addrs = spec.workload.get("addrs")
    if wl_addrs is not None:
        from repro.net.addressing import PortAddress

        addrs = [PortAddress(fa, port) for fa, port in wl_addrs]
    else:
        addrs = spec.topology.addresses()
    mapping = host_permutation(addrs, random.Random(spec.seed))
    hosts, tracker = make_hosts(net, addrs)

    kwargs = _sender_kwargs(spec)
    if spec.transport == "mptcp":
        flows = start_permutation_flows(
            hosts, mapping,
            mptcp_subflows=spec.workload.get("mptcp_subflows", 8),
            mss=spec.mss,
        )
    elif spec.transport == "dcqcn":
        flows = start_permutation_flows(
            hosts, mapping,
            receiver_factory=lambda host, flow: DcqcnNotificationPoint(
                host, flow.flow_id
            ),
            **kwargs,
        )
    else:
        flows = start_permutation_flows(hosts, mapping, **kwargs)

    net.run(spec.warmup_ns)
    marks = {
        f.flow_id: tracker.get(f.flow_id).bytes_delivered for f in flows
    }
    net.run(spec.measure_ns)
    window_s = spec.measure_ns / 1e9
    rates = sorted(
        (tracker.get(f.flow_id).bytes_delivered - marks[f.flow_id])
        * 8 / window_s / 1e9
        for f in flows
    )
    delivered = sum(
        tracker.get(f.flow_id).bytes_delivered - marks[f.flow_id]
        for f in flows
    )
    fabric_metrics = net.collect_metrics()
    metrics = {
        "mean_gbps": sum(rates) / len(rates),
        "min_gbps": rates[0],
        "max_gbps": rates[-1],
        **fabric_metrics.queue_summary(),
        **fabric_metrics.resilience_summary(),
    }
    return RunResult(
        spec_hash=spec.content_hash(),
        scenario=spec.scenario,
        fabric=spec.fabric,
        transport=spec.transport,
        seed=spec.seed,
        flow_rates_gbps=rates,
        delivered_bytes=delivered,
        drops=fabric_metrics.total_drops,
        sim_time_ns=net.sim.now,
        metrics=metrics,
    )


def _run_incast(spec: ScenarioSpec, net) -> RunResult:
    """One incast round (the Fig 10(c) shape)."""
    if spec.transport == "mptcp":
        raise ValueError("mptcp is not supported for the incast workload")
    addrs = spec.topology.addresses()
    n_backends = spec.workload.get("n_backends", len(addrs) - 1)
    if n_backends >= len(addrs):
        raise ValueError(
            f"{n_backends} backends need {n_backends + 1} hosts, "
            f"topology has {len(addrs)}"
        )
    frontend, backends = addrs[0], addrs[1 : 1 + n_backends]
    hosts, tracker = make_hosts(net, addrs)
    receiver_factory = None
    if spec.transport == "dcqcn":
        def receiver_factory(host, flow):
            return DcqcnNotificationPoint(host, flow.flow_id)
    # run_incast asks for drops once, at end of run; snapshot the full
    # metrics there so the histogram merge happens exactly once.
    snapshot = {}

    def _total_drops() -> int:
        snapshot["end"] = net.collect_metrics()
        return snapshot["end"].total_drops

    result = run_incast(
        net, hosts, tracker, frontend, backends,
        response_bytes=spec.workload.get("response_bytes", 200_000),
        timeout_ns=spec.measure_ns,
        fabric_drops_fn=_total_drops,
        receiver_factory=receiver_factory,
        **_sender_kwargs(spec),
    )
    fcts = sorted(tracker.fcts_ns())
    metrics = {
        "first_fct_ns": result.first_fct_ns,
        "last_fct_ns": result.last_fct_ns,
        "fairness_spread": result.fairness_spread,
        "completed": result.completed,
        "all_completed": result.all_completed,
        **snapshot["end"].queue_summary(),
        **snapshot["end"].resilience_summary(),
    }
    return RunResult(
        spec_hash=spec.content_hash(),
        scenario=spec.scenario,
        fabric=spec.fabric,
        transport=spec.transport,
        seed=spec.seed,
        fcts_ns=fcts,
        delivered_bytes=sum(s.bytes_delivered for s in tracker.all()),
        drops=result.fabric_drops,
        sim_time_ns=net.sim.now,
        metrics=metrics,
    )


def _run_many_to_many(spec: ScenarioSpec, net) -> RunResult:
    """Every host sends one sized flow to every host on another FA."""
    addrs = spec.topology.addresses()
    hosts, tracker = make_hosts(net, addrs)
    rng = random.Random(spec.seed)
    flow_bytes = spec.workload.get("flow_bytes", 200 * 1024)
    jitter_ns = spec.workload.get("start_jitter_ns", 10_000)
    flows: List[Flow] = []
    for src in addrs:
        for dst in addrs:
            if src.fa == dst.fa:
                continue
            flow = Flow(
                src=src, dst=dst, size_bytes=flow_bytes,
                start_ns=rng.randrange(jitter_ns) if jitter_ns else 0,
            )
            _start_single_flow(hosts, flow, spec)
            flows.append(flow)
    net.run(spec.measure_ns)
    fabric_metrics = net.collect_metrics()
    fcts = sorted(tracker.fcts_ns())
    metrics = {
        "offered_flows": len(flows),
        "completed": len(fcts),
        **fabric_metrics.queue_summary(),
        **fabric_metrics.resilience_summary(),
    }
    return RunResult(
        spec_hash=spec.content_hash(),
        scenario=spec.scenario,
        fabric=spec.fabric,
        transport=spec.transport,
        seed=spec.seed,
        fcts_ns=fcts,
        delivered_bytes=sum(s.bytes_delivered for s in tracker.all()),
        drops=fabric_metrics.total_drops,
        sim_time_ns=net.sim.now,
        metrics=metrics,
    )


def _run_uniform_random(spec: ScenarioSpec, net) -> RunResult:
    """Open-loop Poisson injectors at a target utilization (Fig 9)."""
    addrs = spec.topology.addresses()
    workload = spec.workload
    size_dist = None
    if workload.get("packet_mix"):
        size_dist = packet_size_distribution(workload["packet_mix"])
    traffic = UniformRandomTraffic(
        net, addrs,
        utilization=workload.get("utilization", 0.7),
        packet_bytes=workload.get("packet_bytes", 1000),
        size_dist=size_dist,
        seed=spec.seed,
    )
    traffic.start()
    net.run(spec.warmup_ns)
    sent0, recv0 = traffic.total_sent(), traffic.total_received()
    bytes0 = sum(i.bytes_received for i in traffic.injectors)
    net.run(spec.measure_ns)
    traffic.stop()
    sent = traffic.total_sent() - sent0
    received = traffic.total_received() - recv0
    delivered = sum(i.bytes_received for i in traffic.injectors) - bytes0
    fabric_metrics = net.collect_metrics()
    metrics = {
        "packets_sent": sent,
        "packets_received": received,
        "delivery_ratio": received / sent if sent else 0.0,
        **fabric_metrics.queue_summary(),
        **fabric_metrics.resilience_summary(),
    }
    return RunResult(
        spec_hash=spec.content_hash(),
        scenario=spec.scenario,
        fabric=spec.fabric,
        transport=spec.transport,
        seed=spec.seed,
        delivered_bytes=delivered,
        drops=fabric_metrics.total_drops,
        sim_time_ns=net.sim.now,
        metrics=metrics,
    )


def _run_mixed(spec: ScenarioSpec, net) -> RunResult:
    """Poisson arrivals of web + storage flows; FCT percentiles."""
    addrs = spec.topology.addresses()
    hosts, tracker = make_hosts(net, addrs)
    workload = spec.workload
    rng = random.Random(spec.seed)
    web = flow_size_distribution("web")
    storage = flow_size_distribution(
        workload.get("storage_workload", "hadoop")
    )
    web_fraction = workload.get("web_fraction", 0.7)
    load = workload.get("load", 0.4)
    cap = workload.get("max_flows_per_host", 200)
    horizon_ns = spec.warmup_ns + spec.measure_ns
    mean_size = (
        web_fraction * web.mean() + (1 - web_fraction) * storage.mean()
    )
    bytes_per_ns = spec.link_rate_bps * load / 8 / 1e9
    flows_per_ns = bytes_per_ns / mean_size

    flows: List[Flow] = []
    truncated = 0
    for src in addrs:
        others = [a for a in addrs if a.fa != src.fa]
        t = 0.0
        count = 0
        while True:
            t += rng.expovariate(flows_per_ns)
            if t >= horizon_ns:
                break
            if count >= cap:
                truncated += 1
                break
            dist = web if rng.random() < web_fraction else storage
            flow = Flow(
                src=src,
                dst=rng.choice(others),
                size_bytes=max(1, dist.sample_int(rng)),
                start_ns=int(t),
            )
            _start_single_flow(hosts, flow, spec)
            flows.append(flow)
            count += 1
    net.run(horizon_ns)
    fabric_metrics = net.collect_metrics()
    fcts = sorted(tracker.fcts_ns())
    metrics = {
        "offered_flows": len(flows),
        "completed": len(fcts),
        "hosts_truncated": truncated,
        **fabric_metrics.queue_summary(),
        **fabric_metrics.resilience_summary(),
    }
    # FCT split by size class — the paper's short-vs-long flow story.
    small = sorted(
        s.fct_ns for s in tracker.completed()
        if s.fct_ns is not None and (s.flow.size_bytes or 0) <= 10_000
    )
    if small:
        metrics["small_flow_median_fct_ns"] = small[len(small) // 2]
    return RunResult(
        spec_hash=spec.content_hash(),
        scenario=spec.scenario,
        fabric=spec.fabric,
        transport=spec.transport,
        seed=spec.seed,
        fcts_ns=fcts,
        delivered_bytes=sum(s.bytes_delivered for s in tracker.all()),
        drops=fabric_metrics.total_drops,
        sim_time_ns=net.sim.now,
        metrics=metrics,
    )


_EXECUTORS = {
    "permutation": _run_permutation,
    "incast": _run_incast,
    "many_to_many": _run_many_to_many,
    "uniform_random": _run_uniform_random,
    "mixed": _run_mixed,
}


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def run_spec_with_network(spec: ScenarioSpec, hermetic: bool = True):
    """Execute one spec; returns ``(result, network)``.

    The network is handed back *after* the run so callers that need more
    than the :class:`RunResult` — the perf harness hashes latency
    histograms and reads ``net.sim.events_fired`` for its golden-trace
    digests — can take their measurements without re-running anything.
    """
    kind = spec.workload["kind"]
    try:
        executor = _EXECUTORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {kind!r}; "
            f"known: {sorted(_EXECUTORS)}"
        ) from None
    if hermetic:
        reset_flow_ids()
    net = build_network(spec)
    if spec.faults:
        # Compile the declarative fault schedule into engine events
        # before the workload starts; unfaulted specs skip this import
        # entirely (the fault machinery is zero-cost when unused).
        from repro.faults.injector import attach_plan
        from repro.faults.plan import FaultPlan

        attach_plan(FaultPlan.from_dict(spec.faults), net)
    collector = None
    if spec.telemetry is not None:
        # Arm the probes before hosts attach so flow spans are caught
        # from the first packet; uninstrumented specs never import the
        # telemetry machinery (zero-cost when unused, like faults).
        from repro.telemetry.collector import attach_collector
        from repro.telemetry.probes import TelemetryConfig

        collector = attach_collector(
            net, TelemetryConfig.from_dict(spec.telemetry)
        )
    result = executor(spec, net)
    result.events_fired = net.sim.events_fired
    if collector is not None:
        result.telemetry = collector.finalize()
    return result, net


def run_spec(spec: ScenarioSpec, hermetic: bool = True) -> RunResult:
    """Execute one spec and return its result.

    ``hermetic`` (the default) resets the global flow-id space first so
    the result is independent of whatever ran earlier in this process —
    required for the content-hash cache and cross-process determinism.
    """
    return run_spec_with_network(spec, hermetic=hermetic)[0]


def _worker_run(payload: str) -> Dict[str, Any]:
    """Shard entry point: JSON spec in, result dict out (picklable)."""
    spec = ScenarioSpec.from_json(payload)
    return run_spec(spec).to_dict()


def _worker_run_indexed(item) -> tuple:
    """Shard entry point for live sweeps: keeps the input index (the
    pool returns completions out of order) and measures the cell's own
    wall time so the parent can report events/s per shard."""
    index, payload = item
    start = time.perf_counter()
    result = _worker_run(payload)
    return index, result, time.perf_counter() - start


def _progress_line(
    result: RunResult, done: int, total: int, wall_s: float,
    started_at: float,
) -> str:
    """One live-progress line: cell finished, shard throughput, ETA."""
    elapsed = time.perf_counter() - started_at
    eta_s = elapsed / done * (total - done) if done else 0.0
    eps = result.events_fired / wall_s if wall_s > 0 else 0.0
    sim_ms_per_s = (
        result.sim_time_ns / 1e6 / wall_s if wall_s > 0 else 0.0
    )
    return (
        f"[{done}/{total}] {result.scenario} "
        f"{result.fabric}/{result.transport} seed={result.seed}: "
        f"{wall_s:.1f}s, {eps / 1e3:.0f}k events/s, "
        f"{sim_ms_per_s:.2f} sim-ms/s, eta {eta_s:.0f}s"
    )


def run_matrix(
    specs: Sequence[ScenarioSpec],
    shards: int = 1,
    store=None,
    progress=None,
    live: bool = False,
) -> List[RunResult]:
    """Execute a spec matrix, one result per spec, input order preserved.

    Cells whose hash is already in ``store`` are served from cache; the
    misses run across ``shards`` worker processes (in-process when
    ``shards <= 1``, a single spec remains, or multiprocessing is
    unavailable).  Fresh results are persisted back to the store.

    ``live=True`` reports each cell as it completes through
    ``progress`` — cells done, per-cell wall time, events/s, sim-time
    rate and a remaining-time estimate — instead of staying silent
    until the whole matrix returns.
    """
    notify = progress or (lambda _msg: None)
    results: List[Optional[RunResult]] = [None] * len(specs)
    pending: List[int] = []
    rerun_uninstrumented = 0
    for i, spec in enumerate(specs):
        cached = store.get(spec) if store is not None else None
        if cached is not None and (
            spec.telemetry is None or cached.telemetry is not None
        ):
            results[i] = cached
        else:
            if cached is not None:
                # The cell hash ignores the (hash-neutral) telemetry
                # config, so an uninstrumented run can satisfy an
                # instrumented request.  Serving it would silently drop
                # the instrumentation the caller asked for — re-run.
                rerun_uninstrumented += 1
                store.misses += 1
                store.hits -= 1
            pending.append(i)
    if rerun_uninstrumented:
        notify(
            f"{rerun_uninstrumented} cached cells lack requested "
            "telemetry; re-running instrumented"
        )
    if store is not None and len(pending) < len(specs):
        notify(
            f"{len(specs) - len(pending)}/{len(specs)} cells from cache"
        )

    fresh: List[RunResult] = []
    if pending:
        payloads = [specs[i].to_json() for i in pending]
        fresh = _execute(payloads, shards, notify, live=live)
        for i, result in zip(pending, fresh):
            results[i] = result
            if store is not None:
                store.put(specs[i], result)
    if store is not None:
        # Record stores buffer puts into compressed blocks; make every
        # fresh cell durable before handing results back.
        flush = getattr(store, "flush", None)
        if flush is not None:
            flush()
    return [r for r in results if r is not None]


def _execute(
    payloads: List[str], shards: int, notify, live: bool = False
) -> List[RunResult]:
    """Run serialized specs, fanning out when it can help."""
    total = len(payloads)
    started_at = time.perf_counter()
    if shards > 1 and total > 1:
        try:
            import multiprocessing

            workers = min(shards, total)
            notify(f"running {total} cells on {workers} shards")
            results: List[Optional[RunResult]] = [None] * total
            done = 0
            with multiprocessing.Pool(processes=workers) as pool:
                for index, data, wall_s in pool.imap_unordered(
                    _worker_run_indexed, list(enumerate(payloads))
                ):
                    results[index] = RunResult.from_dict(data)
                    done += 1
                    if live:
                        notify(_progress_line(
                            results[index], done, total, wall_s,
                            started_at,
                        ))
            return [r for r in results if r is not None]
        except (ImportError, OSError) as exc:
            notify(f"multiprocessing unavailable ({exc}); running inline")
    inline: List[RunResult] = []
    for index, payload in enumerate(payloads):
        cell_start = time.perf_counter()
        result = RunResult.from_dict(_worker_run(payload))
        inline.append(result)
        if live:
            notify(_progress_line(
                result, index + 1, total,
                time.perf_counter() - cell_start, started_at,
            ))
    return inline
