"""Command-line front end: ``python -m repro.experiments``.

Examples::

    python -m repro.experiments list
    python -m repro.experiments show permutation --kind dctcp
    python -m repro.experiments run permutation \
        --kinds stardust,dctcp --seeds 3 --shards 4
    python -m repro.experiments run incast --kinds stardust,tcp \
        --set n_backends=8 --set response_bytes=100000
    python -m repro.experiments run permutation_link_failure \
        --fabric stardust
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List

from repro.experiments.registry import (
    UnknownScenarioError,
    build_scenario,
    get_scenario,
    scenario_names,
)
from repro.fabrics.registry import UnknownFabricError, fabric_names, get_fabric
from repro.experiments.runner import run_matrix
from repro.experiments.spec import ScenarioSpec, kind_for_fabric
from repro.experiments.store import open_store
from repro.experiments.summarize import (
    aggregate,
    format_resilience,
    format_table,
)
from repro.store.format import StoreFormatError


def _parse_value(text: str) -> Any:
    """Interpret a --set value: JSON literal if possible, else string."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        params[key.strip()] = _parse_value(value.strip())
    return params


def _build_matrix(args) -> List[ScenarioSpec]:
    params = _parse_params(args.set or [])
    if getattr(args, "fabric", None):
        # --fabric picks registered fabrics directly (plain TCP);
        # aliases resolve through the fabric registry.
        kinds = [
            kind_for_fabric(f.strip())
            for f in args.fabric.split(",")
            if f.strip()
        ]
    else:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    base_params = dict(params)
    base_seed = base_params.pop("seed", None)
    specs = []
    for kind in kinds:
        first = build_scenario(args.scenario, kind=kind, **base_params)
        start = base_seed if base_seed is not None else first.seed
        for offset in range(args.seeds):
            specs.append(first.with_updates(seed=start + offset))
    return specs


def cmd_list(_args) -> int:
    print("scenarios:")
    for name in scenario_names():
        entry = get_scenario(name)
        print(f"  {name:<24} {entry.description}")
    print("\nfabrics:")
    for name in fabric_names():
        entry = get_fabric(name)
        aliases = f" (alias: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"  {name:<24} {entry.description}{aliases}")
    return 0


def cmd_show(args) -> int:
    params = _parse_params(args.set or [])
    spec = build_scenario(args.scenario, kind=args.kind, **params)
    print(spec.to_json(indent=2))
    print(f"# content hash: {spec.content_hash()}", file=sys.stderr)
    return 0


def cmd_run(args) -> int:
    specs = _build_matrix(args)
    if args.kernel:
        specs = [s.with_updates(kernel=args.kernel) for s in specs]
    if args.telemetry:
        from repro.telemetry.probes import TelemetryConfig

        telemetry = TelemetryConfig(
            sample_interval_ns=args.sample_interval_ns
        ).to_dict()
        specs = [s.with_updates(telemetry=telemetry) for s in specs]
    store = None if args.no_cache else open_store(args.store, args.store_format)
    started = time.monotonic()
    results = run_matrix(
        specs, shards=args.shards, store=store, progress=print,
        live=args.progress,
    )
    elapsed = time.monotonic() - started

    if args.telemetry and store is not None:
        sidecar_for = getattr(store, "telemetry_path_for", None)
        if sidecar_for is not None:
            for spec in specs:
                sidecar = sidecar_for(spec)
                if sidecar.exists():
                    print(f"telemetry: {sidecar}")
        else:
            # Record stores embed telemetry in the cell records.
            print(f"telemetry: stored in-record under {store.root}")

    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=1))
        return 0

    print(
        f"\n{len(results)} cells ({len(specs)} requested) "
        f"in {elapsed:.1f}s wall"
        + (
            f"; cache: {store.hits} hits, {store.misses} misses "
            f"-> {store.root}"
            if store is not None
            else ""
        )
    )
    print()
    print(format_table(aggregate(results)))
    resilience = format_resilience(results)
    if resilience:
        print("\nresilience:")
        print(resilience)
    return 0


def cmd_query(args) -> int:
    from repro.store.query import (
        format_trend_diff,
        store_records,
        store_results,
        verify_store,
    )

    root = args.store or _default_store_dir()
    if args.verify:
        stats = verify_store(root)
        if stats["corrupt_blocks"]:
            print(
                f"warning: {stats['corrupt_blocks']} corrupt blocks "
                f"skipped in {root}",
                file=sys.stderr,
            )
    if args.list:
        for record in store_records(
            root, args.selector, processes=args.processes
        ):
            print(record["spec_key"])
        return 0
    if args.diff:
        base = aggregate(
            store_results(root, args.selector, processes=args.processes)
        )
        other = aggregate(
            store_results(
                args.diff, args.selector, processes=args.processes
            )
        )
        print(
            format_trend_diff(
                base, other, base_label="base", other_label="other"
            )
        )
        print(f"\nbase:  {root}\nother: {args.diff}")
        return 0
    results = store_results(root, args.selector, processes=args.processes)
    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=1))
        return 0
    if not results:
        print(f"no cells match {args.selector!r} in {root}")
        return 1
    print(f"{len(results)} cells match {args.selector!r} in {root}\n")
    print(format_table(aggregate(results)))
    resilience = format_resilience(results)
    if resilience:
        print("\nresilience:")
        print(resilience)
    return 0


def _default_store_dir() -> str:
    import os

    from repro.experiments.store import DEFAULT_STORE_DIR, STORE_DIR_ENV

    return os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)


def cmd_migrate(args) -> int:
    from repro.store.migrate import migrate_legacy
    from repro.store.query import verify_store

    report = migrate_legacy(args.src, args.dst, num_shards=args.shards)
    print(report)
    stats = verify_store(args.dst)
    print(
        f"destination: {stats['records']} records in {stats['blocks']} "
        f"blocks, {stats['shard_bytes']} bytes, "
        f"{stats['corrupt_blocks']} corrupt"
    )
    return 0 if stats["corrupt_blocks"] == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Declarative scenario runner for the Stardust repro.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios")

    show = sub.add_parser("show", help="print a scenario's spec as JSON")
    show.add_argument("scenario")
    show.add_argument("--kind", default="stardust")
    show.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override a scenario parameter (repeatable)",
    )

    run = sub.add_parser("run", help="run a scenario matrix")
    run.add_argument("scenario")
    run.add_argument(
        "--kinds", default="stardust",
        help="comma-separated kinds (stardust,tcp,dctcp,mptcp,dcqcn)",
    )
    run.add_argument(
        "--fabric", default=None,
        help="comma-separated fabric names (stardust,push,...); "
             "runs each under plain TCP and overrides --kinds",
    )
    run.add_argument(
        "--seeds", type=int, default=1,
        help="number of consecutive seeds per kind",
    )
    run.add_argument(
        "--shards", type=int, default=1,
        help="worker processes for the sweep",
    )
    run.add_argument(
        "--set", action="append", metavar="KEY=VALUE",
        help="override a scenario parameter (repeatable)",
    )
    run.add_argument(
        "--store", default=None,
        help="result store directory (default .experiment-store "
             "or $REPRO_EXPERIMENT_STORE)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="always run, never read or write the store",
    )
    run.add_argument(
        "--json", action="store_true", help="emit raw results as JSON"
    )
    run.add_argument(
        "--progress", action="store_true",
        help="report each cell as it completes (wall time, events/s, "
             "sim-time rate, ETA)",
    )
    run.add_argument(
        "--telemetry", action="store_true",
        help="instrument every cell (time-series probes + flow spans; "
             "see python -m repro.telemetry export)",
    )
    run.add_argument(
        "--kernel", default=None, metavar="NAME",
        help="engine kernel to run every cell on (hash-neutral: results "
             "and cache cells are byte-identical across kernels)",
    )
    run.add_argument(
        "--sample-interval-ns", type=int, default=10_000,
        help="telemetry sampling cadence (with --telemetry)",
    )
    run.add_argument(
        "--store-format", choices=("auto", "record", "legacy"),
        default="auto",
        help="force the store format (default: auto-detect; fresh "
             "stores get the sharded record format)",
    )

    query = sub.add_parser(
        "query",
        help="aggregate stored sweeps without re-running anything",
    )
    query.add_argument(
        "selector", nargs="?", default="",
        help="spec-key prefix, e.g. scenario=permutation/fabric=*",
    )
    query.add_argument(
        "--store", default=None, help="store directory (either format)"
    )
    query.add_argument(
        "--json", action="store_true", help="emit raw results as JSON"
    )
    query.add_argument(
        "--list", action="store_true",
        help="print matching spec keys instead of aggregating",
    )
    query.add_argument(
        "--diff", metavar="OTHERSTORE", default=None,
        help="trend-diff aggregates against a second store",
    )
    query.add_argument(
        "--processes", type=int, default=0,
        help="decompress blocks on N processes (full-scan path)",
    )
    query.add_argument(
        "--verify", action="store_true",
        help="CRC-verify every block while reading",
    )

    migrate = sub.add_parser(
        "migrate", help="import a legacy store into the record format"
    )
    migrate.add_argument("src", help="legacy one-JSON-per-cell directory")
    migrate.add_argument("dst", help="destination record store")
    migrate.add_argument(
        "--shards", type=int, default=None,
        help="shard count for the destination (default 8)",
    )

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "show": cmd_show,
        "run": cmd_run,
        "query": cmd_query,
        "migrate": cmd_migrate,
    }[args.command]
    try:
        return handler(args)
    except (
        UnknownScenarioError, UnknownFabricError, ValueError, TypeError,
        FileNotFoundError, StoreFormatError,
    ) as exc:
        # Bad scenario names, fabrics, kinds, parameters, config
        # overrides, missing stores and unreadable store formats all
        # surface here as one-line errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
