"""Content-hash keyed result cache.

Each completed cell of a sweep is one JSON file named by the spec's
content hash, holding both the spec (for provenance/debugging) and the
result.  Re-running a sweep therefore only pays for cells whose spec
actually changed — the same trick build systems use, applied to
simulation matrices.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.experiments.runner import RunResult
from repro.experiments.spec import ScenarioSpec

#: Default on-disk location (overridable per-store or via environment).
DEFAULT_STORE_DIR = ".experiment-store"
STORE_DIR_ENV = "REPRO_EXPERIMENT_STORE"


def atomic_write_json(path: os.PathLike, payload, indent: int = 1) -> Path:
    """Write ``payload`` as canonical JSON at ``path``, atomically.

    Writes to a temp file in the destination directory and renames it
    into place, so readers never observe a half-written cell.  Shared by
    the result store and the perf harness (``BENCH_perf.json``, golden
    traces), which all promise crash-consistent output files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, indent=indent)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


class ResultStore:
    """Directory of ``<spec-hash>.json`` result cells."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Remove ``*.tmp`` leftovers from writers killed mid-write.

        ``atomic_write_json`` guarantees no half-written *cell* is ever
        visible, but a kill between mkstemp and rename strands the temp
        file itself; left alone those accumulate forever.
        """
        if not self.root.is_dir():
            return
        for orphan in self.root.glob("*.tmp"):
            try:
                orphan.unlink()
            except OSError:
                pass

    def path_for(self, spec: ScenarioSpec) -> Path:
        """Where this spec's result cell lives (whether or not present)."""
        return self.root / f"{spec.content_hash()}.json"

    def telemetry_path_for(self, spec: ScenarioSpec) -> Path:
        """Where this spec's telemetry JSONL sidecar lives (if any).

        Kept out of the cell JSON so instrumented cells stay small and
        ``python -m repro.telemetry export`` can stream the sidecar
        directly; ``.jsonl`` also keeps it out of :meth:`cells`.
        """
        return self.root / f"{spec.content_hash()}.telemetry.jsonl"

    def has(self, spec: ScenarioSpec) -> bool:
        """Whether a completed cell exists for this exact spec."""
        return self.path_for(spec).exists()

    def get(self, spec: ScenarioSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or None (counts hit/miss)."""
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        result = RunResult.from_dict(data["result"])
        if result.telemetry is None:
            sidecar = self.root / f"{path.stem}.telemetry.jsonl"
            if sidecar.exists():
                from repro.telemetry.export import read_jsonl

                result.telemetry = read_jsonl(sidecar)
        return result

    def put(self, spec: ScenarioSpec, result: RunResult) -> Path:
        """Persist one cell atomically; returns its path.

        An attached telemetry artifact is split out into the JSONL
        sidecar (:meth:`telemetry_path_for`); :meth:`get` reattaches it
        transparently on cache hits.
        """
        data = result.to_dict()
        telemetry = data.pop("telemetry", None)
        path = atomic_write_json(
            self.path_for(spec),
            {"spec": spec.to_dict(), "result": data},
        )
        if telemetry:
            from repro.telemetry.export import write_jsonl

            write_jsonl(self.telemetry_path_for(spec), telemetry)
        else:
            # Telemetry presence is part of the stored value: a put
            # without telemetry must also retire any sidecar a previous
            # instrumented run left, or get() would forever reattach
            # stale samples to fresh results.
            self.telemetry_path_for(spec).unlink(missing_ok=True)
        return path

    def cells(self) -> List[Path]:
        """All stored cell files."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.cells())

    def clear(self) -> int:
        """Delete every cell (and telemetry sidecar); returns how many
        cells were removed."""
        removed = 0
        for path in self.cells():
            path.unlink()
            removed += 1
        if self.root.is_dir():
            for sidecar in self.root.glob("*.telemetry.jsonl"):
                sidecar.unlink()
            for orphan in self.root.glob("*.tmp"):
                orphan.unlink()
        return removed


def open_store(root: Optional[os.PathLike] = None, store_format: str = "auto"):
    """Open ``root`` as whichever store format it holds.

    Compat facade over :func:`repro.store.open_store`: new sweeps land
    on the sharded record format (:class:`repro.store.RecordStore`),
    while directories of legacy ``<hash>.json`` cells keep opening as
    :class:`ResultStore`.  Imported lazily so ``repro.experiments``
    stays importable without the store package and vice versa.
    """
    from repro.store import open_store as _open_store

    return _open_store(root, store_format)
