"""Declarative, JSON-serializable experiment specifications.

A :class:`ScenarioSpec` pins down everything one simulation run needs —
topology shape, fabric kind, transport, workload, seed, warmup/measure
windows and config overrides — as plain data.  Two specs with the same
content always hash to the same value (:meth:`ScenarioSpec.content_hash`),
which is what the result store keys cache cells by, and what makes a
spec a reproducible claim rather than a pile of keyword arguments.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.fabrics.registry import get_fabric, known_fabric_names
from repro.fabrics.wiring import OneTierSpec, ThreeTierSpec, TwoTierSpec
from repro.sim.units import MILLISECOND, gbps

#: Topology kind -> the concrete spec dataclass it materializes into.
TOPOLOGY_KINDS = {
    "one_tier": OneTierSpec,
    "two_tier": TwoTierSpec,
    "three_tier": ThreeTierSpec,
}

#: Shorthand experiment "kind" -> (fabric, transport).  These mirror the
#: historical ``benchmarks/harness.py`` vocabulary: "stardust" is the
#: pull fabric under plain TCP; everything else runs on the pushed
#: Ethernet ECMP fabric under the named transport.
KIND_PRESETS: Dict[str, Tuple[str, str]] = {
    "stardust": ("stardust", "tcp"),
    "tcp": ("push", "tcp"),
    "ethernet": ("push", "tcp"),
    "dctcp": ("push", "dctcp"),
    "mptcp": ("push", "mptcp"),
    "dcqcn": ("push", "dcqcn"),
}

TRANSPORTS = ("tcp", "dctcp", "mptcp", "dcqcn", "none")


def __getattr__(name):
    # Back-compat constant, computed per access so fabrics registered
    # after this module was imported still show up.  The source of
    # truth is the fabric registry, which ScenarioSpec validates
    # against.
    if name == "FABRICS":
        return tuple(known_fabric_names())
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def resolve_kind(kind: str) -> Tuple[str, str]:
    """Translate a harness-style ``kind`` into (fabric, transport)."""
    try:
        return KIND_PRESETS[kind]
    except KeyError:
        raise ValueError(
            f"unknown kind {kind!r}; choose from {sorted(KIND_PRESETS)}"
        ) from None


def kind_for_fabric(fabric_name: str) -> str:
    """The ``kind`` preset that runs ``fabric_name`` under plain TCP.

    Lets callers (the CLI's ``--fabric`` flag) pick a fabric directly;
    aliases resolve through the fabric registry.  Scenario factories
    take a ``kind``, and translating *before* the factory runs keeps
    fabric-conditional config overrides correct.
    """
    canonical = get_fabric(fabric_name).name
    for kind, (fabric, transport) in KIND_PRESETS.items():
        if fabric == canonical and transport == "tcp":
            return kind
    raise ValueError(
        f"no kind preset runs fabric {canonical!r}; "
        f"presets: {sorted(KIND_PRESETS)}"
    )


@dataclass
class TopologySpec:
    """A declarative topology: a kind plus its constructor parameters."""

    kind: str = "two_tier"
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; "
                f"choose from {sorted(TOPOLOGY_KINDS)}"
            )

    @classmethod
    def of(cls, topology) -> "TopologySpec":
        """Wrap a concrete ``OneTierSpec``/``TwoTierSpec``/``ThreeTierSpec``."""
        for kind, spec_cls in TOPOLOGY_KINDS.items():
            if isinstance(topology, spec_cls):
                params = {
                    k: v for k, v in asdict(topology).items() if v is not None
                }
                return cls(kind=kind, params=params)
        raise TypeError(f"unknown topology {type(topology).__name__}")

    def build(self):
        """Materialize the concrete (validated) topology dataclass."""
        return TOPOLOGY_KINDS[self.kind](**self.params)

    def addresses(self):
        """All host port addresses of this topology, in attach order."""
        from repro.net.addressing import PortAddress

        topo = self.build()
        return [
            PortAddress(fa, port)
            for fa in range(topo.num_fas)
            for port in range(topo.hosts_per_fa)
        ]


@dataclass
class ScenarioSpec:
    """Everything one run needs, as JSON-serializable data.

    ``workload`` is a dict with at least a ``"kind"`` key; the runner
    dispatches on it.  ``config_overrides`` are applied on top of the
    fabric's config (:class:`~repro.core.config.StardustConfig` fields
    for the Stardust fabric, :class:`~repro.baselines.ethernet.EthConfig`
    fields for the pushed fabric).
    """

    scenario: str
    topology: TopologySpec
    fabric: str = "stardust"
    transport: str = "tcp"
    workload: Dict[str, Any] = field(default_factory=lambda: {"kind": "permutation"})
    seed: int = 1
    warmup_ns: int = 2 * MILLISECOND
    measure_ns: int = 6 * MILLISECOND
    link_rate_bps: int = gbps(10)
    mss: int = 9000 - 40
    config_overrides: Dict[str, Any] = field(default_factory=dict)
    #: Optional fault schedule (a ``FaultPlan.to_dict()``; see
    #: :mod:`repro.faults`).  ``None`` — the default — serializes to
    #: *nothing*: :meth:`to_dict` omits the key, so every pre-fault
    #: spec hash (and with it the result store and the no-fault golden
    #: traces) is untouched by this field existing.
    faults: Optional[Dict[str, Any]] = None
    #: Optional telemetry configuration (a
    #: :meth:`~repro.telemetry.probes.TelemetryConfig.to_dict`; see
    #: :mod:`repro.telemetry`).  Hash-neutral: ``None`` serializes to
    #: nothing (the ``faults`` trick), and :meth:`content_hash` strips
    #: the field even when set — instrumenting a run never changes its
    #: identity, so golden digests and cache cells are shared between
    #: an instrumented spec and its plain twin.
    telemetry: Optional[Dict[str, Any]] = None
    #: Optional engine kernel name (see :mod:`repro.sim.kernel`).
    #: ``None`` — the default — runs the registry's default kernel.
    #: Hash-neutral exactly like ``telemetry``: every registered kernel
    #: is bit-identical on every golden trace (the kernel-parametrized
    #: golden test enforces it), so which core executes a run never
    #: changes the run's identity — cache cells and golden digests are
    #: shared across kernels.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.topology, dict):
            self.topology = TopologySpec(**self.topology)
        get_fabric(self.fabric)  # UnknownFabricError lists known names
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"choose from {TRANSPORTS}"
            )
        if "kind" not in self.workload:
            raise ValueError("workload needs a 'kind' key")
        if self.warmup_ns < 0 or self.measure_ns <= 0:
            raise ValueError("windows must be positive")
        if self.faults is not None:
            from repro.faults.plan import FaultPlan

            if isinstance(self.faults, FaultPlan):
                self.faults = self.faults.to_dict()
            else:
                FaultPlan.from_dict(self.faults)  # validate eagerly
        if self.telemetry is not None:
            from repro.telemetry.probes import TelemetryConfig

            if isinstance(self.telemetry, TelemetryConfig):
                self.telemetry = self.telemetry.to_dict()
            else:
                TelemetryConfig.from_dict(self.telemetry)  # validate
        if self.kernel is not None:
            from repro.sim.kernel import get_kernel

            get_kernel(self.kernel)  # UnknownKernelError lists known names

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form that round-trips through JSON.

        An unset fault plan is omitted entirely, so unfaulted specs
        keep the exact content hashes they had before fault injection
        existed (the result-store cache and golden traces depend on
        that stability).
        """
        data = asdict(self)
        if data.get("faults") is None:
            del data["faults"]
        if data.get("telemetry") is None:
            del data["telemetry"]
        if data.get("kernel") is None:
            del data["kernel"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(**data)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (sorted keys) for storage and hashing."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def content_hash(self) -> str:
        """Hex digest identifying this exact spec (store cache key).

        The ``telemetry`` field is excluded: instrumentation observes a
        run without defining it (probes ride the event stream and never
        schedule), so an instrumented spec is the *same experiment* —
        same cache cell, same golden digest — as its plain twin.  The
        ``kernel`` field is excluded for the same reason: kernels are
        bit-identical by contract, so which core executes a run does
        not define the experiment either.
        """
        data = self.to_dict()
        data.pop("telemetry", None)
        data.pop("kernel", None)
        payload = json.dumps(data, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:24]

    # ------------------------------------------------------------------
    def with_updates(self, **changes) -> "ScenarioSpec":
        """A copy of this spec with fields replaced."""
        data = self.to_dict()
        data.update(changes)
        return ScenarioSpec.from_dict(data)
