"""Named, parameterized scenario families.

A *scenario* is a factory that turns keyword parameters into a concrete
:class:`~repro.experiments.spec.ScenarioSpec`.  Registering one::

    @scenario("permutation", description="one long flow per host")
    def permutation(kind="stardust", seed=7, **params) -> ScenarioSpec:
        ...

and building one::

    spec = build_scenario("permutation", kind="dctcp", seed=3)

Every factory accepts at least ``kind`` (a
:data:`~repro.experiments.spec.KIND_PRESETS` shorthand selecting fabric
and transport) and ``seed``.  The pre-seeded families below cover the
paper's evaluation workloads plus a mixed web/storage flow mix built on
:mod:`repro.workloads.distributions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.experiments.spec import ScenarioSpec, TopologySpec, resolve_kind
from repro.faults.plan import (
    FaultPlan,
    element_down,
    element_up,
    link_down,
    link_up,
    random_storm,
)
from repro.sim.units import KB, MB, MICROSECOND, MILLISECOND, gbps


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the registry."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown scenario {self.name!r}; "
            f"registered: {', '.join(self.known) or '(none)'}"
        )


@dataclass
class ScenarioEntry:
    """One registered scenario factory."""

    name: str
    factory: Callable[..., ScenarioSpec]
    description: str = ""


_REGISTRY: Dict[str, ScenarioEntry] = {}


def scenario(name: str, description: str = ""):
    """Class of decorators registering a factory under ``name``."""

    def register(factory: Callable[..., ScenarioSpec]):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioEntry(
            name, factory, description or (factory.__doc__ or "").strip()
        )
        return factory

    return register


def get_scenario(name: str) -> ScenarioEntry:
    """The registry entry for ``name`` (UnknownScenarioError if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, sorted(_REGISTRY)) from None


def build_scenario(name: str, **params) -> ScenarioSpec:
    """Build a concrete spec from the named scenario family.

    ``kernel`` is hoisted out of ``params`` here rather than threaded
    through every factory: it is a hash-neutral execution detail (which
    engine kernel runs the spec), not scenario identity, and factories
    would otherwise misroute it into device ``config_overrides``.
    """
    kernel = params.pop("kernel", None)
    spec = get_scenario(name).factory(**params)
    if kernel is not None:
        spec = spec.with_updates(kernel=kernel)
    return spec


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Pre-seeded scenario families
# ----------------------------------------------------------------------

#: The standard scaled-down 2-tier fabric used by host-level benches:
#: 8 FAs x 4 hosts at 10G, full bisection (4x10G uplinks per FA).
PERM_TOPOLOGY = TopologySpec(
    "two_tier",
    dict(pods=2, fas_per_pod=4, fes_per_pod=4, spines=4, hosts_per_fa=4),
)


@scenario("permutation", "every host sends one long flow to a distinct host")
def permutation(
    kind: str = "stardust",
    seed: int = 7,
    topology: TopologySpec = PERM_TOPOLOGY,
    warmup_ns: int = 2 * MILLISECOND,
    measure_ns: int = 6 * MILLISECOND,
    rate_bps: int = gbps(10),
    mptcp_subflows: int = 8,
    **overrides,
) -> ScenarioSpec:
    fabric, transport = resolve_kind(kind)
    workload = {"kind": "permutation"}
    if transport == "mptcp":
        workload["mptcp_subflows"] = mptcp_subflows
    return ScenarioSpec(
        scenario="permutation",
        topology=topology,
        fabric=fabric,
        transport=transport,
        workload=workload,
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        link_rate_bps=rate_bps,
        config_overrides=overrides,
    )


#: A compact three-tier fabric (§5.1: every added tier multiplies
#: reach by the radix) — small enough for smoke benchmarks, deep
#: enough that cross-pod traffic crosses the global spine row.
THREE_TIER_TOPOLOGY = TopologySpec(
    "three_tier",
    dict(
        pods=2, fas_per_pod=2, fes1_per_pod=2, fes2_per_pod=2,
        spines=2, hosts_per_fa=2,
    ),
)


@scenario(
    "permutation_three_tier",
    "permutation throughput on a three-tier fabric (any registered fabric)",
)
def permutation_three_tier(
    kind: str = "stardust",
    seed: int = 7,
    topology: TopologySpec = THREE_TIER_TOPOLOGY,
    **params,
) -> ScenarioSpec:
    spec = permutation(kind=kind, seed=seed, topology=topology, **params)
    return spec.with_updates(scenario="permutation_three_tier")


#: The cells-at-scale three-tier fabric (§5.1 writ large): 4 pods of
#: 8 FAs under two FE tiers and a global spine row, non-blocking end to
#: end (FA: 4x10G up for 4x10G of hosts; FE1: 80G down / 80G up;
#: FE2: 40G / 40G), 32 FAs and 128 hosts total — roughly 20x the event
#: rate of the default two-tier scenario.  Runs this size only became
#: registrable once the calendar-queue engine and cell trains landed.
THREE_TIER_LARGE_TOPOLOGY = TopologySpec(
    "three_tier",
    dict(
        pods=4, fas_per_pod=8, fes1_per_pod=4, fes2_per_pod=8,
        spines=4, hosts_per_fa=4,
    ),
)


@scenario(
    "permutation_three_tier_large",
    "permutation at scale: 128 hosts across a non-blocking three-tier fabric",
)
def permutation_three_tier_large(
    kind: str = "stardust",
    seed: int = 7,
    topology: TopologySpec = THREE_TIER_LARGE_TOPOLOGY,
    warmup_ns: int = 500 * MICROSECOND,
    measure_ns: int = 1500 * MICROSECOND,
    **params,
) -> ScenarioSpec:
    spec = permutation(
        kind=kind, seed=seed, topology=topology,
        warmup_ns=warmup_ns, measure_ns=measure_ns, **params,
    )
    return spec.with_updates(scenario="permutation_three_tier_large")


@scenario(
    "mixed_three_tier_large",
    "web + storage Poisson flow mix at scale on the large three-tier fabric",
)
def mixed_three_tier_large(
    kind: str = "stardust",
    seed: int = 1,
    load: float = 0.4,
    topology: TopologySpec = THREE_TIER_LARGE_TOPOLOGY,
    warmup_ns: int = 500 * MICROSECOND,
    measure_ns: int = 2 * MILLISECOND,
    **params,
) -> ScenarioSpec:
    spec = mixed(
        kind=kind, seed=seed, load=load, topology=topology,
        warmup_ns=warmup_ns, measure_ns=measure_ns, **params,
    )
    return spec.with_updates(scenario="mixed_three_tier_large")


# ----------------------------------------------------------------------
# Failure scenarios (§5.9, §5.10): the resilience claims as experiments
# ----------------------------------------------------------------------


def _fault_overrides(spec: ScenarioSpec, rehash_ns: int) -> dict:
    """Fabric-appropriate failure-model overrides for ``spec``.

    Stardust runs the live reachability protocol so recovery happens at
    protocol speed (and can be compared with Appendix E); the push
    baseline gets a non-zero ECMP rehash delay so flows hashed onto a
    dead path blackhole until routing converges — the §5.10 contrast.
    """
    overrides = dict(spec.config_overrides)
    if spec.fabric == "stardust":
        overrides.setdefault("reachability", "dynamic")
    else:
        overrides.setdefault("ecmp_rehash_ns", rehash_ns)
    return overrides


@scenario(
    "permutation_link_failure",
    "permutation throughput with a mid-run edge-uplink failure + repair",
)
def permutation_link_failure(
    kind: str = "stardust",
    seed: int = 7,
    edge: int = 0,
    uplink: int = 0,
    fail_at_ns: int = 0,  # 0 = one quarter into the measure window
    downtime_ns: int = 0,  # 0 = a quarter of the measure window
    ecmp_rehash_ns: int = 500 * MICROSECOND,
    **params,
) -> ScenarioSpec:
    spec = permutation(kind=kind, seed=seed, **params)
    fail_at = fail_at_ns or spec.warmup_ns + spec.measure_ns // 4
    downtime = downtime_ns or spec.measure_ns // 4
    # 0.8: fault-touched TCP flows re-ramp slowly after repair (their
    # RTOs inflate during the outage), so 80% of the saturated pre-fault
    # baseline is the meaningful "service restored" line for aggregate
    # throughput; fabric-level recovery is reported separately
    # (protocol_detect_ns vs analytical_recovery_ns).
    plan = FaultPlan(
        events=[
            link_down(fail_at, edge, uplink),
            link_up(fail_at + downtime, edge, uplink),
        ],
        recovery_fraction=0.8,
    )
    return spec.with_updates(
        scenario="permutation_link_failure",
        faults=plan.to_dict(),
        config_overrides=_fault_overrides(spec, ecmp_rehash_ns),
    )


@scenario(
    "incast_element_failure",
    "incast absorption while a fabric element dies and comes back",
)
def incast_element_failure(
    kind: str = "stardust",
    seed: int = 1,
    element: int = 0,
    fail_at_ns: int = 100 * MICROSECOND,
    downtime_ns: int = 500 * MICROSECOND,
    ecmp_rehash_ns: int = 200 * MICROSECOND,
    **params,
) -> ScenarioSpec:
    spec = incast(kind=kind, seed=seed, **params)
    plan = FaultPlan(
        events=[
            element_down(fail_at_ns, element),
            element_up(fail_at_ns + downtime_ns, element),
        ],
    )
    overrides = dict(spec.config_overrides)
    if spec.fabric != "stardust":
        overrides.setdefault("ecmp_rehash_ns", ecmp_rehash_ns)
    # Element death is pure spray-eligibility reaction (link.up checks):
    # static reachability shows the local, zero-protocol response.
    return spec.with_updates(
        scenario="incast_element_failure",
        faults=plan.to_dict(),
        config_overrides=overrides,
    )


@scenario(
    "random_fault_storm",
    "permutation under a seeded storm of random short link outages",
)
def random_fault_storm(
    kind: str = "stardust",
    seed: int = 7,
    storm_seed: int = 11,
    count: int = 6,
    downtime_ns: int = 300 * MICROSECOND,
    ecmp_rehash_ns: int = 300 * MICROSECOND,
    **params,
) -> ScenarioSpec:
    spec = permutation(kind=kind, seed=seed, **params)
    start = spec.warmup_ns
    end = spec.warmup_ns + (spec.measure_ns * 3) // 4
    plan = FaultPlan(
        events=[random_storm(start, end, storm_seed, count, downtime_ns)],
        recovery_fraction=0.8,
    )
    return spec.with_updates(
        scenario="random_fault_storm",
        faults=plan.to_dict(),
        config_overrides=_fault_overrides(spec, ecmp_rehash_ns),
    )


@scenario("incast", "all backends answer one frontend at the same instant")
def incast(
    kind: str = "stardust",
    seed: int = 1,
    n_backends: int = 8,
    response_bytes: int = 200 * KB,
    uplinks_per_fa: int = 4,
    timeout_ns: int = 500 * MILLISECOND,
    rate_bps: int = gbps(10),
    mss: int = 1460,
    **overrides,
) -> ScenarioSpec:
    fabric, transport = resolve_kind(kind)
    topology = TopologySpec(
        "one_tier",
        dict(
            num_fas=n_backends + 1,
            uplinks_per_fa=uplinks_per_fa,
            hosts_per_fa=1,
        ),
    )
    # Defaults mirror examples/incast_absorption.py's historical setup:
    # paper-default 256B cells, standard-MTU senders, a deep 32MB
    # distributed ingress buffer vs a shallow drop-tail ToR.
    if fabric == "stardust":
        overrides.setdefault("cell_size_bytes", 256)
        overrides.setdefault("ingress_buffer_bytes", 32 * MB)
    else:
        overrides.setdefault("port_buffer_bytes", 150_000)
        overrides.setdefault("ecn_threshold_bytes", None)
    return ScenarioSpec(
        scenario="incast",
        topology=topology,
        fabric=fabric,
        transport=transport,
        workload={
            "kind": "incast",
            "n_backends": n_backends,
            "response_bytes": response_bytes,
        },
        seed=seed,
        warmup_ns=0,
        measure_ns=timeout_ns,
        link_rate_bps=rate_bps,
        mss=mss,
        config_overrides=overrides,
    )


@scenario("many_to_many", "every host sends a sized flow to every other rack")
def many_to_many(
    kind: str = "stardust",
    seed: int = 1,
    num_fas: int = 4,
    hosts_per_fa: int = 2,
    uplinks_per_fa: int = 4,
    flow_bytes: int = 200 * KB,
    timeout_ns: int = 200 * MILLISECOND,
    rate_bps: int = gbps(10),
    **overrides,
) -> ScenarioSpec:
    fabric, transport = resolve_kind(kind)
    topology = TopologySpec(
        "one_tier",
        dict(
            num_fas=num_fas,
            uplinks_per_fa=uplinks_per_fa,
            hosts_per_fa=hosts_per_fa,
        ),
    )
    return ScenarioSpec(
        scenario="many_to_many",
        topology=topology,
        fabric=fabric,
        transport=transport,
        workload={"kind": "many_to_many", "flow_bytes": flow_bytes},
        seed=seed,
        warmup_ns=0,
        measure_ns=timeout_ns,
        link_rate_bps=rate_bps,
        config_overrides=overrides,
    )


@scenario("uniform_random", "open-loop Poisson traffic to random hosts (Fig 9)")
def uniform_random(
    kind: str = "stardust",
    seed: int = 1,
    utilization: float = 0.7,
    packet_bytes: int = 1000,
    packet_mix: str = "",
    topology: TopologySpec = PERM_TOPOLOGY,
    warmup_ns: int = 1 * MILLISECOND,
    measure_ns: int = 4 * MILLISECOND,
    rate_bps: int = gbps(10),
    **overrides,
) -> ScenarioSpec:
    fabric, _ = resolve_kind(kind)
    workload = {
        "kind": "uniform_random",
        "utilization": utilization,
        "packet_bytes": packet_bytes,
    }
    if packet_mix:
        workload["packet_mix"] = packet_mix
    return ScenarioSpec(
        scenario="uniform_random",
        topology=topology,
        fabric=fabric,
        transport="none",
        workload=workload,
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        link_rate_bps=rate_bps,
        config_overrides=overrides,
    )


@scenario("mixed", "Poisson arrivals of web + storage flows (FCT study)")
def mixed(
    kind: str = "stardust",
    seed: int = 1,
    load: float = 0.4,
    web_fraction: float = 0.7,
    storage_workload: str = "hadoop",
    max_flows_per_host: int = 200,
    topology: TopologySpec = PERM_TOPOLOGY,
    warmup_ns: int = 1 * MILLISECOND,
    measure_ns: int = 8 * MILLISECOND,
    rate_bps: int = gbps(10),
    **overrides,
) -> ScenarioSpec:
    fabric, transport = resolve_kind(kind)
    return ScenarioSpec(
        scenario="mixed",
        topology=topology,
        fabric=fabric,
        transport=transport,
        workload={
            "kind": "mixed",
            "load": load,
            "web_fraction": web_fraction,
            "storage_workload": storage_workload,
            "max_flows_per_host": max_flows_per_host,
        },
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=measure_ns,
        link_rate_bps=rate_bps,
        config_overrides=overrides,
    )
