"""Analytical models: queueing, cost, power, area, resilience, memory."""

from repro.analysis.mdq import (
    md1_mean_queue,
    md1_queue_distribution,
    md1_tail_probability,
    speedup_tail_bound,
)
from repro.analysis.area import (
    FABRIC_ELEMENT_RATIOS,
    fe_table_bits,
    tor_table_bits,
    fabric_adapter_overhead_fraction,
)
from repro.analysis.cost import (
    COMPONENT_PRICES,
    DeploymentOption,
    network_cost_usd,
    relative_cost_series,
    STARDUST_25G,
    FT_50G,
    FT_100G,
)
from repro.analysis.power import (
    network_power_relative,
    power_saving_fraction,
    relative_power_series,
)
from repro.analysis.resilience import (
    ReachabilityParams,
    messages_per_table,
    reachability_overhead_fraction,
    recovery_time_ns,
)
from repro.analysis.memory import (
    fe_buffer_bytes,
    fe_max_latency_ns,
    egress_inflight_bytes,
)

__all__ = [
    "md1_queue_distribution",
    "md1_tail_probability",
    "md1_mean_queue",
    "speedup_tail_bound",
    "FABRIC_ELEMENT_RATIOS",
    "tor_table_bits",
    "fe_table_bits",
    "fabric_adapter_overhead_fraction",
    "COMPONENT_PRICES",
    "DeploymentOption",
    "STARDUST_25G",
    "FT_50G",
    "FT_100G",
    "network_cost_usd",
    "relative_cost_series",
    "network_power_relative",
    "power_saving_fraction",
    "relative_power_series",
    "ReachabilityParams",
    "messages_per_table",
    "recovery_time_ns",
    "reachability_overhead_fraction",
    "fe_buffer_bytes",
    "fe_max_latency_ns",
    "egress_inflight_bytes",
]
