"""M/D/1 queueing: the theory behind Fabric Element queues (§4.2.1).

Cell arrival at a last-stage fabric link is bounded by a Poisson
process at rate ``1/fs`` (the link utilization); service is exactly one
cell per fabric cell time.  The stationary queue-length distribution of
this M/D/1 queue is computed with the classic embedded-Markov-chain
recursion; the paper's shorthand bound — tail probability
``o(fs^-2N)`` for a queue of size N — is provided alongside so
benchmarks can compare simulation, exact theory, and the bound
(Fig 9, right).
"""

from __future__ import annotations

import math
from typing import List


def _poisson_pmf(rho: float, j: int) -> float:
    # log-space to stay finite for large j.
    return math.exp(-rho + j * math.log(rho) - math.lgamma(j + 1))


def md1_queue_distribution(rho: float, max_n: int = 200) -> List[float]:
    """Stationary P[Q = n] for n = 0..max_n of an M/D/1 queue.

    Uses the embedded chain at departure epochs (which by PASTA matches
    time averages): with ``a_j`` the Poisson(rho) pmf,

        p_0' known, p_{n+1} = (p_n - p_0 a_n - sum_{k=1}^{n} p_k a_{n-k+1}) / a_0

    Normalized on return.  Requires rho < 1.
    """
    if not 0 <= rho < 1:
        raise ValueError("utilization must be in [0, 1) for a stable queue")
    if max_n < 0:
        raise ValueError("max_n must be non-negative")
    if rho == 0:
        return [1.0, *([0.0] * max_n)]

    a = [_poisson_pmf(rho, j) for j in range(max_n + 2)]
    p = [0.0] * (max_n + 1)
    p[0] = 1.0 - rho
    if max_n >= 1:
        p[1] = p[0] * (1 - a[0]) / a[0]
    for n in range(1, max_n):
        total = p[n] - p[0] * a[n]
        for k in range(1, n + 1):
            total -= p[k] * a[n - k + 1]
        p[n + 1] = max(total / a[0], 0.0)
    norm = sum(p)
    return [x / norm for x in p]


def md1_tail_probability(rho: float, n: int, max_n: int = 400) -> float:
    """P[Q >= n] for an M/D/1 queue at utilization rho."""
    if n <= 0:
        return 1.0
    dist = md1_queue_distribution(rho, max_n=max(max_n, n + 50))
    return max(0.0, 1.0 - sum(dist[:n]))


def md1_mean_queue(rho: float) -> float:
    """Mean queue length (Pollaczek-Khinchine): rho + rho^2/(2(1-rho))."""
    if not 0 <= rho < 1:
        raise ValueError("utilization must be in [0, 1)")
    return rho + rho * rho / (2 * (1 - rho))


def speedup_tail_bound(fabric_speedup: float, n: int) -> float:
    """The paper's §4.2.1 bound: P[queue >= n] = o(fs^-2n).

    With link utilization 1/fs, the tail of the M/D/1 queue decays at
    least as fast as (1/fs)^(2n).
    """
    if fabric_speedup <= 1.0:
        raise ValueError("bound requires fabric speedup > 1")
    if n < 0:
        raise ValueError("queue size must be non-negative")
    return fabric_speedup ** (-2 * n)
