"""Failure recovery timing (Appendix E, §5.9).

Reachability cells are emitted every ``c`` core clocks per link; a full
table of N hosts takes ``M = ceil(N / (h x b))`` messages; a change must
cross ``2n - 1`` hops and be confirmed ``th`` times.  The worked example
(Table 4's values) gives 652us — reproduced exactly by
:func:`recovery_time_ns` — at 0.04% bandwidth overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.units import GBPS


@dataclass(frozen=True)
class ReachabilityParams:
    """Table 4's parameters, with its example values as defaults."""

    core_frequency_hz: int = 1_000_000_000  # f
    cycles_between_messages: int = 10_000  # c
    bitmap_bits: int = 128  # b: FAs reported per message
    message_bytes: int = 24  # B
    hosts_per_fa: int = 40  # h
    total_hosts: int = 32_000  # N
    tiers: int = 2  # n
    confirm_threshold: int = 3  # th
    link_rate_bps: int = 50 * GBPS  # s
    #: Per-hop propagation delays (ns), farthest hop first.  The worked
    #: example uses two 100m hops (500ns) and one 10m hop (50ns).
    propagation_ns: tuple = (500, 500, 50)

    def __post_init__(self) -> None:
        if self.tiers < 1:
            raise ValueError("tiers must be >= 1")
        if len(self.propagation_ns) != 2 * self.tiers - 1:
            raise ValueError(
                f"need {2 * self.tiers - 1} per-hop propagation delays"
            )

    @property
    def message_interval_ns(self) -> float:
        """t' = c / f."""
        return self.cycles_between_messages / self.core_frequency_hz * 1e9


def messages_per_table(params: ReachabilityParams) -> int:
    """M = ceil(N / (h x b))."""
    return math.ceil(
        params.total_hosts / (params.hosts_per_fa * params.bitmap_bits)
    )


def recovery_time_ns(params: ReachabilityParams) -> float:
    """Time to detect-and-propagate a failure across the whole fabric.

    t x th = sum over the 2n-1 hops of (t' + pd_i) x M x th.
    """
    m = messages_per_table(params)
    t_prime = params.message_interval_ns
    return sum(
        (t_prime + pd) * m * params.confirm_threshold
        for pd in params.propagation_ns
    )


def reachability_overhead_fraction(params: ReachabilityParams) -> float:
    """Bandwidth share of reachability cells: B x 8 x f / (c x s)."""
    return (
        params.message_bytes * 8 * params.core_frequency_hz
        / (params.cycles_between_messages * params.link_rate_bps)
    )
