"""System cost (Fig 11(a), Appendix D).

List prices from Table 3 (collected 2018-09-12; used as *ratios*, as
the paper does).  The deployment model follows §7: ToR/Fabric-Adapter
platforms cost the same; a Fabric Element platform costs the silicon
area ratio (0.666) of a ToR platform; 40 servers per ToR over DAC; no
over-subscription; 100m fibers on the last tier of multi-tier
networks, 10m elsewhere; two optical transceivers per fabric link
bundle, priced by bundle rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.units import GBPS
from repro.topology.scaling import (
    SwitchModel,
    min_tiers_for_hosts,
    switches_per_tor,
)

#: Table 3 list prices (USD).
COMPONENT_PRICES: Dict[str, float] = {
    "switch_64x100g": 16_200.0,  # Edgecore AS7816-64X / Wedge 100BF-65X
    "dac_100g_2m": 84.0,
    "optic_100g_sr": 435.0,
    "optic_50g_sr": 280.0,  # estimated in the paper
    "optic_25g_sr": 125.0,
    "fiber_10m": 8.0,
    "fiber_100m": 62.0,
}

#: Fabric Element platform cost relative to a ToR platform (§7 uses
#: the conservative silicon-area ratio).
FE_PLATFORM_RATIO = 0.666


@dataclass(frozen=True)
class DeploymentOption:
    """One line of Fig 11(a): a link-bundling choice for the fabric.

    ``optic_lanes`` is how many 25G serial lanes one transceiver
    carries.  §7: Stardust's devices "are oblivious to whether bundling
    was used in the transceiver" and use breakout cables, so the
    Stardust option ships its unbundled lanes over the cheapest
    per-bit optic (100G QSFP28 + breakout) — it "always opts for the
    minimal number of transceivers".
    """

    name: str
    bundle: int  # serial 25G lanes per logical switch port
    optic_price: float  # per transceiver
    optic_lanes: int  # 25G lanes one transceiver carries
    is_stardust: bool

    @property
    def port_rate_bps(self) -> int:
        """Rate of one logical fabric port."""
        return self.bundle * 25 * GBPS

    def switch(self, bandwidth_bps: int = 6_400 * GBPS) -> SwitchModel:
        """The SwitchModel this option builds its fabric from."""
        return SwitchModel(
            bandwidth_bps, lane_rate_bps=25 * GBPS, bundle=self.bundle
        )


STARDUST_25G = DeploymentOption(
    "Stardust, 25Gx256 Port (L=1)",
    bundle=1,
    optic_price=COMPONENT_PRICES["optic_100g_sr"],  # breakout: 4 lanes
    optic_lanes=4,
    is_stardust=True,
)
FT_50G = DeploymentOption(
    "FT, 50Gx128 Port (L=2)",
    bundle=2,
    optic_price=COMPONENT_PRICES["optic_50g_sr"],
    optic_lanes=2,
    is_stardust=False,
)
FT_100G = DeploymentOption(
    "FT, 100Gx64 Port (L=4)",
    bundle=4,
    optic_price=COMPONENT_PRICES["optic_100g_sr"],
    optic_lanes=4,
    is_stardust=False,
)


def network_cost_usd(
    option: DeploymentOption,
    hosts: int,
    hosts_per_tor: int = 40,
    host_rate_bps: int = 25 * GBPS,
    switch_bandwidth_bps: int = 6_400 * GBPS,
) -> Optional[float]:
    """Total deployment cost; None if the option cannot reach ``hosts``.

    Components: ToR platforms, fabric platforms, per-server DAC, and
    per-fabric-link (two optics + one fiber) across every tier.
    """
    if hosts < 1:
        raise ValueError("hosts must be positive")
    switch = option.switch(switch_bandwidth_bps)
    k = switch.radix
    tiers = min_tiers_for_hosts(k, hosts, hosts_per_tor)
    if tiers is None:
        return None
    tors = -(-hosts // hosts_per_tor)
    # ToR uplink ports: host bandwidth worth of fabric ports.
    uplink_bps = hosts_per_tor * host_rate_bps
    t = -(-uplink_bps // option.port_rate_bps)

    tor_platform = COMPONENT_PRICES["switch_64x100g"]
    fabric_platform = tor_platform * (
        FE_PLATFORM_RATIO if option.is_stardust else 1.0
    )
    fabric_switches = math.ceil(switches_per_tor(k, t, tiers) * tors)

    cost = tors * tor_platform + fabric_switches * fabric_platform
    cost += hosts * COMPONENT_PRICES["dac_100g_2m"]

    # Fabric links: each of the `tiers` layers carries t x tors bundles
    # of `bundle` 25G lanes; lanes pack into transceivers of
    # `optic_lanes` (breakout for Stardust), one fiber per transceiver
    # pair.
    lanes_per_layer = t * tors * option.bundle
    optics_per_layer = math.ceil(lanes_per_layer / option.optic_lanes)
    for layer in range(1, tiers + 1):
        last = layer == tiers and tiers > 1
        fiber = COMPONENT_PRICES["fiber_100m" if last else "fiber_10m"]
        cost += optics_per_layer * (2 * option.optic_price + fiber)
    return cost


def relative_cost_series(
    host_counts: Sequence[int],
    options: Sequence[DeploymentOption] = (STARDUST_25G, FT_50G, FT_100G),
    **kwargs,
) -> Dict[str, List[Optional[float]]]:
    """Fig 11(a): cost of each option, as % of the costliest, per size."""
    raw = {
        opt.name: [network_cost_usd(opt, h, **kwargs) for h in host_counts]
        for opt in options
    }
    result: Dict[str, List[Optional[float]]] = {
        name: [] for name in raw
    }
    for i, _ in enumerate(host_counts):
        column = [raw[name][i] for name in raw]
        valid = [c for c in column if c is not None]
        top = max(valid) if valid else None
        for name in raw:
            cost = raw[name][i]
            result[name].append(
                None if cost is None or top is None else 100.0 * cost / top
            )
    return result
