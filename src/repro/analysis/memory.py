"""Memory sizing (§6.2's extrapolation, §4.1's credit-size reasoning).

The §6.2 simulation caps last-stage queues near 80 cells at 95% load;
extrapolated to a 256x50G Fabric Element with a 128-cell budget per
link, that is 8MB of cell buffering and at most ~5.2us of queueing
latency inside the device — both reproduced here as closed forms.
"""

from __future__ import annotations

from repro.sim.units import GBPS, SECOND


def fe_buffer_bytes(
    links: int = 256, queue_cells: int = 128, cell_bytes: int = 256
) -> int:
    """Total Fabric Element cell memory: links x queue depth x cell."""
    if min(links, queue_cells, cell_bytes) < 1:
        raise ValueError("all sizing parameters must be positive")
    return links * queue_cells * cell_bytes


def fe_max_latency_ns(
    queue_cells: int = 128,
    cell_bytes: int = 256,
    link_rate_bps: int = 50 * GBPS,
) -> float:
    """Worst-case queueing delay of one full per-link queue."""
    if queue_cells < 0:
        raise ValueError("queue depth must be non-negative")
    return queue_cells * cell_bytes * 8 * SECOND / link_rate_bps


def egress_inflight_bytes(
    credit_size_bytes: int,
    sources: int,
    loop_latency_ns: int,
    port_rate_bps: int,
) -> int:
    """Egress memory needed to absorb in-flight data on flow control.

    When the egress pauses its credit generation, every source may
    still deliver its outstanding credit, plus the credit stream issued
    during one control-loop latency (§4.1's minimum-credit argument).
    """
    if min(credit_size_bytes, sources) < 1:
        raise ValueError("credit size and sources must be positive")
    if loop_latency_ns < 0 or port_rate_bps <= 0:
        raise ValueError("latency/rate must be sensible")
    in_loop = port_rate_bps * loop_latency_ns // (8 * SECOND)
    return sources * credit_size_bytes + int(in_loop)


def min_credit_size_bytes(
    fa_bandwidth_bps: int,
    clock_hz: int = 1_000_000_000,
    clocks_per_credit: int = 2,
) -> int:
    """§4.1: minimum credit = FA bandwidth / credit generation rate.

    The worked example — 10 Tbps Fabric Adapter, 1 GHz, one credit
    every 2 clocks — gives 2500B by exact arithmetic
    (10e12 / 0.5e9 = 20000 bits); the paper's text rounds this story
    to "2000B".  We keep the exact value.
    """
    if min(fa_bandwidth_bps, clock_hz, clocks_per_credit) < 1:
        raise ValueError("all parameters must be positive")
    credits_per_second = clock_hz // clocks_per_credit
    return fa_bandwidth_bps // (8 * credits_per_second)
