"""Silicon area (Fig 10(d), Appendix C).

Device A is a standard Ethernet ToR switch; device B the Fabric
Element, both on the same process.  The table's ratios are
reproduced as model constants, and Appendix C's lookup-table sizing
formulas are implemented so the two-orders-of-magnitude table claim
(§4.2) can be checked quantitatively.
"""

from __future__ import annotations

import math
from typing import Dict

#: Fig 10(d): Fabric Element (B) relative to a standard switch (A).
FABRIC_ELEMENT_RATIOS: Dict[str, float] = {
    "header_processing": 0.13,
    "network_interface": 0.30,
    "other_logic": 0.60,
    "io": 0.875,
    "area_per_tbps": 0.666,
    "power_per_tbps": 0.648,
}

#: Appendix C: Stardust-specific functionality (cell generation, load
#: balancing, credit generation) inside a Fabric Adapter.
FABRIC_ADAPTER_STARDUST_AREA_FRACTION = 0.08
#: ...compensated by a 70% smaller fabric-facing network interface.
NETWORK_INTERFACE_SAVING_PER_PORT = 0.70
#: 128K VOQs consume ~4MB of on-chip memory (Appendix C).
VOQ_MEMORY_BYTES_PER_128K = 4 * 1024 * 1024


def tor_table_bits(n_hosts: int, radix: int) -> int:
    """Exact-match IPv4 table of a ToR: N x (32 + log2 k) bits."""
    if n_hosts < 1 or radix < 2:
        raise ValueError("need hosts >= 1 and radix >= 2")
    return n_hosts * (32 + math.ceil(math.log2(radix)))


def fe_table_bits(
    n_hosts: int, radix: int, hosts_per_rack: int = 40
) -> int:
    """Fabric Element reachability table: (N/40) x log2 k bits."""
    if hosts_per_rack < 1:
        raise ValueError("hosts_per_rack must be positive")
    entries = -(-n_hosts // hosts_per_rack)
    return entries * math.ceil(math.log2(radix))


def table_ratio(n_hosts: int, radix: int, hosts_per_rack: int = 40) -> float:
    """ToR-table : FE-table size ratio (the "two orders of magnitude")."""
    return tor_table_bits(n_hosts, radix) / fe_table_bits(
        n_hosts, radix, hosts_per_rack
    )


def fabric_adapter_overhead_fraction(
    stardust_logic: float = FABRIC_ADAPTER_STARDUST_AREA_FRACTION,
    interface_saving: float = NETWORK_INTERFACE_SAVING_PER_PORT,
    interface_share: float = 0.30,
) -> float:
    """Net area delta of a Fabric Adapter vs a same-class ToR.

    Adds the Stardust logic, subtracts the fabric-interface saving
    (70% of the interface area share); Appendix C concludes ~0, and the
    model agrees to within a few percent.
    """
    return stardust_logic - interface_saving * interface_share


def voq_memory_bytes(n_voqs: int) -> int:
    """On-chip memory for ``n_voqs`` VOQ descriptors (Appendix C)."""
    if n_voqs < 0:
        raise ValueError("n_voqs must be non-negative")
    return int(VOQ_MEMORY_BYTES_PER_128K * n_voqs / (128 * 1024))
