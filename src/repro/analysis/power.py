"""Network power (Fig 11(b)).

Same-bandwidth devices are compared in relative units: every fat-tree
switch and every ToR/Fabric Adapter costs 1.0 power unit, a Fabric
Element 0.648 (Fig 10(d)'s power/Tbps ratio).  The network's power is
then a function of how many devices each link-bundling choice needs —
which is where Stardust's high-radix advantage compounds with its
per-device saving (§7: up to 25% of the whole network's power, 78%
within the fabric alone).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.analysis.area import FABRIC_ELEMENT_RATIOS
from repro.sim.units import GBPS
from repro.topology.scaling import (
    SwitchModel,
    min_tiers_for_hosts,
    switches_per_tor,
)

#: Relative power of a Fabric Element vs a same-bandwidth switch.
FE_POWER_RATIO = FABRIC_ELEMENT_RATIOS["power_per_tbps"]


def _device_counts(
    bundle: int,
    hosts: int,
    hosts_per_tor: int,
    host_rate_bps: int,
    switch_bandwidth_bps: int,
    lane_rate_bps: int,
) -> Optional[tuple[int, int]]:
    switch = SwitchModel(
        switch_bandwidth_bps, lane_rate_bps=lane_rate_bps, bundle=bundle
    )
    k = switch.radix
    tiers = min_tiers_for_hosts(k, hosts, hosts_per_tor)
    if tiers is None:
        return None
    tors = -(-hosts // hosts_per_tor)
    uplink_bps = hosts_per_tor * host_rate_bps
    t = -(-uplink_bps // switch.port_rate_bps)
    fabric = math.ceil(switches_per_tor(k, t, tiers) * tors)
    return tors, fabric


def network_power_relative(
    bundle: int,
    hosts: int,
    is_stardust: bool = False,
    hosts_per_tor: int = 40,
    host_rate_bps: int = 100 * GBPS,
    switch_bandwidth_bps: int = 12_800 * GBPS,
    lane_rate_bps: int = 50 * GBPS,
    fabric_only: bool = False,
) -> Optional[float]:
    """Power in ToR-equivalents for a deployment choice.

    Returns None when the bundle cannot scale to ``hosts``.
    """
    counts = _device_counts(
        bundle, hosts, hosts_per_tor, host_rate_bps,
        switch_bandwidth_bps, lane_rate_bps,
    )
    if counts is None:
        return None
    tors, fabric = counts
    per_fabric_device = FE_POWER_RATIO if is_stardust else 1.0
    fabric_power = fabric * per_fabric_device
    return fabric_power if fabric_only else tors + fabric_power


def power_saving_fraction(
    hosts: int,
    baseline_bundle: int = 2,
    fabric_only: bool = False,
    **kwargs,
) -> Optional[float]:
    """Stardust's fractional power saving vs an L-bundled fat-tree."""
    stardust = network_power_relative(
        1, hosts, is_stardust=True, fabric_only=fabric_only, **kwargs
    )
    baseline = network_power_relative(
        baseline_bundle, hosts, is_stardust=False,
        fabric_only=fabric_only, **kwargs,
    )
    if stardust is None or baseline is None:
        return None
    return 1.0 - stardust / baseline


def relative_power_series(
    host_counts: Sequence[int],
    bundles: Sequence[int] = (1, 2, 4, 8),
    **kwargs,
) -> Dict[int, List[Optional[float]]]:
    """Fig 11(b): power of each bundling as % of the hungriest option."""
    raw = {
        b: [
            network_power_relative(b, h, is_stardust=(b == 1), **kwargs)
            for h in host_counts
        ]
        for b in bundles
    }
    result: Dict[int, List[Optional[float]]] = {b: [] for b in bundles}
    for i, _ in enumerate(host_counts):
        column = [raw[b][i] for b in bundles]
        valid = [c for c in column if c is not None]
        top = max(valid) if valid else None
        for b in bundles:
            value = raw[b][i]
            result[b].append(
                None if value is None or top is None else 100.0 * value / top
            )
    return result
