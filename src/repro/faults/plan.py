"""Declarative fault plans: failure as experiment input, not test code.

A :class:`FaultPlan` is a JSON-serializable schedule of fault events —
link down/up, fabric-element and edge-device (FA/ToR) death and
revival, degraded-rate intervals and seeded random fault storms —
attached to a :class:`~repro.experiments.spec.ScenarioSpec` and
compiled by :class:`~repro.faults.injector.FaultInjector` into
engine-scheduled events against whichever fabric the spec built.

Targets are *topology coordinates*, not device object references, so
the same plan drives the Stardust cell fabric and the push/ECMP
baseline (the §5.10 graceful-degradation-vs-blackholing comparison
needs exactly that):

* ``edge``/``uplink`` name edge device *i*'s fabric uplink *j* — both
  directions of the duplex link are failed/restored together;
* ``element`` indexes the fabric-element row in wiring-plan order
  (tier-1 first), mapping to a Fabric Element or a fabric Ethernet
  switch;
* ``edge`` alone (``edge_down``/``edge_up``) kills a whole FA/ToR.

Plans with the same content always serialize to the same JSON, so a
faulted spec's content hash — and therefore its golden trace — is as
stable as an unfaulted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Event kinds that disrupt the fabric (their ``at_ns`` marks the start
#: of an outage the resilience metrics measure recovery from).
DISRUPTIVE_KINDS = (
    "link_down", "element_down", "edge_down", "degrade", "random_storm",
)
#: Event kinds that end an outage.
RESTORING_KINDS = ("link_up", "element_up", "edge_up")

KNOWN_KINDS = DISRUPTIVE_KINDS + RESTORING_KINDS

#: Per-kind required fields (beyond ``kind`` and ``at_ns``).
_REQUIRED: Dict[str, tuple] = {
    "link_down": ("edge", "uplink"),
    "link_up": ("edge", "uplink"),
    "element_down": ("element",),
    "element_up": ("element",),
    "edge_down": ("edge",),
    "edge_up": ("edge",),
    "degrade": ("edge", "uplink", "until_ns", "factor"),
    "random_storm": ("seed", "count", "until_ns", "downtime_ns"),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action (JSON round-trippable).

    Unused fields stay ``None`` and are dropped from the serialized
    form, so two plans differing only in irrelevant ``None`` fields
    hash identically.
    """

    kind: str
    #: When the action fires, in ns *after the injector arms* — i.e.
    #: relative to workload start, so a fabric that pre-ran (protocol
    #: convergence) keeps fault times aligned with the experiment.
    at_ns: int
    edge: Optional[int] = None
    uplink: Optional[int] = None
    element: Optional[int] = None
    #: End of a ``degrade`` interval or ``random_storm`` window.
    until_ns: Optional[int] = None
    #: ``degrade``: surviving fraction of the link rate, in (0, 1].
    factor: Optional[float] = None
    #: ``random_storm``: dedicated RNG seed (independent of the
    #: scenario seed, so the same storm can ride different workloads).
    seed: Optional[int] = None
    #: ``random_storm``: number of link failures to inject.
    count: Optional[int] = None
    #: ``random_storm``: how long each failed link stays down.
    downtime_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {sorted(KNOWN_KINDS)}"
            )
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        missing = [
            name for name in _REQUIRED[self.kind]
            if getattr(self, name) is None
        ]
        if missing:
            raise ValueError(
                f"{self.kind} event needs {', '.join(missing)}"
            )
        for name in ("edge", "uplink", "element"):
            value = getattr(self, name)
            if value is not None and value < 0:
                # Negative coordinates would silently resolve through
                # Python's negative indexing onto the *wrong* device.
                raise ValueError(
                    f"{name} must be >= 0, got {value}"
                )
        if self.until_ns is not None and self.until_ns <= self.at_ns:
            raise ValueError(
                f"until_ns ({self.until_ns}) must be after "
                f"at_ns ({self.at_ns})"
            )
        if self.factor is not None and not 0 < self.factor <= 1:
            raise ValueError(
                f"degrade factor must be in (0, 1], got {self.factor}"
            )
        if self.count is not None and self.count < 1:
            raise ValueError("storm count must be >= 1")
        if self.downtime_ns is not None and self.downtime_ns <= 0:
            raise ValueError("storm downtime_ns must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """Plain dict with ``None`` fields dropped (canonical form)."""
        data = {"kind": self.kind, "at_ns": self.at_ns}
        for name in (
            "edge", "uplink", "element", "until_ns", "factor", "seed",
            "count", "downtime_ns",
        ):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        """Rebuild from :meth:`to_dict` output (validates)."""
        return cls(**data)


# ----------------------------------------------------------------------
# Convenience constructors (the scenario builders' vocabulary)
# ----------------------------------------------------------------------


def link_down(at_ns: int, edge: int, uplink: int) -> FaultEvent:
    """Fail both directions of edge ``edge``'s fabric uplink ``uplink``."""
    return FaultEvent("link_down", at_ns, edge=edge, uplink=uplink)


def link_up(at_ns: int, edge: int, uplink: int) -> FaultEvent:
    """Restore both directions of an uplink failed by :func:`link_down`."""
    return FaultEvent("link_up", at_ns, edge=edge, uplink=uplink)


def element_down(at_ns: int, element: int) -> FaultEvent:
    """Kill fabric element ``element`` (wiring-plan order): device death."""
    return FaultEvent("element_down", at_ns, element=element)


def element_up(at_ns: int, element: int) -> FaultEvent:
    """Revive a fabric element killed by :func:`element_down`."""
    return FaultEvent("element_up", at_ns, element=element)


def edge_down(at_ns: int, edge: int) -> FaultEvent:
    """Kill edge device ``edge`` (FA/ToR death)."""
    return FaultEvent("edge_down", at_ns, edge=edge)


def edge_up(at_ns: int, edge: int) -> FaultEvent:
    """Revive an edge device killed by :func:`edge_down`."""
    return FaultEvent("edge_up", at_ns, edge=edge)


def degrade(
    at_ns: int, until_ns: int, edge: int, uplink: int, factor: float
) -> FaultEvent:
    """Run an uplink at ``factor`` of its rate over [at_ns, until_ns)."""
    return FaultEvent(
        "degrade", at_ns, edge=edge, uplink=uplink,
        until_ns=until_ns, factor=factor,
    )


def random_storm(
    at_ns: int, until_ns: int, seed: int, count: int, downtime_ns: int
) -> FaultEvent:
    """``count`` seeded random uplink failures in [at_ns, until_ns),
    each healed ``downtime_ns`` later."""
    return FaultEvent(
        "random_storm", at_ns, until_ns=until_ns, seed=seed,
        count=count, downtime_ns=downtime_ns,
    )


@dataclass
class FaultPlan:
    """A schedule of fault events plus resilience-measurement knobs."""

    events: List[FaultEvent] = field(default_factory=list)
    #: Throughput sampling period for the recovery-time measurement.
    #: Sampling only happens on faulted runs, so unfaulted runs stay
    #: event-for-event identical to a build without this subsystem.
    sample_period_ns: int = 20_000
    #: A post-fault sample counts as recovered once the delivered rate
    #: is back above this fraction of the pre-fault baseline.
    recovery_fraction: float = 0.9
    #: Pre-fault samples averaged into the baseline rate.
    baseline_samples: int = 8

    def __post_init__(self) -> None:
        self.events = [
            e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
            for e in self.events
        ]
        if not self.events:
            raise ValueError("a fault plan needs at least one event")
        if not any(e.kind in DISRUPTIVE_KINDS for e in self.events):
            raise ValueError(
                "a fault plan needs at least one disruptive event "
                f"(one of {sorted(DISRUPTIVE_KINDS)})"
            )
        if self.sample_period_ns <= 0:
            raise ValueError("sample_period_ns must be positive")
        if not 0 < self.recovery_fraction <= 1:
            raise ValueError("recovery_fraction must be in (0, 1]")
        if self.baseline_samples < 1:
            raise ValueError("baseline_samples must be >= 1")

    # ------------------------------------------------------------------
    def first_fault_ns(self) -> int:
        """When the first disruptive event strikes."""
        return min(
            e.at_ns for e in self.events if e.kind in DISRUPTIVE_KINDS
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (stored inside ``ScenarioSpec``)."""
        return {
            "events": [e.to_dict() for e in self.events],
            "sample_period_ns": self.sample_period_ns,
            "recovery_fraction": self.recovery_fraction,
            "baseline_samples": self.baseline_samples,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Rebuild (and validate) a plan from :meth:`to_dict` output."""
        return cls(**data)
