"""Resilience metrics: what a faulted run measures.

:class:`ResilienceMetrics` is the resilience section of
:class:`~repro.fabrics.base.FabricMetrics` — filled in only when a
:class:`~repro.faults.injector.FaultInjector` is attached, ``None``
otherwise, so unfaulted metrics keep their exact historical shape.

:func:`expected_recovery_ns` bridges to the Appendix E analytical
model (:mod:`repro.analysis.resilience`): it maps a live Stardust
network's protocol parameters onto :class:`ReachabilityParams`, so a
measured recovery time can be reported *alongside* the paper's
formula instead of the formula standing in for the experiment.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.analysis.resilience import ReachabilityParams, recovery_time_ns


@dataclass
class ResilienceMetrics:
    """How the fabric weathered the injected faults, with units."""

    #: Disruptive fault actions applied (storm failures count singly).
    faults_injected: int
    #: Frames lost on failed/failing links: queued at fail time,
    #: serialized into a dead link, or in flight when it went down —
    #: cells for the Stardust fabric, packets for the push baseline.
    frames_lost_in_transit: int
    #: Frames dropped by dead devices (element/edge death).
    dead_device_drops: int
    #: Distinct flows ECMP kept hashing onto a dead path during the
    #: rehash window (push baseline; identically 0 for Stardust,
    #: which re-sprays per cell).
    blackholed_flows: int
    #: Packets blackholed in total (every drop, not distinct flows).
    blackholed_packets: int
    #: Time from the first fault until delivered throughput was last
    #: seen below ``recovery_fraction`` x baseline.  0 = no measurable
    #: dip; -1 = still below baseline when the run ended.
    time_to_recover_ns: int
    #: Worst-case fractional throughput loss during the dip (0..1).
    dip_depth: float
    #: Total time spent below the recovery threshold.
    dip_duration_ns: int
    #: Pre-fault delivered throughput baseline (bytes per sample
    #: period averaged into Gbps).
    baseline_gbps: float
    #: Time from the first fault until a reachability monitor first
    #: declared a link down (Stardust dynamic mode; quantized to the
    #: sample period).  None: no protocol, or never detected.
    protocol_detect_ns: Optional[int] = None
    #: Appendix E analytical recovery time for this fabric's protocol
    #: parameters (Stardust dynamic reachability only; else None).
    analytical_recovery_ns: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON round-trippable)."""
        return asdict(self)

    def summary(self) -> Dict[str, Any]:
        """Flat entries for a RunResult ``metrics`` dict."""
        data = {
            "faults_injected": self.faults_injected,
            "frames_lost_in_transit": self.frames_lost_in_transit,
            "dead_device_drops": self.dead_device_drops,
            "blackholed_flows": self.blackholed_flows,
            "blackholed_packets": self.blackholed_packets,
            "measured_recovery_ns": self.time_to_recover_ns,
            "dip_depth": self.dip_depth,
            "dip_duration_ns": self.dip_duration_ns,
            "baseline_gbps": self.baseline_gbps,
        }
        if self.protocol_detect_ns is not None:
            data["protocol_detect_ns"] = self.protocol_detect_ns
        if self.analytical_recovery_ns is not None:
            data["analytical_recovery_ns"] = self.analytical_recovery_ns
        return data


def expected_recovery_ns(net) -> Optional[float]:
    """Appendix E recovery time for ``net``'s protocol parameters.

    Only meaningful for a Stardust network running the live
    reachability protocol; returns ``None`` for static reachability
    and for fabrics without one (the push baseline has no self-healing
    protocol to predict — that asymmetry is the point).
    """
    if getattr(net, "reachability", None) != "dynamic":
        return None
    cfg = net.config
    if not hasattr(cfg, "reachability_period_ns"):
        return None
    fas = max(1, len(getattr(net, "fas", ())) or 1)
    hosts = max(1, net.host_count)
    tiers = net.plan.tiers
    params = ReachabilityParams(
        # t' = c / f: pick f = 1GHz so cycles map 1:1 onto ns.
        core_frequency_hz=1_000_000_000,
        cycles_between_messages=cfg.reachability_period_ns,
        message_bytes=cfg.reachability_cell_bytes,
        hosts_per_fa=max(1, hosts // fas),
        total_hosts=hosts,
        tiers=tiers,
        confirm_threshold=cfg.reachability_miss_threshold,
        link_rate_bps=cfg.fabric_link_rate_bps,
        propagation_ns=(cfg.fabric_propagation_ns,) * (2 * tiers - 1),
    )
    return recovery_time_ns(params)
