"""Compile a :class:`FaultPlan` into engine-scheduled fault events.

The injector resolves the plan's topology coordinates against a built
:class:`~repro.fabrics.base.FabricNetwork` (any registered fabric that
exposes the fault surface: ``edge_devices`` / ``fabric_devices`` /
``edge_uplinks`` / ``fabric_links``), schedules each action on the
simulation engine, and measures resilience:

* a periodic delivered-bytes sampler (faulted runs only — an unfaulted
  run schedules *nothing* extra, keeping golden traces bit-identical);
* loss accounting over every link and device the faults touched;
* recovery detection against the pre-fault throughput baseline,
  reported next to the Appendix E analytical expectation via
  :func:`~repro.faults.metrics.expected_recovery_ns`.

Determinism: actions are scheduled in sorted ``(at_ns, plan-order)``
order at arm time, storms expand through a dedicated ``random.Random``
seeded from the plan, and the sampler period is part of the plan — so
the same spec produces the same digest, run after run, shard after
shard.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.faults.metrics import ResilienceMetrics, expected_recovery_ns
from repro.faults.plan import DISRUPTIVE_KINDS, FaultEvent, FaultPlan
from repro.sim.link import Link


class FaultTargetError(ValueError):
    """A plan names a target the built network does not have."""


class FaultInjector:
    """Arms one plan against one built network (single use)."""

    def __init__(self, plan: FaultPlan, net) -> None:
        self.plan = plan
        self.net = net
        self.sim = net.sim
        self._armed = False
        #: Simulation time at arm: plan times are relative to this, so
        #: a network that pre-ran (protocol convergence) keeps fault
        #: times aligned with the workload timeline.
        self._t0 = 0
        #: Applied actions, for reporting: (time_ns, kind, detail).
        self.applied: List[Tuple[int, str, str]] = []
        self.faults_applied = 0
        #: Links a fault touched (failed or degraded).  Keyed by the
        #: Link object itself (identity hash, insertion order), so the
        #: drop-count sum walks links in the order faults touched them.
        self._touched: Dict[Link, None] = {}
        self._orig_rates: Dict[Link, int] = {}
        #: (time_ns, delivered_bytes, protocol_downs) samples for
        #: recovery/detection measurement.
        self._samples: List[Tuple[int, int, int]] = []
        self._sampler = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every plan event on the engine (idempotent no)."""
        if self._armed:
            raise RuntimeError("fault injector is single-use; already armed")
        self._armed = True
        self._t0 = self.sim.now
        actions: List[Tuple[int, FaultEvent]] = []
        for event in self.plan.events:
            if event.kind == "random_storm":
                actions.extend(self._expand_storm(event))
            else:
                actions.append((event.at_ns, event))
                if event.kind == "degrade":
                    actions.append(
                        (event.until_ns, self._undegrade_event(event))
                    )
        # Stable sort: same-instant actions keep plan order, and the
        # engine's seq numbers then make firing order total.  Plan
        # times are relative to arm time (t0).
        actions.sort(key=lambda pair: pair[0])
        for at_ns, event in actions:
            self._validate_target(event)
            self.sim.at(self._t0 + at_ns, lambda e=event: self._apply(e))
        from repro.sim.engine import PeriodicTask

        if hasattr(self.net, "total_delivered_bytes"):
            self._sampler = PeriodicTask(
                self.sim, self.plan.sample_period_ns, self._sample
            )
        return self

    def _undegrade_event(self, event: FaultEvent) -> FaultEvent:
        """The synthetic restore ending a degrade interval."""
        return FaultEvent(
            "link_up", event.until_ns, edge=event.edge, uplink=event.uplink
        )

    def _expand_storm(
        self, storm: FaultEvent
    ) -> List[Tuple[int, FaultEvent]]:
        """Deterministically expand a storm into link_down/up pairs."""
        rng = random.Random(storm.seed)
        universe = [
            (edge, uplink)
            for edge in range(len(self.net.edge_devices()))
            for uplink in range(len(self.net.edge_uplinks(edge)))
        ]
        if not universe:
            raise FaultTargetError("network has no edge uplinks to storm")
        count = storm.count
        if count <= len(universe):
            targets = rng.sample(universe, count)
        else:  # more failures than links: repeats allowed
            targets = [rng.choice(universe) for _ in range(count)]
        window = max(1, storm.until_ns - storm.at_ns)
        actions = []
        for edge, uplink in targets:
            t_down = storm.at_ns + rng.randrange(window)
            actions.append(
                (t_down, FaultEvent(
                    "link_down", t_down, edge=edge, uplink=uplink
                ))
            )
            t_up = t_down + storm.downtime_ns
            actions.append(
                (t_up, FaultEvent(
                    "link_up", t_up, edge=edge, uplink=uplink
                ))
            )
        return actions

    # ------------------------------------------------------------------
    # Target resolution (topology coordinates -> live objects)
    # ------------------------------------------------------------------
    def _validate_target(self, event: FaultEvent) -> None:
        """Resolve the event's target now: bad plans fail at arm time,
        not halfway through a long simulation."""
        if event.edge is not None and event.uplink is not None:
            self._uplink_pair(event.edge, event.uplink)
        elif event.element is not None:
            self._device("element", event.element)
        elif event.edge is not None:
            self._device("edge", event.edge)
    def _uplink_pair(self, edge: int, uplink: int) -> List[Link]:
        """Both simplex directions of one edge uplink."""
        try:
            ups = self.net.edge_uplinks(edge)
        except IndexError:
            raise FaultTargetError(f"no edge device {edge}") from None
        if not 0 <= uplink < len(ups):
            raise FaultTargetError(
                f"edge {edge} has {len(ups)} uplinks, no uplink {uplink}"
            )
        up = ups[uplink]
        # The reverse direction lives with the upper device.  Parallel
        # links between the same pair are matched by ordinal, so
        # (edge, uplink) always names one physical duplex link.
        parallel = [l for l in ups if l.src is up.src and l.dst is up.dst]
        reverses = [
            l for l in self.net.fabric_links()
            if l.src is up.dst and l.dst is up.src
        ]
        pair = [up]
        ordinal = parallel.index(up)
        if ordinal < len(reverses):
            pair.append(reverses[ordinal])
        return pair

    def _device(self, kind: str, index: int):
        devices = (
            self.net.fabric_devices() if kind == "element"
            else self.net.edge_devices()
        )
        if not 0 <= index < len(devices):
            raise FaultTargetError(
                f"no {kind} {index} (network has {len(devices)})"
            )
        return devices[index]

    def _inbound_links(self, device) -> List[Link]:
        return [l for l in self.net.fabric_links() if l.dst is device]

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_do_{event.kind}")
        handler(event)

    def _record(self, event: FaultEvent, detail: str) -> None:
        self.applied.append((self.sim.now, event.kind, detail))
        if event.kind in DISRUPTIVE_KINDS:
            self.faults_applied += 1

    def _touch(self, link: Link) -> None:
        self._touched[link] = None

    def _do_link_down(self, event: FaultEvent) -> None:
        for link in self._uplink_pair(event.edge, event.uplink):
            self._touch(link)
            link.fail()
        self._record(event, f"edge{event.edge}.uplink{event.uplink}")

    def _do_link_up(self, event: FaultEvent) -> None:
        for link in self._uplink_pair(event.edge, event.uplink):
            orig = self._orig_rates.pop(link, None)
            if orig is not None:
                link.set_rate(orig)
            # Only genuinely-down links get restore(): ending a degrade
            # interval must not reset a live link's serializer state.
            if not link.up:
                link.restore()
        self._record(event, f"edge{event.edge}.uplink{event.uplink}")

    def _do_degrade(self, event: FaultEvent) -> None:
        for link in self._uplink_pair(event.edge, event.uplink):
            self._touch(link)
            self._orig_rates.setdefault(link, link.rate_bps)
            link.set_rate(max(1, int(link.rate_bps * event.factor)))
        self._record(
            event,
            f"edge{event.edge}.uplink{event.uplink} x{event.factor}",
        )

    def _element_links(self, device) -> List[Link]:
        ports = getattr(device, "fabric_ports", None)
        if ports is None:
            ports = getattr(device, "eth_ports", None)
        if ports is not None:
            return [p.out for p in ports]
        return list(getattr(device, "uplinks", ()))

    def _device_down(self, device, event: FaultEvent) -> None:
        """Full device death: its own links via device.fail(), plus
        every fabric link *into* it (those belong to its neighbors)."""
        for link in self._element_links(device):
            self._touch(link)
        for link in self._inbound_links(device):
            self._touch(link)
            link.fail()
        device.fail()
        self._record(event, device.name)

    def _device_up(self, device, event: FaultEvent) -> None:
        device.restore()
        for link in self._inbound_links(device):
            link.restore()
        self._record(event, device.name)

    def _do_element_down(self, event: FaultEvent) -> None:
        self._device_down(self._device("element", event.element), event)

    def _do_element_up(self, event: FaultEvent) -> None:
        self._device_up(self._device("element", event.element), event)

    def _do_edge_down(self, event: FaultEvent) -> None:
        self._device_down(self._device("edge", event.edge), event)

    def _do_edge_up(self, event: FaultEvent) -> None:
        self._device_up(self._device("edge", event.edge), event)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        self._samples.append((
            self.sim.now,
            self.net.total_delivered_bytes(),
            self._protocol_downs(),
        ))

    def _protocol_downs(self) -> int:
        """Links declared down by reachability monitors, fabric-wide."""
        total = 0
        for device in (
            *self.net.edge_devices(), *self.net.fabric_devices()
        ):
            monitor = getattr(device, "_monitor", None)
            if monitor is not None:
                total += monitor.links_declared_down
        return total

    def _protocol_detect_ns(self) -> Optional[int]:
        """Sample-quantized time from first fault to first down
        declaration (None: no monitors, or never detected)."""
        samples = self._samples
        if not samples or samples[-1][2] == 0:
            return None
        t_fault = self._t0 + self.plan.first_fault_ns()
        before = 0
        for t, _, downs in samples:
            if t <= t_fault:
                before = downs
                continue
            if downs > before:
                return t - t_fault
        return None

    def _recovery(self) -> Tuple[int, float, int, float]:
        """(time_to_recover_ns, dip_depth, dip_duration_ns, baseline_gbps).

        Rates are per-sample-period deltas of delivered bytes; the
        baseline is the mean of the last ``baseline_samples`` pre-fault
        rates.  Recovery is the last post-fault instant the rate sat
        below ``recovery_fraction`` x baseline (-1 when the run ended
        still below it; 0 when there was no measurable dip).
        """
        period = self.plan.sample_period_ns
        samples = self._samples
        if len(samples) < 2:
            return 0, 0.0, 0, 0.0
        t_fault = self._t0 + self.plan.first_fault_ns()
        rates = [
            (samples[i][0], samples[i][1] - samples[i - 1][1])
            for i in range(1, len(samples))
        ]
        pre = [r for t, r in rates if t <= t_fault]
        pre = pre[-self.plan.baseline_samples:]
        baseline = sum(pre) / len(pre) if pre else 0.0
        baseline_gbps = baseline * 8 / period
        if baseline <= 0:
            return 0, 0.0, 0, 0.0
        threshold = self.plan.recovery_fraction * baseline
        post = [(t, r) for t, r in rates if t > t_fault]
        below = [(t, r) for t, r in post if r < threshold]
        if not post or not below:
            return 0, 0.0, 0, baseline_gbps
        depth = max(0.0, 1.0 - min(r for _, r in below) / baseline)
        duration = len(below) * period
        if below[-1][0] == post[-1][0]:
            return -1, depth, duration, baseline_gbps  # never recovered
        return below[-1][0] - t_fault, depth, duration, baseline_gbps

    def _device_sum(self, attr: str) -> int:
        total = 0
        for device in (
            *self.net.edge_devices(), *self.net.fabric_devices()
        ):
            total += getattr(device, attr, 0)
        return total

    def _blackholed_flows(self) -> int:
        flows: set = set()
        for device in (
            *self.net.edge_devices(), *self.net.fabric_devices()
        ):
            flows |= getattr(device, "blackholed_flow_ids", set())
        return len(flows)

    def resilience_metrics(self) -> ResilienceMetrics:
        """Snapshot the resilience section (cumulative since t=0)."""
        recover_ns, depth, duration, baseline = self._recovery()
        return ResilienceMetrics(
            faults_injected=self.faults_applied,
            frames_lost_in_transit=sum(
                link.dropped_frames for link in self._touched
            ),
            dead_device_drops=self._device_sum("dead_drops"),
            blackholed_flows=self._blackholed_flows(),
            blackholed_packets=self._device_sum("blackholed"),
            time_to_recover_ns=recover_ns,
            dip_depth=depth,
            dip_duration_ns=duration,
            baseline_gbps=baseline,
            protocol_detect_ns=self._protocol_detect_ns(),
            analytical_recovery_ns=expected_recovery_ns(self.net),
        )

    def stop(self) -> None:
        """Stop the throughput sampler (teardown)."""
        if self._sampler is not None:
            self._sampler.stop()


def attach_plan(plan: FaultPlan, net) -> FaultInjector:
    """Create, register and arm an injector for ``plan`` on ``net``."""
    injector = FaultInjector(plan, net)
    net.attach_faults(injector)
    injector.arm()
    return injector
