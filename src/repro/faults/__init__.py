"""Fault injection: declarative failure schedules for any fabric.

The paper's resilience story (§5.9, §5.10, Appendix E) stops being a
formula here: a :class:`FaultPlan` attached to a scenario spec compiles
into engine-scheduled link/element/edge failures, degraded-rate
intervals and seeded fault storms, and every faulted run reports a
:class:`ResilienceMetrics` section (measured recovery time next to the
Appendix E analytical value, throughput dip, blackholed flows, frames
lost in transit).
"""

from repro.faults.injector import FaultInjector, FaultTargetError, attach_plan
from repro.faults.metrics import ResilienceMetrics, expected_recovery_ns
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    degrade,
    edge_down,
    edge_up,
    element_down,
    element_up,
    link_down,
    link_up,
    random_storm,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultTargetError",
    "ResilienceMetrics",
    "attach_plan",
    "degrade",
    "edge_down",
    "edge_up",
    "element_down",
    "element_up",
    "expected_recovery_ns",
    "link_down",
    "link_up",
    "random_storm",
]
