"""Workloads: the traffic the evaluation figures are driven by."""

from repro.workloads.distributions import (
    EmpiricalDistribution,
    FLOW_SIZES,
    PACKET_SIZE_MIXES,
    flow_size_distribution,
    packet_size_distribution,
)
from repro.workloads.generator import RateInjector, UniformRandomTraffic
from repro.workloads.incast import IncastResult, run_incast
from repro.workloads.permutation import (
    derangement,
    host_permutation,
    start_permutation_flows,
)

__all__ = [
    "EmpiricalDistribution",
    "PACKET_SIZE_MIXES",
    "FLOW_SIZES",
    "packet_size_distribution",
    "flow_size_distribution",
    "RateInjector",
    "UniformRandomTraffic",
    "derangement",
    "host_permutation",
    "start_permutation_flows",
    "run_incast",
    "IncastResult",
]
