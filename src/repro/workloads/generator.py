"""Open-loop traffic injectors for fabric-level experiments.

The §6.2 queueing study (Fig 9) does not involve transports: Fabric
Adapters are loaded at a controlled utilization with packets to
uniformly random destinations.  :class:`RateInjector` produces exactly
that — a Poisson packet stream at a fraction of a host port's rate —
and :class:`UniformRandomTraffic` wires one injector per host.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.net.addressing import PortAddress
from repro.net.packet import Packet, wire_size
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.units import SECOND
from repro.workloads.distributions import EmpiricalDistribution


class RateInjector(Entity):
    """A host that injects packets open-loop at a target rate.

    ``utilization`` is relative to ``line_rate_bps``; inter-arrival
    times are exponential (Poisson arrivals — the worst-case model of
    §4.2.1).  Destinations are drawn uniformly from ``destinations``.
    Arriving packets are counted and discarded.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        address: PortAddress,
        destinations: Sequence[PortAddress],
        line_rate_bps: int,
        utilization: float,
        rng: random.Random,
        packet_bytes: int = 1000,
        size_dist: Optional[EmpiricalDistribution] = None,
    ) -> None:
        super().__init__(sim, name)
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        if not destinations:
            raise ValueError("need at least one destination")
        self.address = address
        self.destinations = list(destinations)
        self.line_rate_bps = line_rate_bps
        self.utilization = utilization
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.size_dist = size_dist
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin injecting (first packet after one random gap)."""
        if self.utilization == 0 or self._running:
            return
        self._running = True
        self.sim.schedule(self._next_gap(), self._inject)

    def stop(self) -> None:
        """Stop injecting after the current event."""
        self._running = False

    def _mean_gap_ns(self, size_bytes: int) -> float:
        # Pace by on-wire bytes so "utilization" means wire utilization
        # — at 64B the Ethernet preamble/IPG is a third of the wire.
        rate = self.line_rate_bps * self.utilization
        return wire_size(size_bytes) * 8 * SECOND / rate

    def _next_gap(self) -> int:
        size = self._peek_size
        return max(1, int(self.rng.expovariate(1.0) * self._mean_gap_ns(size)))

    @property
    def _peek_size(self) -> int:
        # Use the mean size for pacing so utilization is honoured even
        # with a size distribution.
        if self.size_dist is not None:
            return int(self.size_dist.mean())
        return self.packet_bytes

    def _inject(self) -> None:
        if not self._running:
            return
        size = (
            self.size_dist.sample_int(self.rng)
            if self.size_dist is not None
            else self.packet_bytes
        )
        dst = self.rng.choice(self.destinations)
        packet = Packet(
            size_bytes=size,
            src=self.address,
            dst=dst,
            created_ns=self.sim.now,
        )
        self.packets_sent += 1
        self.bytes_sent += size
        self.ports[0].send(packet, packet.wire_bytes)
        self.sim.schedule(self._next_gap(), self._inject)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Link) -> None:
        """Count an arriving packet (traffic sink side)."""
        self.packets_received += 1
        self.bytes_received += packet.size_bytes


class UniformRandomTraffic:
    """One :class:`RateInjector` per host; destinations exclude the
    sender's own Fabric Adapter (cross-fabric traffic only)."""

    def __init__(
        self,
        network,
        addresses: Sequence[PortAddress],
        utilization: float,
        packet_bytes: int = 1000,
        size_dist: Optional[EmpiricalDistribution] = None,
        seed: int = 1,
    ) -> None:
        self.network = network
        self.injectors: List[RateInjector] = []
        rng_root = random.Random(seed)
        line_rate = getattr(
            network, "config", None
        )
        if line_rate is not None and hasattr(line_rate, "host_link_rate_bps"):
            rate = line_rate.host_link_rate_bps
        else:
            rate = network.host_link_rate_bps
        for address in addresses:
            others = [a for a in addresses if a.fa != address.fa]
            injector = RateInjector(
                network.sim,
                f"inj{address.fa}.{address.port}",
                address,
                others,
                rate,
                utilization,
                random.Random(rng_root.getrandbits(48)),
                packet_bytes=packet_bytes,
                size_dist=size_dist,
            )
            network.attach_host(address, injector)
            self.injectors.append(injector)

    def start(self) -> None:
        """Start every injector."""
        for injector in self.injectors:
            injector.start()

    def stop(self) -> None:
        """Stop every injector."""
        for injector in self.injectors:
            injector.stop()

    def total_sent(self) -> int:
        """Packets injected across all hosts."""
        return sum(i.packets_sent for i in self.injectors)

    def total_received(self) -> int:
        """Packets delivered across all hosts."""
        return sum(i.packets_received for i in self.injectors)
