"""Incast: a frontend fans out requests, all backends answer at once.

Fig 10(c) measures the first and last flow completion times as the
number of backends grows; §5.4 argues Stardust absorbs the burst in the
*ingress* buffers of all source Fabric Adapters with zero fabric loss
and near-even completion (fairness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.units import MILLISECOND


@dataclass
class IncastResult:
    """Outcome of one incast round."""

    n_backends: int
    response_bytes: int
    first_fct_ns: Optional[int]
    last_fct_ns: Optional[int]
    completed: int
    fabric_drops: int

    @property
    def all_completed(self) -> bool:
        """Whether every backend's response finished."""
        return self.completed == self.n_backends

    @property
    def fairness_spread(self) -> Optional[float]:
        """last/first completion ratio — 1.0 is perfectly fair."""
        if not self.first_fct_ns or not self.last_fct_ns:
            return None
        return self.last_fct_ns / self.first_fct_ns


def run_incast(
    network,
    hosts: Dict[PortAddress, object],
    tracker,
    frontend: PortAddress,
    backends: Sequence[PortAddress],
    response_bytes: int = 450_000,
    sender_cls=None,
    timeout_ns: int = 2_000 * MILLISECOND,
    fabric_drops_fn=None,
    receiver_factory=None,
    **sender_kwargs,
) -> IncastResult:
    """Run one incast round and collect first/last FCTs.

    The request fan-out is abstracted away (requests are tiny); all
    backends start their responses at t=now, which is the worst case.
    ``receiver_factory(frontend_host, flow)`` may pre-install a custom
    receiver on the frontend per flow (DCQCN's notification point).
    """
    flows: List[Flow] = []
    for backend in backends:
        flow = Flow(
            src=backend, dst=frontend, size_bytes=response_bytes,
            start_ns=network.sim.now,
        )
        host = hosts[backend]
        if receiver_factory is not None:
            sink = hosts[frontend]
            sink.install_receiver(receiver_factory(sink, flow))
        if sender_cls is not None:
            host.start_flow(flow, sender_cls=sender_cls, **sender_kwargs)
        else:
            host.start_flow(flow, **sender_kwargs)
        flows.append(flow)

    network.run(timeout_ns)

    fcts = sorted(
        tracker.get(f.flow_id).fct_ns
        for f in flows
        if tracker.get(f.flow_id).fct_ns is not None
    )
    if fabric_drops_fn is not None:
        drops = fabric_drops_fn()
    else:
        drops = network.fabric_drop_count()
    return IncastResult(
        n_backends=len(backends),
        response_bytes=response_bytes,
        first_fct_ns=fcts[0] if fcts else None,
        last_fct_ns=fcts[-1] if fcts else None,
        completed=len(fcts),
        fabric_drops=drops,
    )
