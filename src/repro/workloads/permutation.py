"""Permutation workloads: every host sends to one host, receives from
one host (§6.3's throughput experiment)."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.net.addressing import PortAddress
from repro.net.flow import Flow


def derangement(
    n: int, rng: random.Random, forbid=None
) -> List[int]:
    """A random permutation of range(n) with no fixed points.

    ``forbid(i, j)`` may veto mapping i -> j (used to keep permutation
    traffic off the local Fabric Adapter).  Rejection-sampled; raises
    after too many attempts if the constraints are unsatisfiable.
    """
    if n < 2:
        raise ValueError("derangement needs n >= 2")
    perm = list(range(n))
    for _ in range(10_000):
        rng.shuffle(perm)
        ok = all(
            i != p and (forbid is None or not forbid(i, p))
            for i, p in enumerate(perm)
        )
        if ok:
            return list(perm)
    raise RuntimeError("could not satisfy derangement constraints")


def host_permutation(
    addresses: Sequence[PortAddress],
    rng: random.Random,
    cross_fa_only: bool = True,
) -> Dict[PortAddress, PortAddress]:
    """Map each address to a distinct destination address."""
    n = len(addresses)
    forbid = None
    if cross_fa_only:
        forbid = lambda i, j: addresses[i].fa == addresses[j].fa
    perm = derangement(n, rng, forbid=forbid)
    return {addresses[i]: addresses[p] for i, p in enumerate(perm)}


def start_permutation_flows(
    hosts: Dict[PortAddress, object],
    mapping: Dict[PortAddress, PortAddress],
    size_bytes: Optional[int] = None,
    sender_cls=None,
    mptcp_subflows: Optional[int] = None,
    receiver_factory=None,
    **sender_kwargs,
) -> List[Flow]:
    """Start one flow per mapping entry; returns the flow descriptors.

    ``receiver_factory(dst_host, flow)`` may build a custom receiver to
    pre-install on the destination before the sender starts — DCQCN's
    notification point, for instance — so transports that need one
    share this flow-start path instead of hand-rolling their own loop.
    """
    flows = []
    for src, dst in mapping.items():
        flow = Flow(src=src, dst=dst, size_bytes=size_bytes)
        host = hosts[src]
        if receiver_factory is not None:
            receiver = hosts[dst]
            receiver.install_receiver(receiver_factory(receiver, flow))
        if mptcp_subflows is not None:
            from repro.transport.mptcp import MptcpConnection

            MptcpConnection(
                host, flow, n_subflows=mptcp_subflows, **sender_kwargs
            ).start()
        elif sender_cls is not None:
            host.start_flow(flow, sender_cls=sender_cls, **sender_kwargs)
        else:
            host.start_flow(flow, **sender_kwargs)
        flows.append(flow)
    return flows
