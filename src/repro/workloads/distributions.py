"""Empirical traffic distributions.

The paper drives Fig 8(b) and Fig 10(b) with Facebook production traces
(Roy et al., "Inside the Social Network's (Datacenter) Network",
SIGCOMM 2015 — the paper's [74]).  The traces themselves are not
public, so this module encodes *synthetic CDFs with the published
shape*: Web traffic is dominated by small packets, Hadoop by
MTU-size packets, DB (cache) sits between, and Web flow sizes are
heavy-tailed with most flows a few KB and a tail into the MB range.
Only these shapes — small-vs-large mix, tail weight — affect the
reproduced figures.
"""

from __future__ import annotations

# repro-lint: allow-file=API001 -- bisect here is CDF inversion over a static probability table, not event ordering
import bisect
import random
from typing import Dict, List, Sequence, Tuple


class EmpiricalDistribution:
    """A CDF-table sampler: [(value, cumulative_probability), ...]."""

    def __init__(self, cdf: Sequence[Tuple[float, float]], name: str = ""):
        if not cdf:
            raise ValueError("empty CDF")
        probs = [p for _, p in cdf]
        if probs != sorted(probs) or not 0 < probs[0] <= 1:
            raise ValueError("CDF probabilities must be non-decreasing")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        self.name = name
        self._values = [v for v, _ in cdf]
        self._probs = probs

    def sample(self, rng: random.Random) -> float:
        """Draw one value (inverse-transform on the table)."""
        u = rng.random()
        index = bisect.bisect_left(self._probs, u)
        if index >= len(self._values):
            index = len(self._values) - 1
        return self._values[index]

    def sample_int(self, rng: random.Random) -> int:
        """Draw one value as an int."""
        return int(self.sample(rng))

    def mean(self) -> float:
        """Expected value of the table distribution."""
        total = 0.0
        prev = 0.0
        for value, prob in zip(self._values, self._probs):
            total += value * (prob - prev)
            prev = prob
        return total

    @property
    def support(self) -> List[float]:
        """The distinct values the table can produce."""
        return list(self._values)


#: Packet-size mixes (bytes -> cumulative probability), shaped after
#: Roy et al.'s per-service packet-size CDFs.  SYNTHETIC approximations.
PACKET_SIZE_MIXES: Dict[str, List[Tuple[int, float]]] = {
    # Web servers: median well under 200B, few full-MTU packets.
    "web": [
        (64, 0.30),
        (128, 0.55),
        (256, 0.72),
        (512, 0.82),
        (1024, 0.92),
        (1500, 1.00),
    ],
    # Hadoop: bimodal — ACK-size minimum-size packets plus MTU data.
    "hadoop": [
        (64, 0.25),
        (256, 0.32),
        (512, 0.37),
        (1024, 0.45),
        (1500, 1.00),
    ],
    # Cache/DB: mixed object sizes.
    "db": [
        (64, 0.25),
        (128, 0.42),
        (256, 0.58),
        (512, 0.72),
        (1024, 0.86),
        (1500, 1.00),
    ],
}

#: Flow-size CDFs (bytes).  "web" follows the heavy-tailed Facebook Web
#: shape used for the paper's FCT experiment (most flows a few KB, a
#: tail into megabytes).  SYNTHETIC approximations.
FLOW_SIZES: Dict[str, List[Tuple[int, float]]] = {
    "web": [
        (1_000, 0.15),
        (2_000, 0.30),
        (5_000, 0.50),
        (10_000, 0.62),
        (30_000, 0.72),
        (100_000, 0.82),
        (300_000, 0.90),
        (1_000_000, 0.96),
        (3_000_000, 0.99),
        (10_000_000, 1.00),
    ],
    "hadoop": [
        (10_000, 0.10),
        (100_000, 0.30),
        (1_000_000, 0.60),
        (10_000_000, 0.90),
        (100_000_000, 1.00),
    ],
}


def packet_size_distribution(workload: str) -> EmpiricalDistribution:
    """The packet-size sampler for ``workload`` (web/hadoop/db)."""
    try:
        cdf = PACKET_SIZE_MIXES[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; "
            f"choose from {sorted(PACKET_SIZE_MIXES)}"
        ) from None
    return EmpiricalDistribution(cdf, name=f"pkt-{workload}")


def flow_size_distribution(workload: str) -> EmpiricalDistribution:
    """The flow-size sampler for ``workload`` (web/hadoop)."""
    try:
        cdf = FLOW_SIZES[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; choose from {sorted(FLOW_SIZES)}"
        ) from None
    return EmpiricalDistribution(cdf, name=f"flow-{workload}")
