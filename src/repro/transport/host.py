"""Hosts: where transports live.

A :class:`Host` owns one NIC port into whichever fabric it was attached
to, demultiplexes arriving packets to per-flow senders/receivers, and
feeds the shared :class:`~repro.net.flow.FlowTracker` that experiments
read their results from.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.addressing import PortAddress
from repro.net.flow import Flow, FlowTracker
from repro.net.packet import Packet, PauseFrame
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.transport.tcp import TcpReceiver, TcpSender


class Host(Entity):
    """An end host with a single fabric-facing NIC port."""

    #: Default NIC transmit buffer: 100 jumbo frames, matching the
    #: "100 packet output queues" of the paper's §6.3 comparison setup.
    DEFAULT_NIC_BUFFER_BYTES = 100 * 9000
    #: Senders are asked to defer (qdisc backpressure / TCP small
    #: queues) once this much is queued in the NIC, long before the
    #: hard drop limit.  Keeps self-inflicted host queueing — and so
    #: RTT on a lossless fabric — bounded.
    DEFAULT_TX_BACKPRESSURE_BYTES = 4 * 9000

    def __init__(
        self,
        sim: Simulator,
        name: str,
        address: PortAddress,
        tracker: Optional[FlowTracker] = None,
        nic_buffer_bytes: int = DEFAULT_NIC_BUFFER_BYTES,
        tx_backpressure_bytes: int = DEFAULT_TX_BACKPRESSURE_BYTES,
    ) -> None:
        super().__init__(sim, name)
        self.address = address
        self.tracker = tracker or FlowTracker()
        self.nic_buffer_bytes = nic_buffer_bytes
        self.tx_backpressure_bytes = tx_backpressure_bytes
        self._senders: Dict[int, object] = {}
        self._receivers: Dict[int, TcpReceiver] = {}
        self._blocked_senders: list = []
        #: Registry of flows this host receives, for tracker lookups.
        self.packets_received = 0
        self.bytes_received = 0
        self.nic_drops = 0
        #: Set while the Fabric Adapter has PAUSEd us (§5.4).
        self._fc_paused = False
        #: Telemetry hook (see repro.telemetry.spans): when set, every
        #: data packet leaving / arriving at this host is reported.
        #: None by default — the hot paths pay one attribute test.
        self.span_recorder = None

    # ------------------------------------------------------------------
    # NIC
    # ------------------------------------------------------------------
    def attach_port(self, link: Link) -> int:
        """Register a NIC link; hooks sender wake-ups on port 0."""
        index = super().attach_port(link)
        if index == 0:
            # Wake deferred senders as the NIC transmit queue drains.
            link.on_transmit = self._on_nic_transmit
        return index

    def nic_ready(self) -> bool:
        """Whether a windowed sender should emit more data now."""
        if not self.ports or self._fc_paused:
            return False
        return self.ports[0].queued_bytes < self.tx_backpressure_bytes

    def block_on_nic(self, sender) -> None:
        """Register ``sender`` to be woken when the NIC drains."""
        if sender not in self._blocked_senders:
            self._blocked_senders.append(sender)

    def _on_nic_transmit(self, _payload) -> None:
        if self._blocked_senders and self.nic_ready():
            ready, self._blocked_senders = self._blocked_senders, []
            for sender in ready:
                sender.nic_unblocked()

    def output(self, packet: Packet) -> None:
        """Hand a packet to the NIC (the attached fabric link).

        The NIC transmit queue is finite: anything beyond the hard cap
        is dropped (a backstop — windowed senders defer via
        :meth:`nic_ready` long before hitting it).
        """
        if not self.ports:
            raise RuntimeError(f"{self.name} is not attached to a fabric")
        link = self.ports[0]
        if link.queued_bytes + packet.wire_bytes > self.nic_buffer_bytes:
            self.nic_drops += 1
            return
        if self.span_recorder is not None:
            self.span_recorder.packet_out(self.sim.now, packet)
        link.send(packet, packet.wire_bytes)

    def receive(self, packet: Packet, link: Link) -> None:
        """Demultiplex an arriving frame to flow state."""
        if isinstance(packet, PauseFrame):
            # §5.4: the Fabric Adapter backpressures the host.
            self._fc_paused = packet.pause
            if not packet.pause:
                self._on_nic_transmit(None)  # wake deferred senders
            return
        if packet.is_cnp:
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_cnp(packet)  # type: ignore[attr-defined]
            return
        if packet.is_ack:
            sender = self._senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet)  # type: ignore[attr-defined]
            return
        # Data packet.
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        if self.span_recorder is not None:
            self.span_recorder.packet_in(self.sim.now, packet)
        receiver = self._receivers.get(packet.flow_id)
        if receiver is None:
            receiver = TcpReceiver(self, packet.flow_id)
            self._receivers[packet.flow_id] = receiver
        fresh = receiver.on_data(packet)
        if fresh > 0:
            try:
                self.tracker.record_delivery(
                    packet.flow_id, self.sim.now, fresh
                )
            except KeyError:
                pass  # untracked background flow

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def start_flow(
        self,
        flow: Flow,
        sender_cls=TcpSender,
        register: bool = True,
        start_delay_ns: int = 0,
        **sender_kwargs,
    ):
        """Create a sender for ``flow`` and schedule its start.

        The *destination* host must share this host's ``tracker`` for
        completion times to be recorded (see :func:`make_hosts`).
        """
        if flow.src != self.address:
            raise ValueError(
                f"flow source {flow.src} is not this host ({self.address})"
            )
        if register:
            self.tracker.register(flow)
        sender = sender_cls(self, flow, **sender_kwargs)
        self._senders[flow.flow_id] = sender
        self.sim.schedule(start_delay_ns, sender.start)
        return sender

    def register_subflow_sender(self, flow_id: int, sender) -> None:
        """Route ACKs for ``flow_id`` to ``sender`` (MPTCP subflows)."""
        self._senders[flow_id] = sender

    def install_receiver(self, receiver: TcpReceiver) -> None:
        """Pre-install a custom receiver (e.g. a DCQCN notification
        point) for a flow about to arrive."""
        self._receivers[receiver.flow_id] = receiver

    def sender(self, flow_id: int):
        """The sender object registered for ``flow_id`` (or None)."""
        return self._senders.get(flow_id)


def make_hosts(network, addresses, tracker: Optional[FlowTracker] = None):
    """Create and attach one :class:`Host` per address on ``network``.

    Works with both :class:`~repro.core.network.StardustNetwork` and
    :class:`~repro.baselines.push_fabric.PushFabricNetwork` (anything
    with ``sim`` and ``attach_host``).  All hosts share one tracker.
    """
    tracker = tracker or FlowTracker()
    hosts = {}
    for address in addresses:
        host = Host(
            network.sim,
            f"host{address.fa}.{address.port}",
            address,
            tracker,
        )
        network.attach_host(address, host)
        hosts[address] = host
    return hosts, tracker
