"""DCTCP: ECN-fraction-proportional congestion control.

Standard DCTCP on top of the NewReno machinery: the receiver echoes ECN
marks; the sender maintains an EWMA ``alpha`` of the marked fraction per
window and, once per window that saw marks, shrinks cwnd by
``alpha / 2`` (Alizadeh et al., SIGCOMM 2010 — the paper's [7]).
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.transport.tcp import TcpSender


class DctcpSender(TcpSender):
    """DCTCP sender: NewReno + ECN-proportional decrease."""

    def __init__(self, *args, g: float = 1 / 16, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not 0 < g <= 1:
            raise ValueError("g must be in (0, 1]")
        self.g = g
        self.alpha = 0.0
        self._window_end = self.cwnd  # byte seq closing the current window
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._cut_this_window = False

    def _grow_cwnd(self, acked_bytes: int, packet: Packet) -> None:
        self._acked_in_window += acked_bytes
        if packet.ecn_echo:
            self._marked_in_window += acked_bytes
        if self.snd_una >= self._window_end:
            self._end_window()
        if packet.ecn_echo and not self._cut_this_window:
            # React once per window, immediately (DCTCP reacts at the
            # first mark of a window using the running alpha).
            self._cut_this_window = True
            self.cwnd = max(
                self.mss, int(self.cwnd * (1 - self.alpha / 2))
            )
            return
        super()._grow_cwnd(acked_bytes, packet)

    def _end_window(self) -> None:
        if self._acked_in_window > 0:
            fraction = self._marked_in_window / self._acked_in_window
            self.alpha = (1 - self.g) * self.alpha + self.g * fraction
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._cut_this_window = False
        self._window_end = self.snd_una + max(self.cwnd, self.mss)
