"""DCQCN: rate-based congestion control for RDMA-style traffic.

Zhu et al. (SIGCOMM 2015, the paper's [82]), modelled at the fidelity
the §6.3 comparison needs: a paced sender; the receiver turns ECN marks
into CNPs (at most one per ``cnp_interval``); the sender's reaction
point does multiplicative decrease with EWMA ``alpha``, then recovers
through fast-recovery / additive-increase stages driven by a timer.
Loss (rare for DCQCN's lossless intent, common on a pushed fabric
without PFC) falls back to go-back-N on RTO, inherited from the base
machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.packet import Packet
from repro.sim.engine import PeriodicTask
from repro.sim.units import MICROSECOND, SECOND
from repro.transport.tcp import TcpReceiver, TcpSender

if TYPE_CHECKING:
    from repro.transport.host import Host


class DcqcnSender(TcpSender):
    """Rate-paced sender with DCQCN reaction/recovery state."""

    def __init__(
        self,
        host: "Host",
        flow,
        line_rate_bps: int = 50_000_000_000,
        g: float = 1 / 16,
        rate_increase_timer_ns: int = 55 * MICROSECOND,
        additive_increase_bps: int = 2_000_000_000,
        min_rate_bps: int = 100_000_000,
        fast_recovery_rounds: int = 5,
        **kwargs,
    ) -> None:
        # A huge static window: DCQCN is rate-limited, not window-limited.
        kwargs.setdefault("init_cwnd_mss", 10_000)
        super().__init__(host, flow, **kwargs)
        self.line_rate_bps = line_rate_bps
        self.g = g
        self.alpha = 1.0
        self.rc_bps = float(line_rate_bps)  # current rate
        self.rt_bps = float(line_rate_bps)  # target rate
        self.min_rate_bps = min_rate_bps
        self.additive_increase_bps = additive_increase_bps
        self.fast_recovery_rounds = fast_recovery_rounds
        self._recovery_stage = 0
        self.cnps_received = 0
        self._pacing_armed = False
        self._timer = PeriodicTask(
            host.sim, rate_increase_timer_ns, self._increase
        )

    # ------------------------------------------------------------------
    # Pacing: replace the windowed _try_send with a rate loop.
    # ------------------------------------------------------------------
    def _try_send(self) -> None:
        if self.done or self._pacing_armed:
            return
        self._pacing_armed = True
        self._pace()

    def _pace(self) -> None:
        if self.done:
            self._pacing_armed = False
            return
        remaining = self._remaining()
        if remaining is not None and remaining <= 0:
            self._pacing_armed = False
            return
        size = self.mss
        if remaining is not None:
            size = min(size, remaining)
        self._emit(self.snd_nxt, size)
        self.snd_nxt += size
        self._arm_rto()
        # DCQCN's current rate is float state by construction (the
        # multiplicative decrease/recovery algebra); the derived pacing
        # gap is the one sanctioned float-to-ns crossing in transport.
        gap_ns = int((size + 40) * 8 * SECOND / max(self.rc_bps, 1.0))  # repro-lint: allow=DET005 -- rc_bps is float per the DCQCN algorithm; f64 rounding is deterministic
        self.sim.schedule(max(gap_ns, 1), self._pace)

    def on_cnp(self, packet: Packet) -> None:
        """Reaction point: multiplicative decrease."""
        self.cnps_received += 1
        self.alpha = (1 - self.g) * self.alpha + self.g
        self.rt_bps = self.rc_bps
        self.rc_bps = max(
            self.min_rate_bps, self.rc_bps * (1 - self.alpha / 2)
        )
        self._recovery_stage = 0

    def _increase(self) -> None:
        """Timer-driven recovery (fast recovery then additive)."""
        if self.done:
            self._timer.stop()
            return
        self.alpha = (1 - self.g) * self.alpha
        self._recovery_stage += 1
        if self._recovery_stage <= self.fast_recovery_rounds:
            self.rc_bps = (self.rc_bps + self.rt_bps) / 2
        else:
            self.rt_bps = min(
                self.line_rate_bps, self.rt_bps + self.additive_increase_bps
            )
            self.rc_bps = (self.rc_bps + self.rt_bps) / 2
        self.rc_bps = min(self.rc_bps, self.line_rate_bps)

    # DCQCN does not grow a window on ACKs; ACKs only advance snd_una.
    def _grow_cwnd(self, acked_bytes: int, packet: Packet) -> None:
        return

    def _check_done(self) -> None:
        super()._check_done()
        if self.done:
            self._timer.stop()


class DcqcnNotificationPoint(TcpReceiver):
    """Receiver that converts ECN marks into paced CNPs."""

    def __init__(
        self, host: "Host", flow_id: int, cnp_interval_ns: int = 50 * MICROSECOND
    ) -> None:
        super().__init__(host, flow_id)
        self.cnp_interval_ns = cnp_interval_ns
        self._last_cnp_ns = -(10**18)
        self.cnps_sent = 0

    def on_data(self, packet: Packet) -> int:
        """Receive data; emit a paced CNP if it was ECN-marked."""
        fresh = super().on_data(packet)
        if packet.ecn:
            now = self.host.sim.now
            if now - self._last_cnp_ns >= self.cnp_interval_ns:
                self._last_cnp_ns = now
                self.cnps_sent += 1
                cnp = Packet(
                    size_bytes=64,
                    src=packet.dst,
                    dst=packet.src,
                    flow_id=self.flow_id,
                    is_cnp=True,
                    created_ns=now,
                )
                self.host.output(cnp)
        return fresh
