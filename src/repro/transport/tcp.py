"""TCP NewReno at packet granularity.

Byte-sequence TCP with slow start, congestion avoidance, triple-dupack
fast retransmit with NewReno partial-ACK recovery, and an RTO with SRTT
estimation.  It is deliberately a *model*: no handshake, no FIN, no
window scaling — exactly the machinery whose interaction with the
fabric the paper's §6.3 measures, and nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.net.flow import Flow
from repro.net.packet import Packet
from repro.sim.engine import Event, Simulator
from repro.sim.units import MICROSECOND

if TYPE_CHECKING:
    from repro.transport.host import Host


class TcpSender:
    """One direction of a TCP connection (the data sender)."""

    def __init__(
        self,
        host: "Host",
        flow: Flow,
        mss: int = 1460,
        init_cwnd_mss: int = 10,
        min_rto_ns: int = 200 * MICROSECOND,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.host = host
        self.sim: Simulator = host.sim
        self.flow = flow
        self.mss = mss
        self.min_rto_ns = min_rto_ns
        self.on_complete = on_complete

        # Sequence state (bytes).
        self.snd_una = 0
        self.snd_nxt = 0
        #: None for long-running flows.
        self.total_bytes = flow.size_bytes

        # Congestion state.
        self.cwnd = init_cwnd_mss * mss
        self.ssthresh = 2**40
        self.dup_acks = 0
        self.in_recovery = False
        self.recover_point = 0

        # RTT estimation.
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns = 0
        self._send_times: Dict[int, int] = {}

        # RTO timer.
        self._rto_event: Optional[Event] = None
        self.timeouts = 0
        self.fast_retransmits = 0
        self.packets_sent = 0
        self.done = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (fills the initial window)."""
        self._try_send()

    @property
    def flight_size(self) -> int:
        """Unacknowledged bytes currently outstanding."""
        return self.snd_nxt - self.snd_una

    def _remaining(self) -> Optional[int]:
        if self.total_bytes is None:
            return None
        return self.total_bytes - self.snd_nxt

    def _try_send(self) -> None:
        """Send new data while the window (and the NIC) allow."""
        if self.done:
            return
        while self.flight_size < self.cwnd:
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                break
            if not self.host.nic_ready():
                # Qdisc backpressure: resume when the NIC drains.
                self.host.block_on_nic(self)
                break
            size = self.mss
            if remaining is not None:
                size = min(size, remaining)
            self._emit(self.snd_nxt, size)
            self.snd_nxt += size
        self._arm_rto()

    def nic_unblocked(self) -> None:
        """The host NIC drained below its backpressure threshold."""
        self._try_send()

    def _emit(self, seq: int, size: int, retransmit: bool = False) -> None:
        packet = Packet(
            size_bytes=size + 40,  # TCP/IP headers ride along
            src=self.flow.src,
            dst=self.flow.dst,
            flow_id=self.flow.flow_id,
            seq=seq,
            priority=self.flow.priority,
            created_ns=self.sim.now,
        )
        if not retransmit:
            self._send_times[seq] = self.sim.now
        self.packets_sent += 1
        self.host.output(packet)

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        """Process a (possibly duplicate) cumulative ACK."""
        if self.done:
            return
        ack = packet.ack_seq
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self._update_rtt(ack)
            self.snd_una = ack
            self.dup_acks = 0
            if self.in_recovery:
                if ack >= self.recover_point:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # NewReno partial ACK: retransmit the next hole.
                    self._emit(
                        self.snd_una,
                        min(self.mss, self._hole_size()),
                        retransmit=True,
                    )
                    self.cwnd = max(self.mss, self.cwnd - acked + self.mss)
            else:
                self._grow_cwnd(acked, packet)
            self._check_done()
            self._try_send()
        elif ack == self.snd_una and self.flight_size > 0:
            self.dup_acks += 1
            if self.dup_acks == 3 and not self.in_recovery:
                self._fast_retransmit()
            elif self.in_recovery:
                self.cwnd += self.mss  # window inflation
                self._try_send()

    def _grow_cwnd(self, acked_bytes: int, packet: Packet) -> None:
        """Slow start / congestion avoidance.  Subclasses hook here."""
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)
        else:
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def _hole_size(self) -> int:
        return max(self.mss, self.snd_nxt - self.snd_una)

    def _fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        self.ssthresh = max(2 * self.mss, self.flight_size // 2)
        self.recover_point = self.snd_nxt
        self.in_recovery = True
        self.cwnd = self.ssthresh + 3 * self.mss
        self._emit(self.snd_una, self.mss, retransmit=True)

    # ------------------------------------------------------------------
    # RTT / RTO
    # ------------------------------------------------------------------
    def _update_rtt(self, ack: int) -> None:
        sent = None
        for seq in list(self._send_times):
            if seq < ack:
                stamp = self._send_times.pop(seq)
                if sent is None or stamp > sent:
                    sent = stamp
        if sent is None:
            return
        sample = self.sim.now - sent
        if self.srtt_ns is None:
            self.srtt_ns = sample
            self.rttvar_ns = sample // 2
        else:
            self.rttvar_ns = (
                3 * self.rttvar_ns + abs(self.srtt_ns - sample)
            ) // 4
            self.srtt_ns = (7 * self.srtt_ns + sample) // 8

    @property
    def rto_ns(self) -> int:
        """Current retransmission timeout (SRTT + 4*RTTVAR, floored)."""
        if self.srtt_ns is None:
            return self.min_rto_ns
        return max(self.min_rto_ns, self.srtt_ns + 4 * self.rttvar_ns)

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.flight_size > 0 and not self.done:
            self._rto_event = self.sim.schedule(self.rto_ns, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.done or self.flight_size == 0:
            return
        self.timeouts += 1
        self.ssthresh = max(2 * self.mss, self.flight_size // 2)
        self.cwnd = self.mss
        self.in_recovery = False
        self.dup_acks = 0
        self.snd_nxt = self.snd_una  # go-back-N from the hole
        self._try_send()

    # ------------------------------------------------------------------
    def _check_done(self) -> None:
        if (
            self.total_bytes is not None
            and self.snd_una >= self.total_bytes
            and not self.done
        ):
            self.done = True
            if self._rto_event is not None:
                self._rto_event.cancel()
            if self.on_complete is not None:
                self.on_complete()


class TcpReceiver:
    """Cumulative-ACK receiver with out-of-order buffering."""

    def __init__(self, host: "Host", flow_id: int, ack_priority: int = 0):
        self.host = host
        self.flow_id = flow_id
        self.ack_priority = ack_priority
        self.rcv_nxt = 0
        #: Buffered out-of-order byte ranges, merged and sorted.
        self._ranges: List[Tuple[int, int]] = []
        self.acks_sent = 0

    def on_data(self, packet: Packet) -> int:
        """Process a data packet; returns newly in-order payload bytes."""
        payload = packet.size_bytes - 40
        start, end = packet.seq, packet.seq + payload
        before = self.rcv_nxt
        if end > self.rcv_nxt:
            self._insert(max(start, self.rcv_nxt), end)
            self._advance()
        self._send_ack(packet)
        return self.rcv_nxt - before

    def _insert(self, start: int, end: int) -> None:
        merged: List[Tuple[int, int]] = []
        ranges = sorted([*self._ranges, (start, end)])
        for s, e in ranges:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        self._ranges = merged

    def _advance(self) -> None:
        while self._ranges and self._ranges[0][0] <= self.rcv_nxt:
            s, e = self._ranges.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, e)

    def _send_ack(self, data: Packet) -> None:
        ack = Packet(
            size_bytes=64,
            src=data.dst,
            dst=data.src,
            flow_id=self.flow_id,
            is_ack=True,
            ack_seq=self.rcv_nxt,
            ecn_echo=data.ecn,
            priority=self.ack_priority,
            created_ns=self.host.sim.now,
        )
        self.acks_sent += 1
        self.host.output(ack)
