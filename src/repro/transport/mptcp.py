"""Multipath TCP: several subflows, coupled congestion control.

Raiciu et al. (SIGCOMM 2011, the paper's [72]) modelled as in the §6.3
comparison: one logical transfer striped over ``n_subflows`` TCP
subflows, each with a distinct flow id (so ECMP hashes them onto
different paths), with Linked-Increases (LIA) coupling: subflow ``i``
increases per ACK by ``min(alpha * acked / cwnd_total, acked / cwnd_i)``
where ``alpha`` follows RFC 6356.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.net.flow import Flow
from repro.net.packet import Packet
from repro.transport.tcp import TcpSender

if TYPE_CHECKING:
    from repro.transport.host import Host


class _Subflow(TcpSender):
    """A TCP subflow whose window growth is coupled to its siblings."""

    def __init__(self, connection: "MptcpConnection", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.connection = connection

    def _grow_cwnd(self, acked_bytes: int, packet: Packet) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, self.mss)
            return
        conn = self.connection
        alpha = conn.lia_alpha()
        total = conn.total_cwnd()
        coupled = alpha * acked_bytes * self.mss / max(total, self.mss)
        uncoupled = acked_bytes * self.mss / self.cwnd
        self.cwnd += max(1, int(min(coupled, uncoupled)))


class MptcpConnection:
    """A striped multi-subflow transfer."""

    def __init__(
        self,
        host: "Host",
        flow: Flow,
        n_subflows: int = 8,
        mss: int = 1460,
        on_complete: Optional[Callable[[], None]] = None,
        **sender_kwargs,
    ) -> None:
        if n_subflows < 1:
            raise ValueError("need at least one subflow")
        self.host = host
        self.flow = flow
        self.n_subflows = n_subflows
        self.on_complete = on_complete
        self._completed = 0
        self.subflows: List[_Subflow] = []

        # Stripe the transfer across subflows.  Long-running flows get
        # long-running subflows.
        if flow.size_bytes is None:
            shares = [None] * n_subflows
        else:
            base = flow.size_bytes // n_subflows
            shares = [base] * n_subflows
            shares[0] += flow.size_bytes - base * n_subflows
            shares = [s for s in shares if s and s > 0]

        host.tracker.register(flow)
        for share in shares:
            subflow_desc = Flow(
                src=flow.src,
                dst=flow.dst,
                size_bytes=share,
                start_ns=flow.start_ns,
                priority=flow.priority,
            )
            sender = _Subflow(
                self,
                host,
                subflow_desc,
                mss=mss,
                on_complete=self._subflow_done,
                **sender_kwargs,
            )
            # Data/ACKs of a subflow carry the *subflow's* flow id (for
            # ECMP diversity) but deliveries count toward the parent:
            # the destination host sees subflow ids, so the tracker maps
            # them via alias registration below.
            host.register_subflow_sender(subflow_desc.flow_id, sender)
            host.tracker.alias(subflow_desc.flow_id, flow.flow_id)
            self.subflows.append(sender)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every subflow."""
        for sender in self.subflows:
            sender.start()

    def total_cwnd(self) -> int:
        """Sum of subflow congestion windows (bytes)."""
        return sum(s.cwnd for s in self.subflows)

    def lia_alpha(self) -> float:
        """RFC 6356 alpha: couples aggregate aggressiveness."""
        flows = [s for s in self.subflows if not s.done]
        if not flows:
            return 1.0
        total = sum(s.cwnd for s in flows)
        # rtt-free approximation (all subflows share src/dst here):
        # alpha = total * max(cwnd_i) / (sum cwnd_i)^2 ... scaled.
        best = max(s.cwnd for s in flows)
        return total * best / max(sum(s.cwnd for s in flows), 1) ** 2 * total

    def _subflow_done(self) -> None:
        self._completed += 1
        if self._completed == len(self.subflows):
            if self.on_complete is not None:
                self.on_complete()

    @property
    def done(self) -> bool:
        """True when every subflow has delivered its share."""
        return self._completed == len(self.subflows)

    def bytes_acked(self) -> int:
        """Bytes cumulatively acknowledged across subflows."""
        return sum(s.snd_una for s in self.subflows)
