"""Host transport models: TCP NewReno, DCTCP, DCQCN, MPTCP.

These run unmodified over either fabric (Stardust or the Ethernet push
fabric), reproducing the §6.3 comparison methodology: the transports
and buffers are identical, only the fabric differs.
"""

from repro.transport.host import Host, make_hosts
from repro.transport.tcp import TcpReceiver, TcpSender
from repro.transport.dctcp import DctcpSender
from repro.transport.dcqcn import DcqcnSender
from repro.transport.mptcp import MptcpConnection

__all__ = [
    "Host",
    "make_hosts",
    "TcpSender",
    "TcpReceiver",
    "DctcpSender",
    "DcqcnSender",
    "MptcpConnection",
]
