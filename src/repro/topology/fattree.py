"""Explicit fat-tree graphs (networkx) for structural analysis.

The event-level builders in :mod:`repro.core.network` and
:mod:`repro.baselines.push_fabric` wire simulator entities; this module
builds the same shapes as annotated graphs so tests and analyses can
check structural invariants (path counts, bisection, diameter) without
running a simulation.
"""

from __future__ import annotations

from typing import List

import networkx as nx


class FatTreeGraph:
    """A folded-Clos / fat-tree as a networkx graph.

    Nodes are strings: ``tor{i}``, ``t1.{i}`` (tier-1), ``t2.{i}``
    (spine).  Node attribute ``kind`` is ``tor``/``fabric``; edges carry
    ``tier`` (1 for ToR<->tier-1, 2 for tier-1<->tier-2).
    """

    def __init__(
        self,
        pods: int,
        tors_per_pod: int,
        t1_per_pod: int,
        spines: int = 0,
    ) -> None:
        if pods < 1 or tors_per_pod < 1 or t1_per_pod < 1:
            raise ValueError("pod shape must be positive")
        if pods > 1 and spines < 1:
            raise ValueError("multi-pod networks need spines")
        self.pods = pods
        self.tors_per_pod = tors_per_pod
        self.t1_per_pod = t1_per_pod
        self.spines = spines
        self.graph = nx.Graph()

        for pod in range(pods):
            for i in range(tors_per_pod):
                tor = f"tor{pod * tors_per_pod + i}"
                self.graph.add_node(tor, kind="tor", pod=pod)
            for j in range(t1_per_pod):
                t1 = f"t1.{pod * t1_per_pod + j}"
                self.graph.add_node(t1, kind="fabric", tier=1, pod=pod)
                for i in range(tors_per_pod):
                    tor = f"tor{pod * tors_per_pod + i}"
                    self.graph.add_edge(tor, t1, tier=1)
        for s in range(spines):
            spine = f"t2.{s}"
            self.graph.add_node(spine, kind="fabric", tier=2)
            for pod in range(pods):
                for j in range(t1_per_pod):
                    t1 = f"t1.{pod * t1_per_pod + j}"
                    self.graph.add_edge(t1, spine, tier=2)

    @property
    def tor_count(self) -> int:
        """Number of ToR nodes."""
        return self.pods * self.tors_per_pod

    @property
    def fabric_count(self) -> int:
        """Number of fabric (non-ToR) switches."""
        return self.pods * self.t1_per_pod + self.spines

    def tors(self) -> List[str]:
        """All ToR node names."""
        return [
            n for n, d in self.graph.nodes(data=True) if d["kind"] == "tor"
        ]

    def shortest_paths(self, src_tor: str, dst_tor: str) -> List[List[str]]:
        """All shortest paths between two ToRs (spray path diversity)."""
        return list(
            nx.all_shortest_paths(self.graph, src_tor, dst_tor)
        )

    def path_diversity(self, src_tor: str, dst_tor: str) -> int:
        """Number of equal-length paths between two ToRs."""
        return len(self.shortest_paths(src_tor, dst_tor))

    def diameter_hops(self) -> int:
        """Longest shortest ToR-to-ToR path (in links)."""
        tors = self.tors()
        best = 0
        lengths = dict(nx.all_pairs_shortest_path_length(self.graph))
        for a in tors:
            for b in tors:
                if a != b:
                    best = max(best, lengths[a][b])
        return best

    def min_edge_cut_between_tors(self, a: str, b: str) -> int:
        """Minimum edge cut between two ToRs (fault tolerance)."""
        return len(nx.minimum_edge_cut(self.graph, a, b))
