"""Fat-tree topology math and graph construction."""

from repro.topology.scaling import (
    SwitchModel,
    fabric_switches,
    fig2_network_devices,
    fig2_network_links,
    fig2_series_hosts_vs_tiers,
    link_bundles,
    links_per_tor,
    max_hosts,
    max_tors,
    min_tiers_for_hosts,
    switches_per_tor,
)
from repro.topology.fattree import FatTreeGraph

__all__ = [
    "SwitchModel",
    "max_tors",
    "max_hosts",
    "fabric_switches",
    "switches_per_tor",
    "link_bundles",
    "links_per_tor",
    "min_tiers_for_hosts",
    "fig2_series_hosts_vs_tiers",
    "fig2_network_devices",
    "fig2_network_links",
    "FatTreeGraph",
]
