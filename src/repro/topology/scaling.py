"""Appendix A: the math behind network size.

Table 2 of the paper gives, for an n-tier fat-tree built from switches
of radix ``k`` (radix counts *link bundles*, i.e. logical ports) and
ToRs with ``t`` uplink ports of bundle size ``l``:

=====  ============  ==========================  ====================  ================
Tiers  Max ToRs      Max switches                # link bundles        links per ToR
=====  ============  ==========================  ====================  ================
1      k             t                           t*k                   t*l
2      k^2/2         3/2 * t*k                   t*k^2                 2*t*l
3      k^3/4         5/4 * t*k^2                 3/4 * t*k^3           3*t*l
4      k^4/8         7/8 * t*k^3                 7/8 * t*k^4           7*t*l
n      k^n/2^(n-1)   (2n-1)/2^(n-1) * t*k^(n-1)  (1-1/2^(n-1))*t*k^n   (2^(n-1)-1)*t*l
=====  ============  ==========================  ====================  ================

The per-row values are authoritative; the closed-form "n" row disagrees
with the explicit rows at n<=2 (a known quirk of the published table),
so this module implements the explicit rows for n<=4 and the closed
form for n>=5, and keeps the columns mutually consistent
(links-per-ToR = bundles*l/ToRs).

The key observation (§2.2): for a fixed switch *bandwidth*, the radix is
``k = total_serial_links / l``, so a link bundle of 1 maximizes k, and
the network size scales as O((k/2)^n) — an O(l^n) = O(N^2)-class
advantage for Stardust's unbundled links.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.sim.units import GBPS


@dataclass(frozen=True)
class SwitchModel:
    """A switch generation: total bandwidth carved into bundled ports.

    ``bandwidth_bps`` is the device's switching capacity;
    ``lane_rate_bps`` the serial-link (SerDes lane) speed; ``bundle``
    how many lanes make one logical port.  The paper's Fig 2 uses a
    12.8 Tbps device with 50G lanes: 256x50G (l=1) ... 32x400G (l=8).
    """

    bandwidth_bps: int
    lane_rate_bps: int = 50 * GBPS
    bundle: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0 or self.lane_rate_bps <= 0:
            raise ValueError("rates must be positive")
        if self.bundle < 1:
            raise ValueError("bundle must be >= 1")
        if self.bandwidth_bps % (self.lane_rate_bps * self.bundle):
            raise ValueError("bandwidth must divide into whole ports")

    @property
    def lanes(self) -> int:
        """Total serial links the bandwidth carves into."""
        return self.bandwidth_bps // self.lane_rate_bps

    @property
    def radix(self) -> int:
        """Number of logical ports (link bundles)."""
        return self.lanes // self.bundle

    @property
    def port_rate_bps(self) -> int:
        """Rate of one logical (bundled) port."""
        return self.lane_rate_bps * self.bundle


def _check(k: int, n: int) -> None:
    if k < 2:
        raise ValueError(f"radix must be >= 2, got {k}")
    if n < 1:
        raise ValueError(f"tiers must be >= 1, got {n}")


def max_tors(k: int, n: int) -> int:
    """Maximum ToRs under an n-tier fabric of radix-k switches."""
    _check(k, n)
    return k**n // 2 ** (n - 1)


def max_hosts(k: int, n: int, hosts_per_tor: int) -> int:
    """Maximum end hosts (Fig 2a's y-axis)."""
    if hosts_per_tor < 1:
        raise ValueError("hosts_per_tor must be >= 1")
    return hosts_per_tor * max_tors(k, n)


def fabric_switches(k: int, t: int, n: int) -> int:
    """Fabric switches (excluding ToRs) in a maximal n-tier network."""
    _check(k, n)
    if t < 1:
        raise ValueError("t must be >= 1")
    value = Fraction(2 * n - 1, 2 ** (n - 1)) * t * k ** (n - 1)
    return int(value)


def switches_per_tor(k: int, t: int, n: int) -> Fraction:
    """Fabric switches amortized per ToR: (2n-1) * t / k."""
    _check(k, n)
    return Fraction((2 * n - 1) * t, k)


def link_bundles(k: int, t: int, n: int) -> int:
    """Total link bundles in a maximal n-tier network (Table 2 rows)."""
    _check(k, n)
    if n == 1:
        return t * k
    if n == 2:
        return t * k**2
    # n >= 3: the closed form matches the explicit rows.
    return int((1 - Fraction(1, 2 ** (n - 1))) * t * k**n)


def links_per_tor(k: int, t: int, l: int, n: int) -> Fraction:
    """Serial links per ToR, consistent with the bundle column."""
    _check(k, n)
    return Fraction(link_bundles(k, t, n) * l, max_tors(k, n))


def min_tiers_for_hosts(
    k: int, hosts: int, hosts_per_tor: int, max_n: int = 8
) -> Optional[int]:
    """Fewest tiers that connect ``hosts`` end hosts; None if > max_n."""
    for n in range(1, max_n + 1):
        if max_hosts(k, n, hosts_per_tor) >= hosts:
            return n
    return None


# ---------------------------------------------------------------------------
# Fig 2 series
# ---------------------------------------------------------------------------

def fig2_series_hosts_vs_tiers(
    switch: SwitchModel, hosts_per_tor: int = 40, tiers: int = 4
) -> List[int]:
    """Fig 2(a): max hosts for 1..tiers tiers with the given switch."""
    return [
        max_hosts(switch.radix, n, hosts_per_tor)
        for n in range(1, tiers + 1)
    ]


def _tor_uplinks(switch: SwitchModel, hosts_per_tor: int,
                 host_rate_bps: int) -> int:
    """ToR uplink ports: enough port capacity to match host bandwidth."""
    downlink_bps = hosts_per_tor * host_rate_bps
    return -(-downlink_bps // switch.port_rate_bps)


def fig2_network_devices(
    switch: SwitchModel,
    hosts: int,
    hosts_per_tor: int = 40,
    host_rate_bps: int = 100 * GBPS,
    include_tors: bool = True,
) -> Optional[int]:
    """Fig 2(b): devices needed for ``hosts`` end hosts.

    Picks the fewest tiers that fit, then scales Table 2's per-ToR
    device count by the actual number of ToRs.  Returns None when the
    switch cannot reach that size within 8 tiers.
    """
    k = switch.radix
    n = min_tiers_for_hosts(k, hosts, hosts_per_tor)
    if n is None:
        return None
    tors = -(-hosts // hosts_per_tor)
    t = _tor_uplinks(switch, hosts_per_tor, host_rate_bps)
    fabric = math.ceil(switches_per_tor(k, t, n) * tors)
    return fabric + (tors if include_tors else 0)


def fig2_network_links(
    switch: SwitchModel,
    hosts: int,
    hosts_per_tor: int = 40,
    host_rate_bps: int = 100 * GBPS,
) -> Optional[int]:
    """Fig 2(c): serial links (not bundles) to build the network."""
    k = switch.radix
    n = min_tiers_for_hosts(k, hosts, hosts_per_tor)
    if n is None:
        return None
    tors = -(-hosts // hosts_per_tor)
    t = _tor_uplinks(switch, hosts_per_tor, host_rate_bps)
    return math.ceil(links_per_tor(k, t, switch.bundle, n) * tors)
