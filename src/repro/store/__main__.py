"""Store maintenance CLI: ``python -m repro.store``.

Examples::

    # Push a deterministic synthetic sweep through the real store path
    # (what the nightly CI job does at 1k cells):
    python -m repro.store synth --cells 1000 --store /tmp/synth-store

    # CRC-verify every block of a store:
    python -m repro.store verify .experiment-store

    # What is this store? (format, versions, shard fill)
    python -m repro.store info .experiment-store

Sweep *queries* live on the experiments CLI
(``python -m repro.experiments query``); this command owns the layer
below — bytes, checksums, shards, synthetic volume.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.store.cells import RecordStore, is_record_store
from repro.store.query import verify_store
from repro.store.synth import fill_store


def cmd_synth(args: argparse.Namespace) -> int:
    store = RecordStore(
        args.store,
        num_shards=args.shards,
        codec=args.codec,
        flush_records=args.flush_records,
    )
    started = time.perf_counter()
    count = fill_store(store, args.cells, seed=args.seed, progress=print)
    elapsed = time.perf_counter() - started
    stats = verify_store(args.store)
    size_kb = stats["shard_bytes"] / 1024
    print(
        f"{count} synthetic cells -> {args.store} in {elapsed:.1f}s "
        f"({count / elapsed:.0f} cells/s)"
    )
    print(
        f"{stats['blocks']} blocks, {size_kb:.0f} KiB on disk "
        f"({size_kb * 1024 / max(count, 1):.0f} B/cell), "
        f"{stats['corrupt_blocks']} corrupt"
    )
    return 0 if stats["corrupt_blocks"] == 0 else 1


def cmd_verify(args: argparse.Namespace) -> int:
    stats = verify_store(args.store)
    for field in (
        "format", "records", "distinct_keys", "blocks",
        "corrupt_blocks", "shard_bytes",
    ):
        print(f"{field + ':':<16} {stats[field]}")
    if stats["corrupt_blocks"]:
        print("INTEGRITY FAILURE: corrupt blocks detected", file=sys.stderr)
        return 1
    print("ok: every record CRC-verified")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if not is_record_store(args.store):
        print(f"{args.store}: legacy one-JSON-per-cell store")
        return 0
    store = RecordStore(args.store)
    print(json.dumps(store.meta, indent=1, sort_keys=True))
    for shard in store.open_shards():
        print(
            f"{shard.path.name}: {len(shard)} records, "
            f"{len(shard.blocks())} blocks, "
            f"{shard.path.stat().st_size} bytes"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="sharded result store maintenance tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser(
        "synth", help="store a deterministic synthetic sweep"
    )
    p_synth.add_argument("--cells", type=int, default=1000)
    p_synth.add_argument("--store", required=True)
    p_synth.add_argument("--seed", type=int, default=1)
    p_synth.add_argument("--shards", type=int, default=None)
    p_synth.add_argument("--codec", choices=("zlib", "bz2"), default="bz2")
    p_synth.add_argument("--flush-records", type=int, default=128)
    p_synth.set_defaults(fn=cmd_synth)

    p_verify = sub.add_parser("verify", help="CRC-verify every record")
    p_verify.add_argument("store")
    p_verify.set_defaults(fn=cmd_verify)

    p_info = sub.add_parser("info", help="store metadata and shard fill")
    p_info.add_argument("store")
    p_info.set_defaults(fn=cmd_info)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":
    sys.exit(main())
