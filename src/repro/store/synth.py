"""Deterministic synthetic sweeps: store-scale data without sim time.

The store's scale story (10^4–10^6 cells) cannot be exercised by
actually simulating that many cells in CI.  This module fabricates
sweeps that are *shaped* like real ones — valid :class:`ScenarioSpec`
grids, plausible :class:`RunResult` payloads, content-hash keys — from
a seed, so the nightly job and the scale tests push realistic volume
through the real put/flush/index/query path in seconds.

Everything derives from ``random.Random(seed)``: the same seed always
synthesizes byte-identical records.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult
    from repro.experiments.spec import ScenarioSpec

_SCENARIOS = (
    ("permutation", "permutation"),
    ("incast", "incast"),
    ("many_to_many", "many_to_many"),
    ("uniform_random", "uniform_random"),
    ("mixed", "mixed"),
)
_FABRIC_KINDS = (("stardust", "tcp"), ("push", "tcp"), ("push", "dctcp"))


def synthetic_cells(
    n: int, seed: int = 1
) -> "Iterator[Tuple[ScenarioSpec, RunResult]]":
    """``n`` deterministic (spec, result) cells, seed axis outermost.

    The grid walks (scenario x fabric/transport) per seed, so any
    prefix selector (``scenario=incast``, ``fabric=push``) matches a
    predictable fraction of the sweep.
    """
    from repro.experiments.runner import RunResult
    from repro.experiments.spec import ScenarioSpec, TopologySpec

    produced = 0
    run_seed = seed
    while produced < n:
        for scenario, workload_kind in _SCENARIOS:
            for fabric, transport in _FABRIC_KINDS:
                if produced >= n:
                    return
                spec = ScenarioSpec(
                    scenario=scenario,
                    topology=TopologySpec(
                        kind="two_tier",
                        params={"num_fas": 4, "hosts_per_fa": 8},
                    ),
                    fabric=fabric,
                    transport=transport,
                    workload={"kind": workload_kind},
                    seed=run_seed,
                )
                yield spec, _synthetic_result(spec, RunResult)
                produced += 1
        run_seed += 1


def _synthetic_result(
    spec: "ScenarioSpec", result_cls: "Callable[..., RunResult]"
) -> "RunResult":
    """A plausible result payload, derived entirely from the spec."""
    rng = random.Random(f"{spec.content_hash()}/synth")
    n_flows = 32
    base = 9.2 if spec.fabric == "stardust" else 6.5
    rates = sorted(
        round(max(0.1, rng.gauss(base, 0.8)), 4) for _ in range(n_flows)
    )
    fcts: List[int] = []
    if spec.workload["kind"] in ("incast", "many_to_many", "mixed"):
        fcts = sorted(
            int(rng.lognormvariate(13.0, 0.6)) for _ in range(n_flows)
        )
    drops = rng.randrange(50) if spec.fabric == "push" else 0
    horizon = spec.warmup_ns + spec.measure_ns
    return result_cls(
        spec_hash=spec.content_hash(),
        scenario=spec.scenario,
        fabric=spec.fabric,
        transport=spec.transport,
        seed=spec.seed,
        flow_rates_gbps=rates,
        fcts_ns=fcts,
        delivered_bytes=int(sum(rates) / 8 * spec.measure_ns / 1e9 * 1e9),
        drops=drops,
        sim_time_ns=horizon,
        events_fired=rng.randrange(1_000_000, 2_000_000),
        metrics={
            "mean_gbps": sum(rates) / len(rates),
            "min_gbps": rates[0],
            "max_gbps": rates[-1],
            "max_voq_depth_cells": rng.randrange(4, 64),
        },
    )


def fill_store(
    store: object,
    n: int,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Put ``n`` synthetic cells into any store speaking ``put()``."""
    count = 0
    for spec, result in synthetic_cells(n, seed=seed):
        store.put(spec, result)  # type: ignore[attr-defined]
        count += 1
        if progress is not None and count % 1000 == 0:
            progress(f"{count}/{n} synthetic cells stored")
    flush = getattr(store, "flush", None)
    if flush is not None:
        flush()
    return count
