"""Import a legacy ``.experiment-store`` directory into a record store.

The legacy layout is one ``<hash>.json`` per cell plus optional
``<hash>.telemetry.jsonl`` sidecars.  Migration reproduces exactly
what the (fixed) legacy ``get()`` would have returned for each cell —
the result dict, with a sidecar's telemetry attached only when the
cell itself stored none — so a migrated store serves bit-identical
``RunResult`` values.  Source files are never modified or removed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.store.cells import DEFAULT_CODEC, RecordStore
from repro.store.meta import STORE_META_NAME


@dataclass
class MigrationReport:
    """What a migration moved (and what it could not)."""

    cells: int = 0
    with_telemetry: int = 0
    skipped: int = 0

    def __str__(self) -> str:
        return (
            f"{self.cells} cells migrated "
            f"({self.with_telemetry} with telemetry, "
            f"{self.skipped} unreadable skipped)"
        )


def migrate_legacy(
    src: Union[str, Path],
    dst: Union[str, Path],
    num_shards: Optional[int] = None,
    codec: str = DEFAULT_CODEC,
) -> MigrationReport:
    """Copy every legacy cell in ``src`` into a record store at ``dst``."""
    src_path = Path(src)
    dst_path = Path(dst)
    if src_path.resolve() == dst_path.resolve():
        raise ValueError(
            "migration source and destination must differ "
            f"(both {src_path})"
        )
    if not src_path.is_dir():
        raise FileNotFoundError(f"legacy store {src_path} does not exist")
    store = RecordStore(dst_path, num_shards=num_shards, codec=codec)
    report = MigrationReport()
    for cell in sorted(src_path.glob("*.json")):
        if cell.name == STORE_META_NAME:
            continue
        try:
            data = json.loads(cell.read_text(encoding="utf-8"))
            spec = data["spec"]
            result = data["result"]
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            report.skipped += 1
            continue
        key = cell.stem
        sidecar = src_path / f"{key}.telemetry.jsonl"
        if result.get("telemetry") is None and sidecar.exists():
            # Mirror the legacy get(): a sidecar only speaks for a cell
            # that stored no telemetry of its own.
            from repro.telemetry.export import read_jsonl

            result = dict(result)
            result["telemetry"] = read_jsonl(sidecar)
            report.with_telemetry += 1
        elif result.get("telemetry") is not None:
            report.with_telemetry += 1
        store.put_record(key, spec, result)
        report.cells += 1
    store.flush()
    return report
