"""Cross-sweep queries: scans, verification, aggregation, trend diffs.

This is the serving layer: everything ``python -m repro.experiments
query`` does lands here.  Reads come in two flavors:

* **indexed** — prefix lookups through the per-shard indexes (the fast
  path for selectors like ``scenario=permutation/fabric=*``);
* **integrity scans** — straight over the shard bytes, verifying every
  CRC, optionally fanning block decompression out over a
  ``multiprocessing`` pool (the ZS ``mpbz2`` trick: compressed blocks
  are independent, so cores scale the scan).

Both flavors also speak the legacy one-JSON-per-cell layout, so a
query works against an unmigrated store — migration is an
optimization, not a prerequisite.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from repro.store.cells import (
    RecordStore,
    is_record_store,
    prefix_from_selector,
    spec_key_from_dict,
)
from repro.store.format import BlockCorruptError, read_block
from repro.store.meta import STORE_META_NAME

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult
    from repro.experiments.summarize import GroupSummary

PathLike = Union[str, os.PathLike]


# ----------------------------------------------------------------------
# Parallel block decoding (the mpbz2/pbz2 pattern)
# ----------------------------------------------------------------------


def _decode_block(args: Tuple[str, int, int]) -> Tuple[int, List[Dict[str, Any]]]:
    """Worker: decompress + parse one block; ``(corrupt, records)``.

    Module-level so it pickles into pool workers; everything it needs
    travels in ``args`` (path, offset, length).
    """
    path, offset, length = args
    with open(path, "rb") as fh:
        fh.seek(offset)
        buf = fh.read(length)
    try:
        payloads, _ = read_block(buf, 0)
    except BlockCorruptError:
        return 1, []
    return 0, [json.loads(p) for p in payloads]


@dataclass
class ScanReport:
    """Outcome of an integrity scan over a store."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    total_records: int = 0
    corrupt_blocks: int = 0
    blocks: int = 0
    shard_bytes: int = 0


def scan_store(
    root: PathLike, selector: str = "", processes: int = 0
) -> ScanReport:
    """CRC-verify every block of a record store, collecting records.

    Returns the latest record per key, filtered by ``selector`` and
    sorted by spec key.  ``processes > 1`` decompresses blocks on a
    pool; block order (and therefore latest-wins dedup) is preserved
    because ``Pool.map`` keeps input order.
    """
    store = RecordStore(root)
    store.flush()
    prefix = prefix_from_selector(selector)
    shards = store.open_shards()
    tasks: List[Tuple[str, int, int]] = []
    shard_bytes = 0
    for shard in shards:
        shard_bytes += shard.path.stat().st_size
        for offset, end in shard.blocks():
            tasks.append((str(shard.path), offset, end - offset))
    # Blocks skipped during open-time tail scans never made the index,
    # so count them up front.
    corrupt = sum(s.corrupt_blocks for s in shards)
    decoded: List[Tuple[int, List[Dict[str, Any]]]]
    if processes and processes > 1 and len(tasks) > 1:
        import multiprocessing

        try:
            with multiprocessing.Pool(min(processes, len(tasks))) as pool:
                decoded = pool.map(_decode_block, tasks)
        except (ImportError, OSError):
            decoded = [_decode_block(t) for t in tasks]
    else:
        decoded = [_decode_block(t) for t in tasks]
    latest: Dict[str, Dict[str, Any]] = {}
    total = 0
    for bad, records in decoded:
        corrupt += bad
        for record in records:
            total += 1
            latest[record["key"]] = record
    matched = [
        record
        for record in latest.values()
        if str(record.get("spec_key", "")).startswith(prefix)
    ]
    matched.sort(key=lambda r: str(r.get("spec_key", "")))
    return ScanReport(
        records=matched,
        total_records=total,
        corrupt_blocks=corrupt,
        blocks=len(tasks),
        shard_bytes=shard_bytes,
    )


# ----------------------------------------------------------------------
# Format-agnostic record access
# ----------------------------------------------------------------------


def _legacy_records(root: Path, prefix: str) -> List[Dict[str, Any]]:
    """Record dicts out of a legacy one-JSON-per-cell directory."""
    records = []
    for path in sorted(root.glob("*.json")):
        if path.name == STORE_META_NAME:
            continue
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(data, dict) or "result" not in data:
            continue
        key = path.stem
        spec = data.get("spec") or {}
        spec_key = spec_key_from_dict(spec, key)
        if not spec_key.startswith(prefix):
            continue
        records.append(
            {
                "key": key,
                "spec_key": spec_key,
                "spec": spec,
                "result": data["result"],
            }
        )
    records.sort(key=lambda r: str(r["spec_key"]))
    return records


def store_records(
    root: PathLike,
    selector: str = "",
    processes: int = 0,
    verify: bool = False,
) -> List[Dict[str, Any]]:
    """Matching records from either store format, spec-key sorted.

    ``verify=True`` (or ``processes > 1``) takes the integrity-scan
    path on record stores; otherwise the indexed prefix lookup.
    """
    path = Path(root)
    if is_record_store(path):
        if verify or (processes and processes > 1):
            return scan_store(path, selector, processes).records
        return list(RecordStore(path).iter_records(selector))
    return _legacy_records(path, prefix_from_selector(selector))


def store_results(
    root: PathLike, selector: str = "", processes: int = 0
) -> "List[RunResult]":
    """Matching results as :class:`RunResult` values (either format)."""
    from repro.experiments.runner import RunResult

    return [
        RunResult.from_dict(record["result"])
        for record in store_records(root, selector, processes)
    ]


def verify_store(root: PathLike) -> Dict[str, Any]:
    """Full CRC verification; summary stats for the CLI."""
    path = Path(root)
    if not is_record_store(path):
        records = _legacy_records(path, "")
        return {
            "format": "legacy",
            "records": len(records),
            "distinct_keys": len(records),
            "blocks": 0,
            "corrupt_blocks": 0,
            "shard_bytes": sum(
                p.stat().st_size for p in path.glob("*.json")
            ),
        }
    report = scan_store(path, "")
    return {
        "format": "record",
        "records": report.total_records,
        "distinct_keys": len(report.records),
        "blocks": report.blocks,
        "corrupt_blocks": report.corrupt_blocks,
        "shard_bytes": report.shard_bytes,
    }


# ----------------------------------------------------------------------
# Trend diffs across sweeps
# ----------------------------------------------------------------------


def _row_map(rows: "List[GroupSummary]") -> "Dict[Tuple[str, str, str], GroupSummary]":
    return {(r.scenario, r.fabric, r.transport): r for r in rows}


def _fmt_delta(base: Optional[float], other: Optional[float]) -> str:
    if base is None or other is None:
        return "-"
    if base == 0:
        return f"{other:+.2f}"
    return f"{(other - base) / base * 100:+.1f}%"


def format_trend_diff(
    base_rows: "List[GroupSummary]",
    other_rows: "List[GroupSummary]",
    base_label: str = "base",
    other_label: str = "other",
) -> str:
    """Per-configuration deltas between two aggregated sweeps.

    Configurations present in only one sweep are listed with the side
    they exist on, so a trend diff also surfaces coverage drift (a
    scenario that silently stopped running is itself a regression).
    """
    base_map = _row_map(base_rows)
    other_map = _row_map(other_rows)
    lines = [
        f"{'configuration':<26} {'mean Gbps':>20} {'p99 FCT ms':>20} "
        f"{'drops':>14}"
    ]
    lines.append(
        f"{'':<26} {base_label:>9} {'-> ' + other_label:>10} "
        f"{base_label:>9} {'-> ' + other_label:>10} {'':>14}"
    )
    for cfg in sorted(set(base_map) | set(other_map)):
        scenario, fabric, transport = cfg
        label = f"{scenario}:{fabric}+{transport}"
        a, b = base_map.get(cfg), other_map.get(cfg)
        if a is None or b is None:
            side = other_label if a is None else base_label
            lines.append(f"{label:<26} (only in {side})")
            continue
        a_rate = a.rates_gbps.mean if a.rates_gbps else None
        b_rate = b.rates_gbps.mean if b.rates_gbps else None
        a_fct = a.fcts_ns.p99 / 1e6 if a.fcts_ns else None
        b_fct = b.fcts_ns.p99 / 1e6 if b.fcts_ns else None
        rate_cell = (
            f"{a_rate:.2f} -> {b_rate:.2f} ({_fmt_delta(a_rate, b_rate)})"
            if a_rate is not None and b_rate is not None
            else "-"
        )
        fct_cell = (
            f"{a_fct:.2f} -> {b_fct:.2f} ({_fmt_delta(a_fct, b_fct)})"
            if a_fct is not None and b_fct is not None
            else "-"
        )
        drop_cell = f"{a.drops} -> {b.drops}"
        lines.append(
            f"{label:<26} {rate_cell:>20} {fct_cell:>20} {drop_cell:>14}"
        )
    return "\n".join(lines)
