"""One append-only shard file plus its index sidecar.

A :class:`Shard` owns a single ``shard-NN.rsd`` file (see
:mod:`repro.store.format` for the byte layout) and its ``.rsx`` index
sidecar.  The contract mirrors what ZNS-style append-only storage
formalizes: writers only ever append whole blocks, readers verify
every checksum, and recovery is positional —

* a **torn tail** (writer killed mid-append) is detected on open and
  truncated away before the next append, losing only the interrupted
  block;
* a **corrupt block** mid-file (bit rot, a flipped byte) fails its CRC,
  is skipped, and the scan resyncs at the next block magic — one bad
  block never poisons the rest of the shard;
* the index sidecar is a cache: stale or missing entries trigger a
  tail rescan of the shard bytes, never the other way around.

Single-writer, multi-reader: appends happen from one process (the
sweep parent); concurrent readers see a consistent prefix.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.store.format import (
    BlockCorruptError,
    CODEC_ZLIB,
    StoreFormatError,
    TruncatedBlockError,
    encode_block,
    encode_shard_header,
    find_block,
    read_block,
    read_shard_header,
)
from repro.store.index import ShardIndex

#: (key, spec_key, payload) — what callers append and scans yield.
Record = Tuple[str, str, bytes]

ExtractFn = Callable[[bytes], Tuple[str, str]]


def default_extract(payload: bytes) -> Tuple[str, str]:
    """Pull ``(key, spec_key)`` out of a JSON record payload."""
    obj = json.loads(payload)
    return str(obj["key"]), str(obj["spec_key"])


class Shard:
    """Appendable, checksummed, indexed record shard."""

    def __init__(
        self,
        path: Path,
        header_meta: Optional[Dict[str, Any]] = None,
        codec: int = CODEC_ZLIB,
        level: int = 6,
        extract: ExtractFn = default_extract,
        create: bool = True,
    ) -> None:
        self.path = Path(path)
        self.index_path = self.path.with_suffix(".rsx")
        self.codec = codec
        self.level = level
        self.extract = extract
        self.index = ShardIndex(self.index_path)
        #: Blocks rejected by CRC/framing checks, over this handle's
        #: lifetime (open-time tail scan + later reads).
        self.corrupt_blocks = 0
        self.header_meta: Dict[str, Any] = {}
        #: End of the last structurally valid block; appends truncate
        #: any torn bytes beyond it first.
        self._valid_end = 0
        self._first_block = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            self._open_existing()
        elif create:
            self._create(header_meta or {})
        else:
            raise FileNotFoundError(self.path)

    # ------------------------------------------------------------------
    # Open / create
    # ------------------------------------------------------------------
    def _create(self, header_meta: Dict[str, Any]) -> None:
        self.header_meta = dict(header_meta)
        header = encode_shard_header(self.header_meta)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # "wb" not "xb": the only way here with an existing file is a
        # zero-byte leftover, which holds no records to protect.
        with self.path.open("wb") as fh:
            fh.write(header)
        self._first_block = len(header)
        self._valid_end = len(header)
        self.index.load(len(header), self._first_block)

    def _open_existing(self) -> None:
        buf = self.path.read_bytes()
        self.header_meta, self._first_block = read_shard_header(buf)
        size = len(buf)
        resume = self.index.load(size, self._first_block)
        self._valid_end = resume
        if resume < size:
            self._scan_tail(buf, resume)

    def _scan_tail(self, buf: bytes, offset: int) -> None:
        """Index every valid block from ``offset`` to EOF.

        Complete blocks beyond the sidecar's coverage (writer killed
        between shard append and index append) are re-indexed; a torn
        final block marks ``_valid_end`` so the next append truncates
        it; corrupt blocks are skipped with a resync.
        """
        size = len(buf)
        while offset < size:
            try:
                payloads, end = read_block(buf, offset)
            except TruncatedBlockError:
                # Torn tail: everything from here is a failed append.
                break
            except BlockCorruptError as exc:
                self.corrupt_blocks += 1
                nxt = find_block(buf, exc.resync_from)
                if nxt < 0:
                    break
                offset = nxt
                continue
            pairs = [self.extract(p) for p in payloads]
            self.index.add_block(offset, end, pairs)
            try:
                self.index.append_line(offset, end, pairs)
            except OSError:
                pass  # read-only media; in-memory index still right
            offset = end
            self._valid_end = end

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, records: List[Record]) -> Tuple[int, int]:
        """Append one block holding ``records``; returns its span.

        The shard write lands before the index write, so a crash
        between the two leaves a complete, recoverable block (the tail
        scan re-indexes it) — never a dangling index entry.
        """
        if not records:
            raise ValueError("append needs at least one record")
        block = encode_block(
            [payload for _, _, payload in records], self.codec, self.level
        )
        size = self.path.stat().st_size
        if size > self._valid_end:
            # Torn tail from a killed writer: cut it off before reuse.
            os.truncate(self.path, self._valid_end)
        with self.path.open("ab") as fh:
            offset = fh.tell()
            fh.write(block)
        end = offset + len(block)
        pairs = [(key, spec_key) for key, spec_key, _ in records]
        self.index.add_block(offset, end, pairs)
        self.index.append_line(offset, end, pairs)
        self._valid_end = end
        return offset, end

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def _read_span(self, offset: int, length: int) -> bytes:
        with self.path.open("rb") as fh:
            fh.seek(offset)
            return fh.read(length)

    def get(self, key: str) -> Optional[bytes]:
        """The latest payload stored under ``key`` (CRC-verified)."""
        span = self.index.get(key)
        if span is None:
            return None
        offset, length = span
        buf = self._read_span(offset, length)
        try:
            payloads, _ = read_block(buf, 0)
        except BlockCorruptError:
            self.corrupt_blocks += 1
            return None
        found: Optional[bytes] = None
        for payload in payloads:
            record_key, _ = self.extract(payload)
            if record_key == key:
                found = payload  # keep scanning: latest in block wins
        return found

    def get_many(self, keys: List[str]) -> Dict[str, bytes]:
        """Latest payloads for ``keys``, decompressing each block once.

        Records that share a block (batched appends) cost one read and
        one decompression between them — the amortization that makes
        prefix queries over 10^4+ cells cheap.
        """
        spans: Dict[Tuple[int, int], List[str]] = {}
        for key in keys:
            span = self.index.get(key)
            if span is not None:
                spans.setdefault(span, []).append(key)
        out: Dict[str, bytes] = {}
        for (offset, length), wanted in sorted(spans.items()):
            buf = self._read_span(offset, length)
            try:
                payloads, _ = read_block(buf, 0)
            except BlockCorruptError:
                self.corrupt_blocks += 1
                continue
            want = set(wanted)
            for payload in payloads:
                record_key, _ = self.extract(payload)
                if record_key in want:
                    out[record_key] = payload  # latest in block wins
        return out

    def keys_for_prefix(self, prefix: str) -> Iterator[Tuple[str, str]]:
        """Indexed ``(spec_key, key)`` pairs under a spec-key prefix."""
        return self.index.prefix_pairs(prefix)

    def blocks(self) -> List[Tuple[int, int]]:
        """Spans of every indexed block (for parallel scans)."""
        return list(self.index.blocks)

    def scan(self) -> Iterator[Record]:
        """Every valid record in file order, straight from the bytes.

        This is the integrity path: it ignores the index, verifies
        every checksum, skips corrupt blocks (counting them) and stops
        at a torn tail.  Later duplicates of a key supersede earlier
        ones; dedup is the caller's policy.
        """
        buf = self.path.read_bytes()
        try:
            _, offset = read_shard_header(buf)
        except StoreFormatError:
            return
        size = len(buf)
        while offset < size:
            try:
                payloads, end = read_block(buf, offset)
            except TruncatedBlockError:
                return
            except BlockCorruptError as exc:
                self.corrupt_blocks += 1
                nxt = find_block(buf, exc.resync_from)
                if nxt < 0:
                    return
                offset = nxt
                continue
            for payload in payloads:
                key, spec_key = self.extract(payload)
                yield key, spec_key, payload
            offset = end

    def __len__(self) -> int:
        return len(self.index)
