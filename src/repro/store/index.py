# repro-lint: allow-file=API001 -- bisect here does sorted-key prefix
# range lookup over an on-disk index; nothing feeds the event scheduler.
"""The in-shard index: content-hash lookup + spec-key prefix ranges.

The shard file is the source of truth; the index is a *cache* of where
each record lives, persisted as an append-only JSONL sidecar so an
index append costs O(1) like the shard append it mirrors.  Each line
covers one block::

    [block_offset, block_end, [[key, spec_key], ...]]

On load the sidecar is validated structurally — lines must advance
monotonically and stay inside the shard file.  The first malformed or
inconsistent line (a torn append, a stale copy) discards that line and
everything after it, and the sidecar is atomically rewritten to the
trusted prefix; the shard tail scan then re-derives whatever was lost.
Trust flows one way: from shard bytes to index, never back.

Two views are maintained in memory:

* ``key -> (block_offset, block_length)`` — latest record wins, which
  is how an append-only store overwrites;
* a sorted list of ``(spec_key, key)`` pairs for prefix range queries
  (``scenario=permutation/fabric=...``) via binary search.
"""

from __future__ import annotations

import bisect
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

BlockSpan = Tuple[int, int]  # (offset, length)
Pairs = List[Tuple[str, str]]  # [(key, spec_key), ...]


class ShardIndex:
    """Record locations for one shard, with a persisted sidecar."""

    def __init__(self, sidecar: Path) -> None:
        self.sidecar = sidecar
        #: key -> (block_offset, block_length); latest append wins.
        self.by_key: Dict[str, BlockSpan] = {}
        #: sorted (spec_key, key) pairs for prefix range scans; a key
        #: re-put under the same spec_key stays listed once.
        self._ordered: List[Tuple[str, str]] = []
        #: every indexed block, in file order: (offset, end).
        self.blocks: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def load(self, file_size: int, first_block: int) -> int:
        """Load the sidecar; returns the offset the shard tail scan
        should resume from (``first_block`` when nothing is usable)."""
        self.by_key.clear()
        self._ordered = []
        self.blocks = []
        try:
            text = self.sidecar.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return first_block
        resume = first_block
        good_lines: List[str] = []
        dirty = False
        for line in text.splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            try:
                offset, end, entries = json.loads(stripped)
                if not (
                    isinstance(offset, int)
                    and isinstance(end, int)
                    and resume <= offset < end <= file_size
                ):
                    dirty = True
                    break
                pairs = [(str(k), str(sk)) for k, sk in entries]
            except (ValueError, TypeError):
                dirty = True
                break
            self._record_block(offset, end, pairs, sort_each=False)
            good_lines.append(stripped)
            resume = end
        self._ordered.sort()
        if dirty:
            self._rewrite(good_lines)
        return resume

    def _rewrite(self, lines: List[str]) -> None:
        """Atomically replace the sidecar with the trusted prefix."""
        tmp = self.sidecar.with_suffix(self.sidecar.suffix + ".tmp")
        try:
            tmp.write_text(
                "".join(line + "\n" for line in lines), encoding="utf-8"
            )
            tmp.replace(self.sidecar)
        except OSError:
            # Read-only media: the in-memory index is still correct;
            # the next writable open will heal the sidecar.
            pass

    def append_line(self, offset: int, end: int, pairs: Pairs) -> None:
        """Persist one block's entries (mirrors the shard append)."""
        line = json.dumps(
            [offset, end, [[k, sk] for k, sk in pairs]],
            separators=(",", ":"),
        )
        with self.sidecar.open("a", encoding="utf-8") as fh:
            fh.write(line)
            fh.write("\n")

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _record_block(
        self, offset: int, end: int, pairs: Pairs, sort_each: bool = True
    ) -> None:
        self.blocks.append((offset, end))
        for key, spec_key in pairs:
            if key not in self.by_key:
                if sort_each:
                    bisect.insort(self._ordered, (spec_key, key))
                else:
                    self._ordered.append((spec_key, key))
            self.by_key[key] = (offset, end - offset)

    def add_block(self, offset: int, end: int, pairs: Pairs) -> None:
        """Register a freshly appended (or tail-scanned) block."""
        self._record_block(offset, end, pairs, sort_each=True)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[BlockSpan]:
        return self.by_key.get(key)

    def prefix_pairs(self, prefix: str) -> Iterator[Tuple[str, str]]:
        """All ``(spec_key, key)`` pairs whose spec_key starts with
        ``prefix``, in spec-key order (empty prefix = everything)."""
        if not prefix:
            yield from self._ordered
            return
        lo = bisect.bisect_left(self._ordered, (prefix, ""))
        for spec_key, key in self._ordered[lo:]:
            if not spec_key.startswith(prefix):
                break
            yield spec_key, key

    def __len__(self) -> int:
        return len(self.by_key)
