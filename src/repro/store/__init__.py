"""Sharded, checksummed experiment-result storage (the ZS lesson).

The legacy result cache kept one JSON file per cell; at the sweep
sizes the runner generates (10^4–10^6 cells) that layout falls over on
file count, bytes and scan time.  This package stores cells as
records in a small, fixed set of append-only shard files::

    .experiment-store/
      store.meta.json        format + schema versions, creation params
      shard-00.rsd           header | block | block | ...
      shard-00.rsx           index sidecar (JSONL, one line per block)
      ...

    block  = BLK1 codec comp_len raw_len crc32 <compressed records>
    record = rec_len crc32 <canonical JSON: key, spec_key, spec, result>

Design properties, in the order they matter:

* **integrity first** — every block and every record is CRC32-framed;
  corruption is detected, skipped and counted, never silently served;
* **append-only** — writers only ever add whole blocks; a killed
  writer costs at most its in-flight block (truncated on next open);
* **indexed** — per-shard indexes map content-hash keys to blocks and
  keep spec keys sorted for prefix range queries
  (``scenario=permutation/fabric=*``);
* **compressed, batched, parallel** — records batch into zlib/bz2
  blocks (5x+ smaller than the legacy layout) that decompress
  independently across a process pool on scans;
* **self-describing** — format/schema versions and creation params
  live in the store and in every shard header, so readers can refuse
  (or adapt to) formats they don't understand.

Entry points: :class:`RecordStore` (the ``get``/``put`` cache protocol
the sweep runner speaks), :func:`open_store` (format auto-detection),
:mod:`repro.store.query` (prefix queries, verification, trend diffs),
:mod:`repro.store.migrate` (legacy import) and ``python -m repro.store``
(synthetic sweeps, verification, store info).
"""

from repro.store.cells import (
    DEFAULT_NUM_SHARDS,
    RecordStore,
    is_record_store,
    open_store,
    prefix_from_selector,
    spec_key_from_dict,
)
from repro.store.format import (
    BlockCorruptError,
    FORMAT_VERSION,
    SCHEMA_VERSION,
    StoreFormatError,
    TruncatedBlockError,
)
from repro.store.meta import STORE_META_NAME
from repro.store.migrate import MigrationReport, migrate_legacy
from repro.store.query import (
    format_trend_diff,
    scan_store,
    store_records,
    store_results,
    verify_store,
)
from repro.store.shard import Shard

__all__ = [
    "BlockCorruptError",
    "DEFAULT_NUM_SHARDS",
    "FORMAT_VERSION",
    "MigrationReport",
    "RecordStore",
    "SCHEMA_VERSION",
    "STORE_META_NAME",
    "Shard",
    "StoreFormatError",
    "TruncatedBlockError",
    "format_trend_diff",
    "is_record_store",
    "migrate_legacy",
    "open_store",
    "prefix_from_selector",
    "scan_store",
    "spec_key_from_dict",
    "store_records",
    "store_results",
    "verify_store",
]
