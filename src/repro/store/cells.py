"""The cell-level record store: specs and results over sharded shards.

:class:`RecordStore` is the scale successor to the legacy
one-JSON-file-per-cell ``ResultStore``: the same ``get(spec)`` /
``put(spec, result)`` cache protocol the sweep runner speaks, backed
by a fixed set of append-only, compressed, CRC-checksummed shard files
(:mod:`repro.store.shard`) instead of one file per cell.

Each stored record is the complete cell — spec, result, and (when the
run was instrumented) the telemetry artifact *inside the record*.
Telemetry presence is part of the stored value, never inferred from
leftover sidecar files: re-putting a cell without telemetry replaces
the instrumented record outright, which is the correctness rule the
legacy sidecar layout got wrong.

Records carry a sortable **spec key**::

    scenario=permutation/fabric=stardust/transport=tcp/seed=00000003/<hash>

so range queries like ``scenario=permutation/fabric=*`` are a binary
search over the per-shard indexes, not a directory walk.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.store.format import (
    CODEC_NAMES,
    CODEC_ZLIB,
    FORMAT_VERSION,
    StoreFormatError,
)
from repro.store.meta import STORE_META_NAME, stamp_store_meta
from repro.store.shard import Shard

if TYPE_CHECKING:
    from repro.experiments.runner import RunResult
    from repro.experiments.spec import ScenarioSpec

#: Mirrors the legacy store's defaults so both formats share the same
#: CLI flags and environment override.
DEFAULT_STORE_DIR = ".experiment-store"
STORE_DIR_ENV = "REPRO_EXPERIMENT_STORE"

DEFAULT_NUM_SHARDS = 8
SHARD_NAME = "shard-{:02d}.rsd"

#: bz2 over generously batched blocks is what clears the 5x+ size win
#: over the legacy per-cell JSON layout (and is the codec the ZS
#: tooling this design follows used); ``codec="zlib"`` trades a little
#: of that ratio for faster appends.
DEFAULT_CODEC = "bz2"
DEFAULT_LEVEL = 9
DEFAULT_FLUSH_RECORDS = 128


def spec_key_from_dict(spec_dict: Dict[str, Any], key: str) -> str:
    """The sortable spec key for a spec's plain-dict form."""
    return (
        f"scenario={spec_dict.get('scenario', '?')}"
        f"/fabric={spec_dict.get('fabric', '?')}"
        f"/transport={spec_dict.get('transport', '?')}"
        f"/seed={int(spec_dict.get('seed', 0)):08d}"
        f"/{key}"
    )


def prefix_from_selector(selector: str) -> str:
    """Translate a CLI selector into a raw spec-key prefix.

    ``scenario=permutation/fabric=*`` matches any fabric under that
    exact scenario; a selector without a trailing ``*`` or ``/`` gets a
    ``/`` appended so field values match exactly (``permutation`` must
    not also match ``permutation_link_failure``).  An empty selector
    (or bare ``*``) matches everything.
    """
    selector = selector.strip()
    if selector in ("", "*"):
        return ""
    if selector.endswith("*"):
        return selector[:-1]
    if not selector.endswith("/"):
        return selector + "/"
    return selector


class RecordStore:
    """Sharded, checksummed result cache (same protocol as the legacy
    ``ResultStore``: ``get``/``put``/``has``/``clear``/``__len__``)."""

    def __init__(
        self,
        root: Optional[Union[str, os.PathLike]] = None,
        num_shards: Optional[int] = None,
        codec: str = DEFAULT_CODEC,
        level: int = DEFAULT_LEVEL,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
    ) -> None:
        if root is None:
            root = os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.level = level
        self.flush_records = max(1, flush_records)
        self.codec = CODEC_NAMES.get(codec, CODEC_ZLIB)
        self.meta: Dict[str, Any] = {}
        self._shards: Dict[int, Shard] = {}
        self._pending: Dict[int, List[Tuple[str, str, bytes]]] = {}
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_orphans()
        meta_path = self.root / STORE_META_NAME
        if meta_path.exists():
            self.meta = json.loads(meta_path.read_text(encoding="utf-8"))
            version = int(self.meta.get("format_version", 0))
            if version > FORMAT_VERSION:
                raise StoreFormatError(
                    f"store {self.root} is format v{version}, newer than "
                    f"this reader (v{FORMAT_VERSION})"
                )
            params = self.meta.get("params", {})
            self.num_shards = int(
                params.get("num_shards", num_shards or DEFAULT_NUM_SHARDS)
            )
        else:
            self.num_shards = num_shards or DEFAULT_NUM_SHARDS
            self.meta = stamp_store_meta(
                {"num_shards": self.num_shards, "codec": codec}
            )
            self._atomic_write_meta(meta_path, self.meta)

    def _atomic_write_meta(self, path: Path, payload: Dict[str, Any]) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
        tmp.replace(path)

    def _sweep_orphans(self) -> None:
        """Remove ``*.tmp`` debris from writers killed mid-replace."""
        for orphan in self.root.glob("*.tmp"):
            try:
                orphan.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def shard_id(self, key: str) -> int:
        """Stable shard assignment for a record key."""
        return zlib.crc32(key.encode("utf-8")) % self.num_shards

    def shard_path(self, index: int) -> Path:
        return self.root / SHARD_NAME.format(index)

    def _shard(self, index: int) -> Shard:
        shard = self._shards.get(index)
        if shard is None:
            shard = Shard(
                self.shard_path(index),
                header_meta={
                    "shard": index,
                    "num_shards": self.num_shards,
                    "schema": self.meta.get("schema_version", 1),
                },
                codec=self.codec,
                level=self.level,
            )
            self._shards[index] = shard
        return shard

    def open_shards(self) -> List[Shard]:
        """Every shard that exists on disk (opened lazily before)."""
        out = []
        for index in range(self.num_shards):
            if index in self._shards or self.shard_path(index).exists():
                out.append(self._shard(index))
        return out

    # ------------------------------------------------------------------
    # The cache protocol (what run_matrix speaks)
    # ------------------------------------------------------------------
    def put(self, spec: "ScenarioSpec", result: "RunResult") -> Path:
        """Persist one cell; returns the shard path it landed in.

        The record embeds the result's telemetry artifact when present
        and *nothing* when absent — an uninstrumented re-run of a spec
        fully replaces any instrumented record under the same key.
        """
        key = spec.content_hash()
        return self.put_record(key, spec.to_dict(), result.to_dict())

    def put_record(
        self,
        key: str,
        spec_dict: Dict[str, Any],
        result_dict: Dict[str, Any],
        spec_key: Optional[str] = None,
    ) -> Path:
        """Raw-dict put (the migration path; no spec revalidation)."""
        if spec_key is None:
            spec_key = spec_key_from_dict(spec_dict, key)
        payload = json.dumps(
            {
                "key": key,
                "spec_key": spec_key,
                "spec": spec_dict,
                "result": result_dict,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        index = self.shard_id(key)
        pending = self._pending.setdefault(index, [])
        pending.append((key, spec_key, payload))
        if len(pending) >= self.flush_records:
            self._flush_shard(index)
        return self.shard_path(index)

    def get(self, spec: "ScenarioSpec") -> Optional["RunResult"]:
        """The cached result for ``spec``, or None (counts hit/miss)."""
        record = self.get_record(spec.content_hash())
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        from repro.experiments.runner import RunResult

        return RunResult.from_dict(record["result"])

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        """The latest raw record dict under ``key``, or None."""
        index = self.shard_id(key)
        for pending_key, _, payload in reversed(self._pending.get(index, [])):
            if pending_key == key:
                pending_record: Dict[str, Any] = json.loads(payload)
                return pending_record
        if not self.shard_path(index).exists():
            return None
        payload_bytes = self._shard(index).get(key)
        if payload_bytes is None:
            return None
        record: Dict[str, Any] = json.loads(payload_bytes)
        return record

    def has(self, spec: "ScenarioSpec") -> bool:
        return self.get_record(spec.content_hash()) is not None

    def flush(self) -> None:
        """Append every buffered record to its shard."""
        for index in sorted(self._pending):
            self._flush_shard(index)

    def _flush_shard(self, index: int) -> None:
        pending = self._pending.get(index)
        if pending:
            self._shard(index).append(pending)
            self._pending[index] = []

    def __enter__(self) -> "RecordStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.flush()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def keys(self, selector: str = "") -> List[Tuple[str, str]]:
        """All ``(spec_key, key)`` pairs matching ``selector``, sorted.

        Buffered records are flushed first so a query never misses a
        cell the same process just stored.
        """
        self.flush()
        prefix = prefix_from_selector(selector)
        pairs: List[Tuple[str, str]] = []
        for shard in self.open_shards():
            pairs.extend(shard.keys_for_prefix(prefix))
        pairs.sort()
        return pairs

    def iter_records(self, selector: str = "") -> Iterator[Dict[str, Any]]:
        """Matching record dicts in spec-key order (latest per key)."""
        pairs = self.keys(selector)
        by_shard: Dict[int, List[str]] = {}
        for _, key in pairs:
            by_shard.setdefault(self.shard_id(key), []).append(key)
        payloads: Dict[str, bytes] = {}
        for index, shard_keys in by_shard.items():
            payloads.update(self._shard(index).get_many(shard_keys))
        for _, key in pairs:
            payload = payloads.get(key)
            if payload is not None:
                yield json.loads(payload)

    def results(self, selector: str = "") -> "List[RunResult]":
        """Matching results as :class:`RunResult` values."""
        from repro.experiments.runner import RunResult

        return [
            RunResult.from_dict(record["result"])
            for record in self.iter_records(selector)
        ]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def cells(self) -> List[str]:
        """Every distinct record key currently stored."""
        keys = {key for pending in self._pending.values() for key, _, _ in pending}
        for shard in self.open_shards():
            keys.update(shard.index.by_key)
        return sorted(keys)

    def __len__(self) -> int:
        return len(self.cells())

    @property
    def corrupt_blocks(self) -> int:
        """Blocks rejected by checksum across all opened shards."""
        return sum(s.corrupt_blocks for s in self._shards.values())

    def clear(self) -> int:
        """Delete every record (shards + indexes); returns cell count."""
        removed = len(self)
        self._pending.clear()
        self._shards.clear()
        for pattern in ("*.rsd", "*.rsx", "*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed


def is_record_store(root: Union[str, os.PathLike]) -> bool:
    """Whether ``root`` holds (or declares) the sharded record format."""
    path = Path(root)
    if (path / STORE_META_NAME).exists():
        return True
    return any(path.glob("*.rsd"))


def open_store(
    root: Optional[Union[str, os.PathLike]] = None,
    store_format: str = "auto",
    **kwargs: Any,
) -> Any:
    """Open ``root`` as whichever store format it holds.

    ``auto`` (the default) detects: a directory with ``store.meta.json``
    or shard files opens as a :class:`RecordStore`; a directory of
    legacy ``<hash>.json`` cells opens as the legacy ``ResultStore``;
    a fresh/empty directory gets the record format (new sweeps should
    land on shards).  ``store_format="legacy"``/``"record"`` force.
    """
    if root is None:
        root = os.environ.get(STORE_DIR_ENV, DEFAULT_STORE_DIR)
    path = Path(root)
    if store_format == "record":
        return RecordStore(path, **kwargs)
    if store_format == "legacy":
        from repro.experiments.store import ResultStore

        return ResultStore(path)
    if store_format != "auto":
        raise ValueError(
            f"unknown store format {store_format!r}; "
            "choose auto, record or legacy"
        )
    if is_record_store(path):
        return RecordStore(path, **kwargs)
    if path.is_dir() and any(
        p.name != STORE_META_NAME for p in path.glob("*.json")
    ):
        from repro.experiments.store import ResultStore

        return ResultStore(path)
    return RecordStore(path, **kwargs)
