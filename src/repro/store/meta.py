"""Store-level metadata stamping — the one wall-clock-aware module.

Everything else under :mod:`repro.store` is deterministic-zone code
(identical inputs produce identical bytes); creation timestamps and
writer identification are quarantined here so the lint zone map can
keep the format/index/shard modules under the strict rules.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.store.format import FORMAT_VERSION, SCHEMA_VERSION

#: Bumped when the *writer logic* changes in ways worth recording in
#: provenance (not necessarily format-breaking).
WRITER_VERSION = "repro.store/1.0"

STORE_META_NAME = "store.meta.json"


def stamp_store_meta(params: Dict[str, Any]) -> Dict[str, Any]:
    """The ``store.meta.json`` payload for a newly created store.

    ``params`` are the creation parameters (shard count, codec, ...);
    the stamp adds format/schema versions, the writer identity and a
    wall-clock creation time.  This is provenance metadata only — no
    reader decision may depend on the timestamp.
    """
    return {
        "format_version": FORMAT_VERSION,
        "schema_version": SCHEMA_VERSION,
        "writer": WRITER_VERSION,
        "created_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "params": dict(params),
    }
