"""Binary framing for the sharded record store (the ZS lesson).

A shard file is::

    +----------------------------+
    | shard header               |  magic, format version, JSON metadata
    +----------------------------+
    | block | block | block | ...|  append-only
    +----------------------------+

Every **block** is one compressed unit of one or more records::

    BLK1  codec  comp_len  raw_len  crc32(comp)  <comp_len bytes>
    4B    u8     u32       u32      u32

and its decompressed payload is a sequence of **records**, each
individually framed and checksummed::

    rec_len  crc32(rec)  <rec_len bytes>
    u32      u32

Integrity is layered: the block CRC catches on-disk corruption before
decompression is even attempted, the per-record CRC catches logic bugs
and torn batches, and the leading block magic lets a scan *resync* past
a corrupt region instead of abandoning the rest of the shard.  All
framing integers are little-endian and the record payloads are
canonical (sorted-key, compact) JSON, so identical records produce
identical bytes.

This module is pure bytes-in/bytes-out: no file handles, no wall
clock, no policy.  :mod:`repro.store.shard` owns files,
:mod:`repro.store.cells` owns spec/result semantics.
"""

from __future__ import annotations

import bz2
import json
import struct
import zlib
from typing import Any, Dict, List, Tuple

SHARD_MAGIC = b"RPROSTR1"
BLOCK_MAGIC = b"BLK1"
FORMAT_VERSION = 1
#: Version of the *record schema* (what the JSON payloads contain);
#: bumped independently of the framing FORMAT_VERSION.
SCHEMA_VERSION = 1

#: Codec ids are part of the on-disk format — append-only, never reuse.
CODEC_RAW = 0
CODEC_ZLIB = 1
CODEC_BZ2 = 2
CODEC_NAMES = {"raw": CODEC_RAW, "zlib": CODEC_ZLIB, "bz2": CODEC_BZ2}

_BLOCK_HEAD = struct.Struct("<BIII")  # codec, comp_len, raw_len, crc32
_REC_HEAD = struct.Struct("<II")  # rec_len, crc32
_SHARD_HEAD = struct.Struct("<HI")  # format_version, meta_len

BLOCK_HEADER_SIZE = len(BLOCK_MAGIC) + _BLOCK_HEAD.size


class StoreFormatError(Exception):
    """The file is not a shard of a format this reader understands."""


class BlockCorruptError(Exception):
    """A block failed its structural or CRC checks.

    ``offset`` is where the bad block starts; ``resync_from`` is where a
    scan should resume looking for the next block magic.
    """

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"corrupt block at offset {offset}: {reason}")
        self.offset = offset
        self.resync_from = offset + 1


class TruncatedBlockError(BlockCorruptError):
    """The file ends mid-block — a torn append, not corruption.

    Distinguished from :class:`BlockCorruptError` so writers can treat
    the tail as garbage to truncate while scanners treat mid-file
    damage as skip-and-continue.
    """


def compress(raw: bytes, codec: int, level: int = 6) -> bytes:
    """Compress ``raw`` with the named codec."""
    if codec == CODEC_RAW:
        return raw
    if codec == CODEC_ZLIB:
        return zlib.compress(raw, level)
    if codec == CODEC_BZ2:
        return bz2.compress(raw, min(max(level, 1), 9))
    raise StoreFormatError(f"unknown codec id {codec}")


def decompress(payload: bytes, codec: int) -> bytes:
    """Invert :func:`compress`."""
    if codec == CODEC_RAW:
        return payload
    if codec == CODEC_ZLIB:
        return zlib.decompress(payload)
    if codec == CODEC_BZ2:
        return bz2.decompress(payload)
    raise StoreFormatError(f"unknown codec id {codec}")


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------


def encode_records(payloads: List[bytes]) -> bytes:
    """Frame record payloads into one block body (pre-compression)."""
    parts: List[bytes] = []
    for payload in payloads:
        parts.append(_REC_HEAD.pack(len(payload), zlib.crc32(payload)))
        parts.append(payload)
    return b"".join(parts)


def decode_records(body: bytes) -> List[bytes]:
    """Split a decompressed block body back into record payloads.

    Raises :class:`StoreFormatError` on any framing or CRC mismatch —
    by the time a block CRC has passed, a bad record means a writer
    bug, not disk rot, and must not be silently dropped.
    """
    payloads: List[bytes] = []
    offset = 0
    end = len(body)
    while offset < end:
        if offset + _REC_HEAD.size > end:
            raise StoreFormatError("truncated record header inside block")
        rec_len, crc = _REC_HEAD.unpack_from(body, offset)
        offset += _REC_HEAD.size
        if offset + rec_len > end:
            raise StoreFormatError("record length exceeds block body")
        payload = body[offset : offset + rec_len]
        if zlib.crc32(payload) != crc:
            raise StoreFormatError("record CRC mismatch inside block")
        payloads.append(payload)
        offset += rec_len
    return payloads


# ----------------------------------------------------------------------
# Blocks
# ----------------------------------------------------------------------


def encode_block(
    payloads: List[bytes], codec: int = CODEC_ZLIB, level: int = 6
) -> bytes:
    """One complete on-disk block holding ``payloads``."""
    raw = encode_records(payloads)
    comp = compress(raw, codec, level)
    head = _BLOCK_HEAD.pack(codec, len(comp), len(raw), zlib.crc32(comp))
    return BLOCK_MAGIC + head + comp


def read_block(buf: bytes, offset: int) -> Tuple[List[bytes], int]:
    """Decode the block starting at ``offset`` in ``buf``.

    Returns ``(record_payloads, next_offset)``.  Raises
    :class:`TruncatedBlockError` when the buffer ends mid-block and
    :class:`BlockCorruptError` on a bad magic or failed CRC.
    """
    end = len(buf)
    if offset + BLOCK_HEADER_SIZE > end:
        raise TruncatedBlockError(offset, "file ends inside block header")
    if buf[offset : offset + len(BLOCK_MAGIC)] != BLOCK_MAGIC:
        raise BlockCorruptError(offset, "bad block magic")
    codec, comp_len, raw_len, crc = _BLOCK_HEAD.unpack_from(
        buf, offset + len(BLOCK_MAGIC)
    )
    body_start = offset + BLOCK_HEADER_SIZE
    if body_start + comp_len > end:
        raise TruncatedBlockError(offset, "file ends inside block payload")
    comp = buf[body_start : body_start + comp_len]
    if zlib.crc32(comp) != crc:
        raise BlockCorruptError(offset, "block CRC mismatch")
    try:
        raw = decompress(comp, codec)
    except (StoreFormatError, OSError, zlib.error) as exc:
        raise BlockCorruptError(offset, f"decompression failed: {exc}") from exc
    if len(raw) != raw_len:
        raise BlockCorruptError(
            offset, f"raw length {len(raw)} != declared {raw_len}"
        )
    try:
        payloads = decode_records(raw)
    except StoreFormatError as exc:
        raise BlockCorruptError(offset, str(exc)) from exc
    return payloads, body_start + comp_len


def find_block(buf: bytes, offset: int) -> int:
    """The next plausible block start at/after ``offset`` (-1 if none)."""
    return buf.find(BLOCK_MAGIC, offset)


# ----------------------------------------------------------------------
# Shard header
# ----------------------------------------------------------------------


def encode_shard_header(meta: Dict[str, Any]) -> bytes:
    """Shard file preamble: magic, format version, JSON metadata, CRC."""
    blob = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode()
    return (
        SHARD_MAGIC
        + _SHARD_HEAD.pack(FORMAT_VERSION, len(blob))
        + blob
        + struct.pack("<I", zlib.crc32(blob))
    )


def read_shard_header(buf: bytes) -> Tuple[Dict[str, Any], int]:
    """Parse the shard preamble; returns ``(meta, first_block_offset)``."""
    base = len(SHARD_MAGIC)
    if buf[:base] != SHARD_MAGIC:
        raise StoreFormatError("not a repro.store shard (bad magic)")
    if len(buf) < base + _SHARD_HEAD.size:
        raise StoreFormatError("truncated shard header")
    version, meta_len = _SHARD_HEAD.unpack_from(buf, base)
    if version > FORMAT_VERSION:
        raise StoreFormatError(
            f"shard format v{version} is newer than this reader "
            f"(v{FORMAT_VERSION}); upgrade repro to read it"
        )
    meta_start = base + _SHARD_HEAD.size
    meta_end = meta_start + meta_len
    if len(buf) < meta_end + 4:
        raise StoreFormatError("truncated shard header metadata")
    blob = buf[meta_start:meta_end]
    (crc,) = struct.unpack_from("<I", buf, meta_end)
    if zlib.crc32(blob) != crc:
        raise StoreFormatError("shard header CRC mismatch")
    try:
        meta = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise StoreFormatError(f"unreadable shard metadata: {exc}") from exc
    return meta, meta_end + 4
