"""Appendix B: how many packets a switch must process per clock.

For a switch of bandwidth ``B`` bits/s, packets of ``S`` bytes arrive at
``R = B / (8 x (S + G))`` packets per second (``G`` = preamble + IPG).
A pipeline clocked at ``f`` processing one unit per cycle handles ``f``
units/s, so the required parallelism is ``P = R_units / f``.

A *standard* switch's unit is a packet, but a packet also occupies
``ceil(S / W)`` slots of the ``W``-byte-wide data path, and the last
slot is mostly wasted for unaligned sizes — the sawtooth of Fig 3.  A
Stardust Fabric Element's unit is a full data-path-width cell carved
from packed data, so its parallelism is flat in packet size.
"""

from __future__ import annotations

import math

from repro.net.packet import ETHERNET_OVERHEAD_BYTES


def packet_rate_pps(
    bandwidth_bps: int, packet_bytes: int, gap_bytes: int = ETHERNET_OVERHEAD_BYTES
) -> float:
    """Equation (1): packets/second at full line rate."""
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return bandwidth_bps / (8 * (packet_bytes + gap_bytes))


def required_parallelism(
    bandwidth_bps: int,
    packet_bytes: int,
    clock_hz: int,
    cycles_per_packet: int = 1,
    gap_bytes: int = ETHERNET_OVERHEAD_BYTES,
) -> float:
    """Equation (3): P = R / (f / c) — pipelines needed at packet rate."""
    if clock_hz <= 0 or cycles_per_packet <= 0:
        raise ValueError("clock and cycles must be positive")
    rate = packet_rate_pps(bandwidth_bps, packet_bytes, gap_bytes)
    return rate * cycles_per_packet / clock_hz


def standard_parallelism(
    bandwidth_bps: int,
    packet_bytes: int,
    clock_hz: int = 1_000_000_000,
    bus_bytes: int = 256,
    gap_bytes: int = ETHERNET_OVERHEAD_BYTES,
) -> float:
    """Fig 3's "Standard Switch" curve.

    Each packet needs ``ceil(S / W)`` data-path slots (the tail slot is
    wasted for unaligned sizes), so the required number of parallel
    buses is the packet rate times slots per packet over the clock.
    """
    if bus_bytes <= 0:
        raise ValueError("bus width must be positive")
    rate = packet_rate_pps(bandwidth_bps, packet_bytes, gap_bytes)
    slots = math.ceil(packet_bytes / bus_bytes)
    return rate * slots / clock_hz


def stardust_parallelism(
    bandwidth_bps: int,
    packet_bytes: int = 0,
    clock_hz: int = 1_000_000_000,
    bus_bytes: int = 256,
) -> float:
    """Fig 3's "Stardust Fabric Element" curve: flat in packet size.

    Packed cells always fill the data path, so the slot rate is just
    ``B / (8 x W)`` regardless of the traffic's packet sizes.
    """
    if bus_bytes <= 0:
        raise ValueError("bus width must be positive")
    return bandwidth_bps / (8 * bus_bytes) / clock_hz
