"""Fig 8: cycle-level throughput model of the NetFPGA experiment.

§6.1.1 compares four designs built from the same NetFPGA SUME source:
the Reference Switch, the NDP switch, Stardust (packed cells), and a
Stardust variant fed non-packed cells — all at a 150 MHz data path,
32B wide, with a table lookup every 2 cycles.

The hardware is modelled, not required: for each design we compute the
data path's service rate for a given packet size and take the minimum
of the line's goodput and the pipeline's goodput.  What the model
keeps from the real device:

* a packet occupies ``ceil(S / 32)`` data-path beats, minimum 2 (the
  lookup interval) — unaligned sizes waste the tail beat;
* NDP's trimming/priority logic adds per-packet beats;
* non-packed cells pad every packet's last cell to the cell size;
* packed cells fill every beat and amortize the wire's per-packet
  overhead across a whole credit-worth batch (§3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence, Tuple

from repro.net.packet import ETHERNET_OVERHEAD_BYTES


class SwitchDesign(Enum):
    """The four NetFPGA designs of Fig 8."""

    REFERENCE = "reference"
    NDP = "ndp"
    STARDUST_PACKED = "stardust"
    CELLS_UNPACKED = "cells"


@dataclass(frozen=True)
class DesignThroughput:
    """One point of Fig 8(a)."""

    design: SwitchDesign
    packet_bytes: int
    goodput_bps: float
    line_goodput_bps: float

    @property
    def line_rate_fraction(self) -> float:
        """Achieved share of the wire's goodput at this size."""
        return self.goodput_bps / self.line_goodput_bps


@dataclass(frozen=True)
class NetFpgaModel:
    """The 4x10GE NetFPGA SUME platform of §6.1.1."""

    ports: int = 4
    port_rate_bps: int = 10_000_000_000
    clock_hz: int = 150_000_000
    bus_bytes: int = 32
    lookup_cycles: int = 2
    #: Extra per-packet beats for NDP's trim/priority-queue logic.
    ndp_extra_cycles: int = 1
    cell_bytes: int = 64

    @property
    def line_rate_bps(self) -> int:
        """Aggregate raw line rate of all ports."""
        return self.ports * self.port_rate_bps

    @property
    def datapath_bps(self) -> float:
        """Internal data-path capacity (bus width x clock)."""
        return self.clock_hz * self.bus_bytes * 8

    # ------------------------------------------------------------------
    def line_goodput_bps(self, packet_bytes: int) -> float:
        """Payload bits/s the wire itself can carry at ``packet_bytes``."""
        wire = packet_bytes + ETHERNET_OVERHEAD_BYTES
        return self.line_rate_bps * packet_bytes / wire

    def _pipeline_goodput(
        self, packet_bytes: int, beats_per_packet: int
    ) -> float:
        """Goodput when every packet costs ``beats_per_packet`` cycles."""
        pps = self.clock_hz / beats_per_packet
        return pps * packet_bytes * 8

    def throughput(
        self, design: SwitchDesign, packet_bytes: int
    ) -> DesignThroughput:
        """The Fig 8(a) y-value for one design and packet size."""
        if packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        line = self.line_goodput_bps(packet_bytes)

        if design is SwitchDesign.REFERENCE or design is SwitchDesign.NDP:
            beats = max(
                math.ceil(packet_bytes / self.bus_bytes), self.lookup_cycles
            )
            if design is SwitchDesign.NDP:
                beats += self.ndp_extra_cycles
            pipe = self._pipeline_goodput(packet_bytes, beats)
        elif design is SwitchDesign.CELLS_UNPACKED:
            # Every packet is chopped alone; its last cell is padded to
            # the full cell size, and each cell costs its full beats.
            cells = math.ceil(packet_bytes / self.cell_bytes)
            beats = cells * max(
                math.ceil(self.cell_bytes / self.bus_bytes),
                self.lookup_cycles,
            )
            pipe = self._pipeline_goodput(packet_bytes, beats)
        elif design is SwitchDesign.STARDUST_PACKED:
            # Packed cells: the data path carries a dense byte stream;
            # cost per cell is its beats, and cells carry pure payload.
            beats_per_cell = max(
                math.ceil(self.cell_bytes / self.bus_bytes),
                self.lookup_cycles,
            )
            cell_rate = self.clock_hz / beats_per_cell
            pipe = cell_rate * self.cell_bytes * 8
            # Packing amortizes the wire's per-packet overhead across a
            # whole credit batch, so the wire constraint is the *raw*
            # line rate, not the per-packet goodput — this is exactly
            # why Fig 8(a)'s Stardust curve is flat in packet size.
            return DesignThroughput(
                design,
                packet_bytes,
                min(self.line_rate_bps, pipe),
                self.line_goodput_bps(packet_bytes),
            )
        else:  # pragma: no cover
            raise ValueError(f"unknown design {design}")

        return DesignThroughput(design, packet_bytes, min(line, pipe), line)

    def sweep(
        self, design: SwitchDesign, sizes: Iterable[int]
    ) -> list[DesignThroughput]:
        """Throughput points for one design across packet sizes."""
        return [self.throughput(design, s) for s in sizes]


def trace_throughput(
    model: NetFpgaModel,
    design: SwitchDesign,
    size_probabilities: Sequence[Tuple[int, float]],
) -> float:
    """Fig 8(b): relative throughput (%) on a packet-size mix.

    ``size_probabilities`` is [(size, cumulative_probability), ...] as
    in :data:`repro.workloads.distributions.PACKET_SIZE_MIXES`.

    The y-axis is achieved goodput as a percentage of the *device's
    internal capacity* (what a perfectly packed data path moves): a
    packed-cell design scores ~100% on any mix, while per-packet
    designs lose the wire and data-path slack of every small or
    unaligned packet — Fig 8(b)'s gap.
    """
    achieved = 0.0
    prev = 0.0
    for size, cum in size_probabilities:
        weight = cum - prev
        prev = cum
        if weight <= 0:
            continue
        point = model.throughput(design, size)
        achieved += weight * point.goodput_bps
    return 100.0 * achieved / model.datapath_bps
