"""Device-level pipeline throughput models (Figs 3 and 8, Appendix B)."""

from repro.pipeline.parallelism import (
    packet_rate_pps,
    required_parallelism,
    stardust_parallelism,
    standard_parallelism,
)
from repro.pipeline.switch_model import (
    DesignThroughput,
    NetFpgaModel,
    SwitchDesign,
    trace_throughput,
)

__all__ = [
    "packet_rate_pps",
    "required_parallelism",
    "standard_parallelism",
    "stardust_parallelism",
    "NetFpgaModel",
    "SwitchDesign",
    "DesignThroughput",
    "trace_throughput",
]
