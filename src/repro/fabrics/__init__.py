"""Pluggable fabric backends behind one contract.

The package has three pieces:

* :mod:`repro.fabrics.base` — the :class:`FabricNetwork` ABC every
  backend satisfies (construction from ``(topology_spec, config,
  sim)``, shared host attachment and run control) and the typed
  :class:`FabricMetrics` surface (latency histograms, queue depths
  with explicit units, drops split by locus, delivered bytes).
* :mod:`repro.fabrics.registry` — ``@fabric("name")`` registration,
  mirroring the scenario registry, so builders and the CLI resolve
  fabrics by name and third fabrics drop in without touching the
  runner.
* :mod:`repro.fabrics.wiring` — topology specs compiled to an explicit
  :class:`WiringPlan` (node descriptors + duplex-link pairs + routes)
  that every backend replays, so one/two/three-tier wiring exists
  exactly once.

Two backends ship: ``"stardust"`` (the paper's pull-based cell fabric)
and ``"push"`` (the §5.2 Ethernet/ECMP strawman, alias ``"ethernet"``).

Building one by name::

    from repro.fabrics import build_fabric
    from repro.fabrics.wiring import TwoTierSpec

    net = build_fabric("stardust", TwoTierSpec(
        pods=2, fas_per_pod=4, fes_per_pod=4, spines=4, hosts_per_fa=4,
    ))
    net.run(1_000_000)
    print(net.collect_metrics().total_drops)
"""

from repro.fabrics.base import FabricMetrics, FabricNetwork
from repro.fabrics.registry import (
    FabricEntry,
    UnknownFabricError,
    build_fabric,
    fabric,
    fabric_names,
    get_fabric,
    known_fabric_names,
)
from repro.fabrics.wiring import (
    EdgeNode,
    ElementNode,
    ElementRoutes,
    LinkPair,
    OneTierSpec,
    ThreeTierSpec,
    TwoTierSpec,
    WiringPlan,
    build_wiring_plan,
)

# Importing the backend modules registers them.
from repro.fabrics.push import PushFabricNetwork
from repro.fabrics.stardust import StardustNetwork

__all__ = [
    "EdgeNode",
    "ElementNode",
    "ElementRoutes",
    "FabricEntry",
    "FabricMetrics",
    "FabricNetwork",
    "LinkPair",
    "OneTierSpec",
    "PushFabricNetwork",
    "StardustNetwork",
    "ThreeTierSpec",
    "TwoTierSpec",
    "UnknownFabricError",
    "WiringPlan",
    "build_fabric",
    "build_wiring_plan",
    "fabric",
    "fabric_names",
    "get_fabric",
    "known_fabric_names",
]
