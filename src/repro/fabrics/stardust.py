"""The Stardust cell fabric as a registered fabric backend.

Wires Fabric Adapters and Fabric Elements by replaying the shared
:class:`~repro.fabrics.wiring.WiringPlan`, so one/two/three-tier
construction has no per-tier special cases here; static forwarding
tables are installed straight from the plan's route descriptions.
``reachability='static'`` installs those tables directly; ``'dynamic'``
runs the live protocol so failure experiments can watch the fabric
heal itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import StardustConfig
from repro.core.control import ControlPlane
from repro.core.fabric_adapter import FabricAdapter
from repro.core.fabric_element import FabricElement, FabricPort
from repro.fabrics.base import FabricMetrics, FabricNetwork
from repro.fabrics.registry import fabric
from repro.fabrics.wiring import EDGE, EdgeNode, ElementNode, WiringPlan
from repro.net.addressing import DeviceId, PortAddress
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.stats import Histogram
from repro.sim.units import gbps


@fabric(
    "stardust",
    description="the paper's pull fabric: cells, credits, spray (lossless)",
)
class StardustNetwork(FabricNetwork):
    """A fully wired Stardust fabric plus host attachment points."""

    def __init__(
        self,
        spec,
        config: Optional[StardustConfig] = None,
        sim: Optional[Simulator] = None,
        reachability: str = "static",
        spray_mode: str = "permutation",
    ) -> None:
        if reachability not in ("static", "dynamic"):
            raise ValueError(f"unknown reachability mode {reachability!r}")
        self.reachability = reachability
        self._spray_mode = spray_mode
        self.fas: List[FabricAdapter] = []
        self.fes: List[FabricElement] = []
        self._fes_by_id: Dict[DeviceId, FabricElement] = {}
        super().__init__(spec, config=config or StardustConfig(), sim=sim)

    @classmethod
    def for_experiment(
        cls,
        topology,
        rate: int = gbps(10),
        cell_bytes: int = 512,
        cell_header_bytes: int = 16,
        sim: Optional[Simulator] = None,
        reachability: str = "static",
        converge_ns: Optional[int] = None,
        **overrides,
    ) -> "StardustNetwork":
        """A Stardust fabric at benchmark scale.

        512B cells / 4KB credits follow the paper's own htsim shortcut
        ("intended to reduce simulation time", Appendix G).
        ``reachability='dynamic'`` runs the live protocol — failure
        scenarios use it so the fabric heals itself at protocol speed.
        Dynamic mode pre-runs the simulation for ``converge_ns``
        (default: 10 advertisement periods; 0 disables) so experiments
        start on a *converged* fabric — workloads measure failure
        response, not boot transients.
        """
        kwargs = dict(
            fabric_link_rate_bps=rate,
            host_link_rate_bps=rate,
            cell_size_bytes=cell_bytes,
            cell_header_bytes=cell_header_bytes,
        )
        kwargs.update(overrides)  # explicit overrides win, even for cells
        net = cls(
            topology, config=StardustConfig(**kwargs), sim=sim,
            reachability=reachability,
        )
        if reachability == "dynamic":
            if converge_ns is None:
                converge_ns = 10 * net.config.reachability_period_ns
            if converge_ns:
                net.sim.run_for(converge_ns)
        return net

    # ------------------------------------------------------------------
    # Topology construction (plan replay)
    # ------------------------------------------------------------------
    def _build(self, plan: WiringPlan) -> None:
        self.control = ControlPlane(self.sim, self._control_delay)
        for op in plan.ops:
            if isinstance(op, EdgeNode):
                self._new_fa(op)
            elif isinstance(op, ElementNode):
                self._new_fe(op)
            elif op.lower[0] == EDGE:
                self._connect_fa_fe(
                    self.fas[op.lower[1]], self._fes_by_id[op.upper[1]]
                )
            else:
                self._connect_fe_fe(
                    self._fes_by_id[op.lower[1]], self._fes_by_id[op.upper[1]]
                )
        if self.reachability == "dynamic":
            for fa in self.fas:
                fa.enable_protocol()
            for fe in self.fes:
                fe.enable_protocol()
        else:
            self._install_static_routes(plan)
            for fa in self.fas:
                fa.set_static_reachability()

    def _control_delay(self, src: DeviceId, dst: DeviceId) -> int:
        cfg = self.config
        if src == dst:
            return cfg.control_hop_ns
        hops = 2 * self.plan.tiers
        return hops * (cfg.control_hop_ns + cfg.fabric_propagation_ns)

    def _new_fa(self, node: EdgeNode) -> None:
        fa = FabricAdapter(
            self.sim,
            self.config,
            node.edge_id,
            f"fa{node.edge_id}",
            self.control,
            spray_mode=self._spray_mode,
        )
        self.fas.append(fa)

    def _new_fe(self, node: ElementNode) -> None:
        fe = FabricElement(
            self.sim,
            self.config,
            node.element_id,
            node.tier,
            f"fe{node.tier}.{node.element_id}",
            spray_mode=self._spray_mode,
        )
        fe.sample_down_queues = node.sample_queues
        if node.pod is not None:
            fe.pod = node.pod
        self.fes.append(fe)
        self._fes_by_id[node.element_id] = fe

    def _connect_fa_fe(self, fa: FabricAdapter, fe: FabricElement) -> None:
        cfg = self.config
        up, down = self._duplex_links(
            fa, fe, cfg.fabric_link_rate_bps, cfg.fabric_propagation_ns
        )
        fa.add_uplink(up, down)
        fe.add_port(fa.fa_id, down, up, direction="down")

    def _connect_fe_fe(self, lower: FabricElement, upper: FabricElement) -> None:
        cfg = self.config
        up, down = self._duplex_links(
            lower, upper, cfg.fabric_link_rate_bps, cfg.fabric_propagation_ns
        )
        lower.add_port(upper.fe_id, up, down, direction="up")
        upper.add_port(lower.fe_id, down, up, direction="down")

    def _install_static_routes(self, plan: WiringPlan) -> None:
        """Turn the plan's route descriptions into forwarding tables.

        Ports are indexed by neighbor once per element — O(ports), not
        the O(elements x ports) neighbor scans the per-tier builders
        used to do.
        """
        for node in plan.elements:
            fe = self._fes_by_id[node.element_id]
            routes = plan.routes[node.element_id]
            by_neighbor: Dict[DeviceId, List[FabricPort]] = {}
            for port in fe.down_ports:
                by_neighbor.setdefault(port.neighbor, []).append(port)
            # Edges of one pod share a via-set; expand each set once and
            # share the list (set_static_reachability copies per entry).
            expanded: Dict[tuple, List[FabricPort]] = {}
            down_map: Dict[DeviceId, List[FabricPort]] = {}
            for edge_id, vias in routes.down:
                ports = expanded.get(vias)
                if ports is None:
                    ports = []
                    for _kind, neighbor_id in vias:
                        ports.extend(by_neighbor[neighbor_id])
                    expanded[vias] = ports
                down_map[edge_id] = ports
            fe.set_static_reachability(
                down_map,
                up_reaches_everything=routes.up_reaches_everything,
            )

    # ------------------------------------------------------------------
    # Hosts
    # ------------------------------------------------------------------
    def _edge_device(self, index: int) -> FabricAdapter:
        return self.fas[index]

    def _host_link(self):
        return self.config.host_link_rate_bps, self.config.host_propagation_ns

    def _check_host_attach(self, fa: FabricAdapter, address: PortAddress) -> None:
        if address.port != len(fa.egress_ports):
            raise ValueError(
                f"attach ports in order: expected port "
                f"{len(fa.egress_ports)}, got {address.port}"
            )

    def _register_host_port(
        self, fa: FabricAdapter, to_host: Link, address: PortAddress
    ) -> None:
        fa.add_host_port(to_host)

    # ------------------------------------------------------------------
    # Running & metrics
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop all periodic device tasks (teardown)."""
        for fa in self.fas:
            fa.stop()
        for fe in self.fes:
            fe.stop()

    # ------------------------------------------------------------------
    # Fault surface (see repro.faults)
    # ------------------------------------------------------------------
    def edge_devices(self) -> List[FabricAdapter]:
        """Fabric Adapters, in edge-id order."""
        return list(self.fas)

    def fabric_devices(self) -> List[FabricElement]:
        """Fabric Elements in wiring-plan order (tier 1 first)."""
        return list(self.fes)

    def edge_uplinks(self, index: int) -> List[Link]:
        """FA ``index``'s uplinks toward the first FE tier."""
        return self.fas[index].uplinks

    def fabric_links(self) -> List[Link]:
        """Every fabric-side simplex link: FA->FE plus all FE ports
        (which covers FE->FA and both FE<->FE directions)."""
        links = [up for fa in self.fas for up in fa.uplinks]
        links.extend(p.out for fe in self.fes for p in fe.fabric_ports)
        return links

    def _collect_metrics(self) -> FabricMetrics:
        """The unified metrics snapshot (queue depths are in cells)."""
        return FabricMetrics(
            fabric=self.fabric_name,
            cell_latency_ns=self.cell_latency(),
            packet_latency_ns=self.packet_latency(),
            queue_depth=self.fabric_queue_depth(),
            queue_depth_unit="cells",
            ingress_drops=self.ingress_drops(),
            fabric_drops=self.fabric_cell_drops(),
            delivered_bytes=self.total_delivered_bytes(),
        )

    def cell_latency(self) -> Histogram:
        """Merged fabric-traversal latency histogram (ns)."""
        merged = Histogram("fabric.cell_latency_ns")
        for fa in self.fas:
            merged.merge(fa.cell_latency)
        return merged

    def packet_latency(self) -> Histogram:
        """Merged host-to-host packet latency histogram (ns)."""
        merged = Histogram("fabric.packet_latency_ns")
        for fa in self.fas:
            merged.merge(fa.packet_latency)
        return merged

    def fabric_queue_depth(self) -> Histogram:
        """Queue depths (cells) seen at last-stage down-links (Fig 9)."""
        merged = Histogram("fabric.down_queue_cells")
        for fe in self.fes:
            merged.merge(fe.down_queue_depth)
        return merged

    def fabric_cell_drops(self) -> int:
        """Cells lost inside the fabric (must be zero: lossless, §5.5 —
        except under injected element death, which is honest loss)."""
        return sum(fe.no_route_drops + fe.dead_drops for fe in self.fes)

    def fabric_drop_count(self) -> int:
        """Cheap counter read of in-fabric loss (no histogram merges)."""
        return self.fabric_cell_drops()

    def ingress_drops(self) -> int:
        """Packets dropped at Fabric Adapter ingress buffers."""
        return sum(fa.ingress_drops for fa in self.fas)

    def total_delivered_bytes(self) -> int:
        """Bytes delivered to hosts across all egress ports."""
        return sum(
            port.delivered.total_bytes
            for fa in self.fas
            for port in fa.egress_ports
        )

    # ------------------------------------------------------------------
    # Telemetry surface (see repro.telemetry)
    # ------------------------------------------------------------------
    def _register_fabric_probes(self, collector) -> None:
        """Stardust's probe set: VOQ/buffer occupancy, credit balances,
        in-flight cells, serializer occupancy.

        Aggregates are always on; ``per_link`` / ``per_voq`` detail
        series are gated by the telemetry config (per-VOQ series appear
        lazily, as the VOQs themselves do).
        """
        fas = self.fas
        collector.add_probe(
            "stardust.voq_bytes",
            lambda: sum(fa.total_queued_bytes() for fa in fas),
            unit="bytes",
        )
        collector.add_probe(
            "stardust.buffer_used_bytes",
            lambda: sum(fa.buffer_pool.used_bytes for fa in fas),
            unit="bytes",
        )
        collector.add_probe(
            "stardust.credit_balance_bytes",
            lambda: sum(fa.total_credit_balance() for fa in fas),
            unit="bytes",
        )
        links = self.fabric_links()
        collector.add_probe(
            "stardust.inflight_cells",
            lambda: sum(link.in_flight_frames for link in links),
            unit="cells",
        )
        collector.add_probe(
            "stardust.serializer_occupancy",
            lambda: sum(link.serializer_occupancy for link in links),
            unit="cells",
        )
        collector.add_probe(
            "stardust.fabric_queued_bytes",
            lambda: sum(link.queued_bytes for link in links),
            unit="bytes",
        )
        collector.add_probe(
            "stardust.egress_queued_bytes",
            lambda: sum(
                port.link.queued_bytes
                for fa in fas
                for port in fa.egress_ports
            ),
            unit="bytes",
        )
        if collector.config.per_link:
            collector.add_dynamic_probe(
                "link",
                lambda: {
                    link.name: link.queued_bytes for link in links
                },
                unit="bytes",
            )
        if collector.config.per_voq:
            def _voq_depths() -> dict:
                out = {}
                for fa in fas:
                    for voq_id, voq in fa.voq_items():
                        nbytes, _packets, credit = voq.snapshot()
                        key = f"fa{fa.fa_id}.{voq_id}"
                        out[f"{key}.bytes"] = nbytes
                        out[f"{key}.credit"] = credit
                return out

            collector.add_dynamic_probe("voq", _voq_depths, unit="bytes")

    def telemetry_hints(self) -> dict:
        """Edge rate plus a host-to-host propagation estimate: two host
        links and an up-and-down traversal of every fabric tier."""
        cfg = self.config
        return {
            "link_rate_bps": cfg.host_link_rate_bps,
            "propagation_ns": (
                2 * cfg.host_propagation_ns
                + 2 * self.plan.tiers * cfg.fabric_propagation_ns
            ),
        }
