"""Fabric-agnostic topology specs and the wiring plan they compile to.

The topology dataclasses (:class:`OneTierSpec`, :class:`TwoTierSpec`,
:class:`ThreeTierSpec`) describe the *shape* of a fabric — counts of
edge devices, fabric elements per tier, pods, spines.  They say nothing
about the switching mechanism, which is exactly why both the Stardust
cell fabric and the push/ECMP baseline can be built from the same spec
(the paper's mechanism-vs-mechanism comparisons of Figs 7/10/12 depend
on that).

:func:`build_wiring_plan` compiles a spec into an explicit
:class:`WiringPlan`: an ordered sequence of node and duplex-link
operations plus per-element down-route descriptions.  Concrete fabrics
replay the operations with their own device types and install routes
from the plan instead of re-deriving the topology with per-tier special
cases.  The operation order is part of the contract — replaying it
reproduces the historical construction order bit for bit, which keeps
seeded runs identical across refactors.

Every physical link is an independent serial link (link bundle of one,
the paper's core scaling argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: Node-reference kinds used inside a plan.  A :data:`NodeRef` is a
#: ``(kind, id)`` pair; ids are dense per kind (edge 0..N-1, element
#: 0..M-1 in creation order).
EDGE = "edge"
ELEMENT = "element"

NodeRef = Tuple[str, int]


# ----------------------------------------------------------------------
# Topology specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OneTierSpec:
    """FAs directly attached to a single row of Fabric Elements."""

    num_fas: int
    uplinks_per_fa: int
    hosts_per_fa: int
    num_fes: Optional[int] = None  # default: one uplink per FE

    def __post_init__(self) -> None:
        if self.num_fas < 2:
            raise ValueError("need at least two Fabric Adapters")
        if self.uplinks_per_fa < 1 or self.hosts_per_fa < 1:
            raise ValueError("links per device must be positive")
        fes = self.num_fes if self.num_fes is not None else self.uplinks_per_fa
        if fes < 1 or self.uplinks_per_fa % fes != 0:
            raise ValueError("uplinks_per_fa must be a multiple of num_fes")

    @property
    def tiers(self) -> int:
        """Number of fabric tiers in this topology."""
        return 1

    @property
    def fe_count(self) -> int:
        """Number of Fabric Elements in the single tier."""
        return self.num_fes if self.num_fes is not None else self.uplinks_per_fa


@dataclass(frozen=True)
class TwoTierSpec:
    """Pods of (FAs x tier-1 FEs) under a spine row of tier-2 FEs.

    Within a pod every FA has one link to every tier-1 FE; every tier-1
    FE has one uplink to every spine.  This mirrors the §6.2 setup
    (256 FAs, t=32, 128 tier-1 FEs, 64 spines) at configurable scale.
    """

    pods: int
    fas_per_pod: int
    fes_per_pod: int
    spines: int
    hosts_per_fa: int

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ValueError("need at least one pod")
        if min(self.fas_per_pod, self.fes_per_pod, self.spines) < 1:
            raise ValueError("pod shape must be positive")
        if self.hosts_per_fa < 1:
            raise ValueError("hosts_per_fa must be positive")

    @property
    def tiers(self) -> int:
        """Number of fabric tiers in this topology."""
        return 2

    @property
    def num_fas(self) -> int:
        """Total Fabric Adapters across all pods."""
        return self.pods * self.fas_per_pod

    @property
    def uplinks_per_fa(self) -> int:
        """Fabric uplinks per Fabric Adapter."""
        return self.fes_per_pod


@dataclass(frozen=True)
class ThreeTierSpec:
    """Pods of (FAs x tier-1 x tier-2) under a global tier-3 spine row.

    Within a pod: every FA connects once to every tier-1 FE, every
    tier-1 FE once to every tier-2 FE.  Globally: every tier-2 FE
    connects once to every tier-3 spine.  §5.1: each added tier
    multiplies reach by another factor of the radix — with unbundled
    links, by the full radix.
    """

    pods: int
    fas_per_pod: int
    fes1_per_pod: int
    fes2_per_pod: int
    spines: int
    hosts_per_fa: int

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ValueError("need at least one pod")
        if min(
            self.fas_per_pod, self.fes1_per_pod,
            self.fes2_per_pod, self.spines,
        ) < 1:
            raise ValueError("pod shape must be positive")
        if self.hosts_per_fa < 1:
            raise ValueError("hosts_per_fa must be positive")

    @property
    def tiers(self) -> int:
        """Number of fabric tiers in this topology."""
        return 3

    @property
    def num_fas(self) -> int:
        """Total Fabric Adapters across all pods."""
        return self.pods * self.fas_per_pod

    @property
    def uplinks_per_fa(self) -> int:
        """Fabric uplinks per Fabric Adapter."""
        return self.fes1_per_pod


#: Any of the topology spec shapes :func:`build_wiring_plan` accepts.
#: (Named to avoid clashing with the serializable scenario-level
#: ``repro.experiments.spec.TopologySpec``.)
AnyTopologySpec = Union[OneTierSpec, TwoTierSpec, ThreeTierSpec]


# ----------------------------------------------------------------------
# Wiring plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EdgeNode:
    """One edge device (Fabric Adapter / ToR role)."""

    edge_id: int
    pod: Optional[int] = None


@dataclass(frozen=True)
class ElementNode:
    """One fabric-interior device (Fabric Element / fabric switch).

    ``sample_queues`` marks last-stage down-links whose queue depths
    feed the Fig 9 instrumentation.
    """

    element_id: int
    tier: int
    pod: Optional[int] = None
    sample_queues: bool = False


@dataclass(frozen=True)
class LinkPair:
    """One full-duplex link between two already-created nodes."""

    lower: NodeRef
    upper: NodeRef


@dataclass(frozen=True)
class ElementRoutes:
    """Down-route description for one element.

    ``down`` lists ``(edge_id, via)`` pairs: the element reaches
    ``edge_id`` through every one of its ports whose neighbor is in
    ``via`` (port order preserved).  ``up_reaches_everything`` is the
    static-reachability escape hatch: any destination without a down
    route is reachable through every up port.
    """

    up_reaches_everything: bool
    down: Tuple[Tuple[int, Tuple[NodeRef, ...]], ...]


Op = Union[EdgeNode, ElementNode, LinkPair]


@dataclass
class WiringPlan:
    """A topology compiled to explicit build operations and routes."""

    spec: object
    tiers: int
    hosts_per_edge: int
    edges: List[EdgeNode] = field(default_factory=list)
    elements: List[ElementNode] = field(default_factory=list)
    ops: List[Op] = field(default_factory=list)
    #: element_id -> its routing description.
    routes: Dict[int, ElementRoutes] = field(default_factory=dict)

    def _add_edge(self, node: EdgeNode) -> None:
        self.edges.append(node)
        self.ops.append(node)

    def _add_element(self, node: ElementNode) -> None:
        self.elements.append(node)
        self.ops.append(node)

    def _link(self, lower: NodeRef, upper: NodeRef) -> None:
        self.ops.append(LinkPair(lower, upper))


def _plan_one_tier(spec: OneTierSpec) -> WiringPlan:
    plan = WiringPlan(spec, tiers=1, hosts_per_edge=spec.hosts_per_fa)
    for fa in range(spec.num_fas):
        plan._add_edge(EdgeNode(fa))
    direct = tuple(
        (fa, ((EDGE, fa),)) for fa in range(spec.num_fas)
    )
    links_per_fe = spec.uplinks_per_fa // spec.fe_count
    for fe in range(spec.fe_count):
        plan._add_element(ElementNode(fe, tier=1, sample_queues=True))
        for fa in range(spec.num_fas):
            for _ in range(links_per_fe):
                plan._link((EDGE, fa), (ELEMENT, fe))
        plan.routes[fe] = ElementRoutes(
            up_reaches_everything=False, down=direct
        )
    return plan


def _plan_two_tier(spec: TwoTierSpec) -> WiringPlan:
    plan = WiringPlan(spec, tiers=2, hosts_per_edge=spec.hosts_per_fa)
    for fa in range(spec.num_fas):
        plan._add_edge(EdgeNode(fa, pod=fa // spec.fas_per_pod))
    element_id = 0
    tier1_by_pod: List[List[int]] = []
    for pod in range(spec.pods):
        pod_edges = range(
            pod * spec.fas_per_pod, (pod + 1) * spec.fas_per_pod
        )
        pod_tier1: List[int] = []
        for _ in range(spec.fes_per_pod):
            plan._add_element(
                ElementNode(element_id, tier=1, pod=pod, sample_queues=True)
            )
            for fa in pod_edges:
                plan._link((EDGE, fa), (ELEMENT, element_id))
            plan.routes[element_id] = ElementRoutes(
                up_reaches_everything=True,
                down=tuple((fa, ((EDGE, fa),)) for fa in pod_edges),
            )
            pod_tier1.append(element_id)
            element_id += 1
        tier1_by_pod.append(pod_tier1)
    spine_ids: List[int] = []
    for _ in range(spec.spines):
        plan._add_element(ElementNode(element_id, tier=2))
        spine_ids.append(element_id)
        element_id += 1
    for tier1 in tier1_by_pod:
        for low in tier1:
            for spine in spine_ids:
                plan._link((ELEMENT, low), (ELEMENT, spine))
    # A spine reaches an edge through every tier-1 element of its pod.
    spine_down = tuple(
        (edge.edge_id,
         tuple((ELEMENT, low) for low in tier1_by_pod[edge.pod]))
        for edge in plan.edges
    )
    for spine in spine_ids:
        plan.routes[spine] = ElementRoutes(
            up_reaches_everything=False, down=spine_down
        )
    return plan


def _plan_three_tier(spec: ThreeTierSpec) -> WiringPlan:
    plan = WiringPlan(spec, tiers=3, hosts_per_edge=spec.hosts_per_fa)
    for fa in range(spec.num_fas):
        plan._add_edge(EdgeNode(fa, pod=fa // spec.fas_per_pod))
    element_id = 0
    tier2_by_pod: List[List[int]] = []
    tier2_all: List[int] = []
    for pod in range(spec.pods):
        pod_edges = range(
            pod * spec.fas_per_pod, (pod + 1) * spec.fas_per_pod
        )
        tier1: List[int] = []
        for _ in range(spec.fes1_per_pod):
            plan._add_element(
                ElementNode(element_id, tier=1, pod=pod, sample_queues=True)
            )
            for fa in pod_edges:
                plan._link((EDGE, fa), (ELEMENT, element_id))
            plan.routes[element_id] = ElementRoutes(
                up_reaches_everything=True,
                down=tuple((fa, ((EDGE, fa),)) for fa in pod_edges),
            )
            tier1.append(element_id)
            element_id += 1
        # A tier-2 element reaches every edge of its own pod through
        # every tier-1 element below it; anything else goes up.
        tier2_down = tuple(
            (fa, tuple((ELEMENT, low) for low in tier1)) for fa in pod_edges
        )
        pod_tier2: List[int] = []
        for _ in range(spec.fes2_per_pod):
            plan._add_element(ElementNode(element_id, tier=2, pod=pod))
            for low in tier1:
                plan._link((ELEMENT, low), (ELEMENT, element_id))
            plan.routes[element_id] = ElementRoutes(
                up_reaches_everything=True, down=tier2_down
            )
            pod_tier2.append(element_id)
            element_id += 1
        tier2_by_pod.append(pod_tier2)
        tier2_all.extend(pod_tier2)
    spine_ids: List[int] = []
    for _ in range(spec.spines):
        plan._add_element(ElementNode(element_id, tier=3))
        spine_ids.append(element_id)
        element_id += 1
    for mid in tier2_all:
        for spine in spine_ids:
            plan._link((ELEMENT, mid), (ELEMENT, spine))
    # A spine reaches an edge through every tier-2 element of its pod.
    spine_down = tuple(
        (edge.edge_id,
         tuple((ELEMENT, mid) for mid in tier2_by_pod[edge.pod]))
        for edge in plan.edges
    )
    for spine in spine_ids:
        plan.routes[spine] = ElementRoutes(
            up_reaches_everything=False, down=spine_down
        )
    return plan


_PLANNERS = {
    OneTierSpec: _plan_one_tier,
    TwoTierSpec: _plan_two_tier,
    ThreeTierSpec: _plan_three_tier,
}


def build_wiring_plan(spec: AnyTopologySpec) -> WiringPlan:
    """Compile a topology spec into its :class:`WiringPlan`."""
    try:
        planner = _PLANNERS[type(spec)]
    except KeyError:
        known = ", ".join(sorted(cls.__name__ for cls in _PLANNERS))
        raise TypeError(
            f"unknown topology spec {type(spec).__name__}; known: {known}"
        ) from None
    return planner(spec)
