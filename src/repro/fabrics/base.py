"""The fabric contract: :class:`FabricNetwork` + :class:`FabricMetrics`.

Every fabric backend — the Stardust cell fabric, the push/ECMP
baseline, or a third one dropped in through the registry — satisfies
the same contract:

* construction from ``(topology_spec, config, sim)``, with the wiring
  derived from a shared :class:`~repro.fabrics.wiring.WiringPlan`;
* host attachment (:meth:`FabricNetwork.attach_host` /
  :meth:`FabricNetwork.host_at`) and run control
  (:meth:`FabricNetwork.run` / :meth:`FabricNetwork.stop`);
* one typed metrics surface, :meth:`FabricNetwork.collect_metrics`,
  returning a :class:`FabricMetrics` with explicit units — no more
  per-fabric ad-hoc method sets for callers to sniff with ``hasattr``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional, Tuple

from repro.fabrics.wiring import AnyTopologySpec, WiringPlan, build_wiring_plan
from repro.net.addressing import PortAddress
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.stats import Histogram
from repro.sim.units import gbps

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.metrics import ResilienceMetrics
    from repro.telemetry.collector import TelemetryCollector


@dataclass
class FabricMetrics:
    """Everything a run wants to know about a fabric, with units.

    Histograms may be empty when a fabric does not produce the signal
    (the push baseline stamps no cells, so ``cell_latency_ns`` stays
    empty there); counters are always meaningful.
    """

    #: Registry name of the fabric that produced these metrics.
    fabric: str
    #: Fabric-traversal latency of individual cells, in nanoseconds.
    cell_latency_ns: Histogram
    #: Host-to-host packet latency, in nanoseconds.
    packet_latency_ns: Histogram
    #: Queue depths observed at last-stage fabric down-links.
    queue_depth: Histogram
    #: Unit of ``queue_depth`` samples: ``"cells"`` or ``"bytes"``.
    queue_depth_unit: str
    #: Loss at the fabric edge (FA ingress buffers / ToR queues).
    ingress_drops: int
    #: Loss inside the fabric proper (§5.2's complaint about push;
    #: must stay zero for Stardust, §5.5).
    fabric_drops: int
    #: Bytes handed to hosts across all edge egress ports.
    delivered_bytes: int
    #: Resilience section: filled in only when a fault injector is
    #: attached to the network (see :mod:`repro.faults`); ``None`` on
    #: unfaulted runs, so the historical metrics shape is untouched.
    resilience: Optional["ResilienceMetrics"] = field(default=None)

    @property
    def total_drops(self) -> int:
        """All loss inside the network, wherever it happened."""
        return self.ingress_drops + self.fabric_drops

    def queue_summary(self) -> Dict[str, float]:
        """Mean/p99 queue depth keyed with the unit, or {} if unsampled."""
        if self.queue_depth.count == 0:
            return {}
        unit = self.queue_depth_unit
        return {
            f"queue_mean_{unit}": self.queue_depth.mean(),
            f"queue_p99_{unit}": self.queue_depth.pct(99),
        }

    def resilience_summary(self) -> Dict[str, float]:
        """Flat resilience entries for result metrics ({} if unfaulted)."""
        if self.resilience is None:
            return {}
        return self.resilience.summary()


class FabricNetwork(ABC):
    """A fully wired fabric plus host attachment points.

    Subclasses implement :meth:`_build` (replay the wiring plan with
    their own device types), the small host-attachment hooks, and
    :meth:`collect_metrics`.  Registering the class with
    :func:`~repro.fabrics.registry.fabric` makes it constructible by
    name from scenario specs.
    """

    #: Registry name, filled in by the ``@fabric(...)`` decorator.
    fabric_name: ClassVar[str] = ""

    def __init__(
        self,
        spec: AnyTopologySpec,
        config: object = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.spec = spec
        self.config = config
        # Explicit None test: Simulator defines __len__ (pending event
        # count), so a freshly built engine is *falsy* and `sim or
        # Simulator()` would silently discard a caller-provided core —
        # exactly what the kernel plumbing passes in.
        self.sim = Simulator() if sim is None else sim
        self.plan: WiringPlan = build_wiring_plan(spec)
        self._host_sinks: Dict[PortAddress, Entity] = {}
        #: Set by :meth:`attach_faults`; ``None`` on unfaulted runs.
        self.fault_injector: Optional["FaultInjector"] = None
        #: Set by :func:`repro.telemetry.collector.attach_collector`;
        #: ``None`` on uninstrumented runs.
        self.telemetry: Optional["TelemetryCollector"] = None
        self._build(self.plan)

    # ------------------------------------------------------------------
    # Construction contract
    # ------------------------------------------------------------------
    @abstractmethod
    def _build(self, plan: WiringPlan) -> None:
        """Create devices and links by replaying ``plan.ops`` in order."""

    @classmethod
    @abstractmethod
    def for_experiment(
        cls,
        topology: AnyTopologySpec,
        rate: int = gbps(10),
        sim: Optional[Simulator] = None,
        **config_overrides: object,
    ) -> "FabricNetwork":
        """Build this fabric at experiment scale.

        ``rate`` sets both fabric and host link rates;
        ``config_overrides`` are fields of the fabric's own config
        dataclass.  This is the constructor scenario specs resolve to.
        """

    # ------------------------------------------------------------------
    # Host attachment (shared; subclasses fill in the edge hooks)
    # ------------------------------------------------------------------
    @abstractmethod
    def _edge_device(self, index: int) -> Entity:
        """The edge device (FA / ToR) with edge id ``index``."""

    @abstractmethod
    def _host_link(self) -> Tuple[int, int]:
        """``(rate_bps, propagation_ns)`` for host attachment links."""

    @abstractmethod
    def _register_host_port(
        self, device: Entity, to_host: Link, address: PortAddress
    ) -> None:
        """Record ``to_host`` as ``device``'s port for ``address``."""

    def _check_host_attach(
        self, device: Entity, address: PortAddress
    ) -> None:
        """Fabric-specific attach validation (default: none)."""

    def _duplex_links(
        self, lower: Entity, upper: Entity, rate_bps: int,
        propagation_ns: int,
    ) -> Tuple[Link, Link]:
        """The two simplex links of one full-duplex link, named
        ``lower->upper`` / ``upper->lower`` (up first, then down)."""
        up = Link(
            self.sim, lower, upper, rate_bps, propagation_ns,
            name=f"{lower.name}->{upper.name}",
        )
        down = Link(
            self.sim, upper, lower, rate_bps, propagation_ns,
            name=f"{upper.name}->{lower.name}",
        )
        return up, down

    def attach_host(
        self, address: PortAddress, host: Entity
    ) -> Tuple[Link, Link]:
        """Attach ``host`` at ``address``; returns (to_fabric, to_host).

        The host sends packets on the first returned link; the edge
        device delivers reassembled packets on the second.
        """
        if address in self._host_sinks:
            raise ValueError(f"host already attached at {address}")
        device = self._edge_device(address.fa)
        self._check_host_attach(device, address)
        rate_bps, propagation_ns = self._host_link()
        to_fabric, to_host = self._duplex_links(
            host, device, rate_bps, propagation_ns
        )
        host.attach_port(to_fabric)
        self._register_host_port(device, to_host, address)
        self._host_sinks[address] = host
        return to_fabric, to_host

    def host_at(self, address: PortAddress) -> Entity:
        """The host entity attached at ``address``."""
        return self._host_sinks[address]

    @property
    def host_count(self) -> int:
        """Number of attached hosts."""
        return len(self._host_sinks)

    # ------------------------------------------------------------------
    # Running & metrics
    # ------------------------------------------------------------------
    def run(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.sim.run_for(duration_ns)

    def stop(self) -> None:
        """Stop all periodic device tasks (teardown; default: none)."""

    def collect_metrics(self) -> FabricMetrics:
        """The fabric's typed metrics snapshot (cumulative since t=0).

        Subclasses implement :meth:`_collect_metrics`; when a fault
        injector is attached its resilience section is stamped onto the
        snapshot here, fabric-agnostically.
        """
        metrics = self._collect_metrics()
        if self.fault_injector is not None:
            metrics.resilience = self.fault_injector.resilience_metrics()
        return metrics

    @abstractmethod
    def _collect_metrics(self) -> FabricMetrics:
        """Build the fabric-specific :class:`FabricMetrics` snapshot."""

    # ------------------------------------------------------------------
    # Fault surface (see repro.faults)
    # ------------------------------------------------------------------
    def attach_faults(self, injector: "FaultInjector") -> None:
        """Register the fault injector whose resilience metrics ride
        this network's :meth:`collect_metrics` snapshots."""
        if self.fault_injector is not None:
            raise ValueError("a fault injector is already attached")
        self.fault_injector = injector

    def edge_devices(self) -> List[Entity]:
        """Edge devices (FAs / ToRs) in attachment order.

        Part of the fault surface: fabrics that support fault
        injection override this plus :meth:`fabric_devices`,
        :meth:`edge_uplinks` and :meth:`fabric_links`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a fault surface"
        )

    def fabric_devices(self) -> List[Entity]:
        """Fabric elements/switches in wiring-plan (tier-major) order."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a fault surface"
        )

    def edge_uplinks(self, index: int) -> List[Link]:
        """Edge device ``index``'s fabric-facing links, in wiring order."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a fault surface"
        )

    def fabric_links(self) -> List[Link]:
        """Every fabric-side simplex link (host links excluded)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a fault surface"
        )

    def fabric_drop_count(self) -> int:
        """Loss inside the fabric proper, as a cheap counter read.

        Same value as ``collect_metrics().fabric_drops`` without the
        histogram merges; subclasses override with a direct sum.
        """
        return self.collect_metrics().fabric_drops

    # ------------------------------------------------------------------
    # Telemetry surface (see repro.telemetry)
    # ------------------------------------------------------------------
    def register_probes(self, collector: "TelemetryCollector") -> None:
        """Register this fabric's time-series probes on ``collector``.

        The shared part covers what every fabric has — drop counters
        and delivered bytes; fabric-specific signals (VOQ depths,
        credit balances, link occupancy) come from
        :meth:`_register_fabric_probes` overrides.
        """
        collector.add_probe(
            "fabric.drops", self.fabric_drop_count, unit="frames"
        )
        self._register_fabric_probes(collector)

    def _register_fabric_probes(self, collector: "TelemetryCollector") -> None:
        """Fabric-specific probes (default: none)."""

    def telemetry_hints(self) -> Dict[str, int]:
        """Constants the FCT breakdown needs: ``link_rate_bps`` (edge
        link speed) and ``propagation_ns`` (an end-to-end propagation
        estimate).  ``{}`` means no breakdown is possible."""
        return {}
