"""The fabric registry: fabrics are named plugins, not special cases.

Mirrors the scenario registry of :mod:`repro.experiments.registry`:
a fabric class registers itself under a name (plus optional aliases)::

    @fabric("stardust")
    class StardustNetwork(FabricNetwork):
        ...

and everything downstream — ``builders.build_network``, the experiments
CLI, spec validation — resolves fabrics with :func:`get_fabric` /
:func:`build_fabric`.  A third fabric drops in by registering itself;
no runner or builder code changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Type


class UnknownFabricError(KeyError, ValueError):
    """Raised when a fabric name is not in the registry.

    Inherits ``ValueError`` too: spec validation historically raised
    ``ValueError`` for bad fabric names, and callers catching that
    must keep working.
    """

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return (
            f"unknown fabric {self.name!r}; "
            f"registered: {', '.join(self.known) or '(none)'}"
        )


@dataclass
class FabricEntry:
    """One registered fabric backend."""

    name: str
    cls: Type
    description: str = ""
    aliases: Tuple[str, ...] = ()


_REGISTRY: Dict[str, FabricEntry] = {}
_ALIASES: Dict[str, str] = {}


def fabric(name: str, description: str = "", aliases: Tuple[str, ...] = ()):
    """Class decorator registering a :class:`FabricNetwork` under ``name``."""

    def register(cls):
        for candidate in (name, *aliases):
            if candidate in _REGISTRY or candidate in _ALIASES:
                raise ValueError(f"fabric {candidate!r} already registered")
        doc = (cls.__doc__ or "").strip()
        _REGISTRY[name] = FabricEntry(
            name,
            cls,
            description or (doc.splitlines()[0] if doc else ""),
            tuple(aliases),
        )
        for alias in aliases:
            _ALIASES[alias] = name
        cls.fabric_name = name
        return cls

    return register


def get_fabric(name: str) -> FabricEntry:
    """The registry entry for ``name`` (UnknownFabricError if absent)."""
    try:
        return _REGISTRY[_ALIASES.get(name, name)]
    except KeyError:
        raise UnknownFabricError(name, known_fabric_names()) from None


def build_fabric(name: str, topology, **kwargs):
    """Construct the named fabric on ``topology`` (kwargs pass through)."""
    return get_fabric(name).cls(topology, **kwargs)


def fabric_names() -> List[str]:
    """All registered canonical fabric names, sorted (aliases excluded)."""
    return sorted(_REGISTRY)


def known_fabric_names() -> List[str]:
    """Every name :func:`get_fabric` accepts: canonical names + aliases."""
    return sorted(_REGISTRY) + sorted(_ALIASES)
