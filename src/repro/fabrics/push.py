"""The "push" data center fabric: the §5.2 strawman, fully built.

Same topologies as :class:`repro.fabrics.stardust.StardustNetwork`
(one/two/three-tier, via the shared wiring plan), same link rates and
propagation — but every node is an autonomous Ethernet packet switch
that pushes packets toward the destination with ECMP and drops on local
congestion.  Host experiments run unchanged against either network, so
Fig 7, Fig 10 and Fig 12 compare mechanism against mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.ethernet import EthConfig, EthernetSwitch, EthPort
from repro.fabrics.base import FabricMetrics, FabricNetwork
from repro.fabrics.registry import fabric
from repro.fabrics.wiring import EDGE, EdgeNode, ElementNode, WiringPlan
from repro.net.addressing import DeviceId, PortAddress
from repro.sim.engine import Simulator
from repro.sim.link import Link
from repro.sim.stats import Histogram
from repro.sim.units import gbps

#: Fabric switch ids start here so they never collide with ToR ids.
_FABRIC_ID_BASE = 10_000


@fabric(
    "push",
    description="Ethernet ECMP strawman: push packets, drop on congestion",
    aliases=("ethernet",),
)
class PushFabricNetwork(FabricNetwork):
    """Ethernet-switch fabric mirroring a Stardust topology."""

    def __init__(
        self,
        spec,
        config: Optional[EthConfig] = None,
        sim: Optional[Simulator] = None,
        fabric_link_rate_bps: int = gbps(50),
        host_link_rate_bps: int = gbps(50),
        fabric_propagation_ns: int = 100,
        host_propagation_ns: int = 50,
    ) -> None:
        self.fabric_link_rate_bps = fabric_link_rate_bps
        self.host_link_rate_bps = host_link_rate_bps
        self.fabric_propagation_ns = fabric_propagation_ns
        self.host_propagation_ns = host_propagation_ns
        self.tors: List[EthernetSwitch] = []
        self.fabric: List[EthernetSwitch] = []
        self._switch_by_element: Dict[int, EthernetSwitch] = {}
        super().__init__(spec, config=config or EthConfig(), sim=sim)

    @classmethod
    def for_experiment(
        cls,
        topology,
        rate: int = gbps(10),
        sim: Optional[Simulator] = None,
        **eth_overrides,
    ) -> "PushFabricNetwork":
        """The Ethernet ECMP fabric on the same topology."""
        config = EthConfig(**eth_overrides) if eth_overrides else EthConfig()
        return cls(
            topology, config=config, sim=sim,
            fabric_link_rate_bps=rate, host_link_rate_bps=rate,
        )

    # ------------------------------------------------------------------
    # Topology construction (plan replay)
    # ------------------------------------------------------------------
    def _build(self, plan: WiringPlan) -> None:
        for op in plan.ops:
            if isinstance(op, EdgeNode):
                self.tors.append(
                    self._new_switch(op.edge_id, f"tor{op.edge_id}", 0)
                )
            elif isinstance(op, ElementNode):
                self._new_fabric_switch(plan, op)
            else:
                lower = (
                    self.tors[op.lower[1]]
                    if op.lower[0] == EDGE
                    else self._switch_by_element[op.lower[1]]
                )
                self._connect(lower, self._switch_by_element[op.upper[1]])
        self._install_routes(plan)

    def _new_switch(self, sid: int, name: str, tier: int) -> EthernetSwitch:
        return EthernetSwitch(self.sim, self.config, sid, name, tier=tier)

    def _new_fabric_switch(self, plan: WiringPlan, node: ElementNode) -> None:
        # Two-plus-tier fabrics name their top row "spine"; a one-tier
        # fabric's single row keeps the historical "agg" name.
        role = "spine" if plan.tiers > 1 and node.tier == plan.tiers else "agg"
        sw = self._new_switch(
            _FABRIC_ID_BASE + node.element_id,
            f"{role}{node.element_id}",
            node.tier,
        )
        sw.sample_queues = node.sample_queues
        self.fabric.append(sw)
        self._switch_by_element[node.element_id] = sw

    def _connect(self, lower: EthernetSwitch, upper: EthernetSwitch) -> None:
        """Full-duplex fabric link between two switches."""
        up, down = self._duplex_links(
            lower, upper, self.fabric_link_rate_bps,
            self.fabric_propagation_ns,
        )
        lower.add_port(up, "up", neighbor=upper.switch_id)
        upper.add_port(down, "down", neighbor=lower.switch_id)

    def _install_routes(self, plan: WiringPlan) -> None:
        """Install down-routes from the plan's route descriptions.

        An element reaches an edge through every down port whose
        neighbor is named in the route's via-set; destinations without
        a down route fall back to the up ports at forwarding time
        (:meth:`EthernetSwitch._route`), so the plan's
        ``up_reaches_everything`` flag needs no explicit state here.
        """
        for node in plan.elements:
            sw = self._switch_by_element[node.element_id]
            by_neighbor: Dict[DeviceId, List[EthPort]] = {}
            for port in sw.eth_ports:
                if port.direction == "down":
                    by_neighbor.setdefault(port.neighbor, []).append(port)
            for edge_id, vias in plan.routes[node.element_id].down:
                for kind, neighbor_id in vias:
                    sid = (
                        neighbor_id if kind == EDGE
                        else _FABRIC_ID_BASE + neighbor_id
                    )
                    for port in by_neighbor[sid]:
                        sw.add_down_route(edge_id, port)

    # ------------------------------------------------------------------
    # Hosts
    # ------------------------------------------------------------------
    def _edge_device(self, index: int) -> EthernetSwitch:
        return self.tors[index]

    def _host_link(self):
        return self.host_link_rate_bps, self.host_propagation_ns

    def _register_host_port(
        self, tor: EthernetSwitch, to_host: Link, address: PortAddress
    ) -> None:
        tor.add_port(to_host, "host", host_port_index=address.port)

    # ------------------------------------------------------------------
    # Fault surface (see repro.faults)
    # ------------------------------------------------------------------
    def edge_devices(self) -> List[EthernetSwitch]:
        """ToR switches, in edge-id order."""
        return list(self.tors)

    def fabric_devices(self) -> List[EthernetSwitch]:
        """Fabric switches in wiring-plan order (tier 1 first)."""
        return list(self.fabric)

    def edge_uplinks(self, index: int) -> List[Link]:
        """ToR ``index``'s uplinks toward the first fabric tier."""
        return [p.out for p in self.tors[index].up_ports]

    def fabric_links(self) -> List[Link]:
        """Every fabric-side simplex link (host ports excluded)."""
        return [
            p.out
            for sw in (*self.tors, *self.fabric)
            for p in sw.eth_ports
            if p.direction != "host"
        ]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _collect_metrics(self) -> FabricMetrics:
        """The unified metrics snapshot (queue depths are in bytes).

        The push fabric stamps no cells, so the latency histograms stay
        empty — flow completion times live with the transport trackers.
        """
        return FabricMetrics(
            fabric=self.fabric_name,
            cell_latency_ns=Histogram("push.cell_latency_ns"),
            packet_latency_ns=Histogram("push.packet_latency_ns"),
            queue_depth=self.fabric_queue_depth(),
            queue_depth_unit="bytes",
            ingress_drops=self.edge_drops(),
            fabric_drops=self.fabric_drops(),
            delivered_bytes=self.total_delivered_bytes(),
        )

    def total_drops(self) -> int:
        """Packets dropped inside the network (ToRs + fabric)."""
        return self.edge_drops() + self.fabric_drops()

    def edge_drops(self) -> int:
        """Packets lost at ToRs: queue drops, blackholed ECMP paths
        and dead-device drops (the latter two only under faults)."""
        return sum(
            s.dropped + s.blackholed + s.dead_drops for s in self.tors
        )

    def fabric_drops(self) -> int:
        """Packets lost in the fabric proper (§5.2's complaint):
        queue drops plus fault-induced blackholing/device death."""
        return sum(
            s.dropped + s.blackholed + s.dead_drops for s in self.fabric
        )

    def fabric_drop_count(self) -> int:
        """Cheap counter read of in-fabric loss (no histogram merges)."""
        return self.fabric_drops()

    def fabric_queue_depth(self) -> Histogram:
        """Merged queue-depth samples from fabric switches (bytes)."""
        merged = Histogram("push.queue_bytes")
        for sw in self.fabric:
            merged.merge(sw.queue_depth)
        return merged

    def total_delivered_bytes(self) -> int:
        """Payload bytes handed to hosts across all ToR host ports.

        Counted in payload bytes (not wire bytes), matching the
        Stardust fabric's accounting so cross-fabric
        ``FabricMetrics.delivered_bytes`` comparisons are
        apples-to-apples.
        """
        return sum(tor.delivered_host_bytes for tor in self.tors)

    # ------------------------------------------------------------------
    # Telemetry surface (see repro.telemetry)
    # ------------------------------------------------------------------
    def _register_fabric_probes(self, collector) -> None:
        """Push-fabric probes: output-queue bytes (the congestion signal
        this fabric drops on), cumulative drops, in-flight frames."""
        switches = [*self.tors, *self.fabric]
        # Port lists are walked at sample time: host-facing ToR ports
        # are attached *after* probe registration.
        collector.add_probe(
            "push.queued_bytes",
            lambda: sum(
                p.out.queued_bytes for sw in switches for p in sw.eth_ports
            ),
            unit="bytes",
        )
        collector.add_probe(
            "push.inflight_frames",
            lambda: sum(
                p.out.in_flight_frames
                for sw in switches
                for p in sw.eth_ports
            ),
            unit="frames",
        )
        collector.add_probe(
            "push.dropped_frames",
            lambda: sum(sw.dropped for sw in switches),
            unit="frames",
        )
        if collector.config.per_link:
            fabric_ports = [
                p.out
                for sw in switches
                for p in sw.eth_ports
                if p.direction != "host"
            ]
            collector.add_dynamic_probe(
                "link",
                lambda: {
                    port.name: port.queued_bytes for port in fabric_ports
                },
                unit="bytes",
            )

    def telemetry_hints(self) -> dict:
        """Edge rate plus a host-to-host propagation estimate (two host
        links, up and down through every fabric tier)."""
        return {
            "link_rate_bps": self.host_link_rate_bps,
            "propagation_ns": (
                2 * self.host_propagation_ns
                + 2 * self.plan.tiers * self.fabric_propagation_ns
            ),
        }
