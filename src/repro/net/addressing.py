"""Addressing used across the fabric.

Stardust routes on *destination Fabric Adapter* identity, not on end-host
addresses: the Fabric Adapter maps each host-facing destination to a
``PortAddress`` (Fabric Adapter id + downlink port number), and everything
inside the fabric only ever sees the Fabric Adapter id.
"""

from __future__ import annotations

from dataclasses import dataclass

DeviceId = int


@dataclass(frozen=True, order=True)
class PortAddress:
    """A (Fabric Adapter, downlink port) pair — a VOQ's destination."""

    fa: DeviceId
    port: int

    def __post_init__(self) -> None:
        if self.fa < 0:
            raise ValueError(f"fa id must be non-negative, got {self.fa}")
        if self.port < 0:
            raise ValueError(f"port must be non-negative, got {self.port}")
        # Addresses sit inside every VoqId and flow key; caching the
        # hash (same value the generated __hash__ computes) makes those
        # nested hashes one attribute read.
        object.__setattr__(self, "_hash", hash((self.fa, self.port)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"fa{self.fa}:p{self.port}"
