"""Flows and flow-completion-time tracking.

A :class:`Flow` describes an application-level transfer (src, dst, size);
:class:`FlowTracker` collects per-flow delivery statistics the
evaluation figures are built from (throughput ranks in Fig 10(a), FCT
CDFs in Fig 10(b), incast completion in Fig 10(c)).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addressing import PortAddress

_flow_ids = itertools.count(1)


def reset_flow_ids(start: int = 1) -> None:
    """Restart the global flow-id counter.

    Flow ids feed the Ethernet baseline's ECMP hash, so a run's results
    depend on how many flows the *process* created before it.  Hermetic
    experiment runs (:mod:`repro.experiments.runner`) reset the counter
    first so the same spec gives the same result in any process.
    """
    global _flow_ids
    _flow_ids = itertools.count(start)


@dataclass
class Flow:
    """An application transfer.  ``size_bytes=None`` means long-running."""

    src: PortAddress
    dst: PortAddress
    size_bytes: Optional[int] = None
    start_ns: int = 0
    priority: int = 0
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ValueError("flow size must be positive or None")
        if self.start_ns < 0:
            raise ValueError("flow start must be non-negative")


@dataclass
class FlowStats:
    """Delivery record for one flow, updated by the destination."""

    flow: Flow
    bytes_delivered: int = 0
    first_byte_ns: Optional[int] = None
    last_byte_ns: Optional[int] = None
    completed_ns: Optional[int] = None

    @property
    def fct_ns(self) -> Optional[int]:
        """Flow completion time, if the flow finished."""
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.flow.start_ns

    def goodput_bps(self, window_ns: Optional[int] = None) -> float:
        """Average delivered rate over the flow's active window."""
        if window_ns is None:
            if self.first_byte_ns is None or self.last_byte_ns is None:
                return 0.0
            window_ns = self.last_byte_ns - self.flow.start_ns
        if window_ns <= 0:
            return 0.0
        return self.bytes_delivered * 8 * 1e9 / window_ns


class FlowTracker:
    """Registry of flows and their delivery statistics."""

    def __init__(self) -> None:
        self._stats: Dict[int, FlowStats] = {}
        #: Subflow id -> parent flow id (MPTCP stripes several wire-level
        #: flows into one logical transfer).
        self._aliases: Dict[int, int] = {}

    def register(self, flow: Flow) -> FlowStats:
        """Track ``flow``; returns its (empty) stats record."""
        if flow.flow_id in self._stats:
            raise ValueError(f"flow {flow.flow_id} already registered")
        stats = FlowStats(flow)
        self._stats[flow.flow_id] = stats
        return stats

    def alias(self, subflow_id: int, parent_id: int) -> None:
        """Credit deliveries for ``subflow_id`` to ``parent_id``."""
        if parent_id not in self._stats:
            raise KeyError(f"parent flow {parent_id} not registered")
        self._aliases[subflow_id] = parent_id

    def record_delivery(self, flow_id: int, time_ns: int, nbytes: int) -> None:
        """Count ``nbytes`` of in-order application data for ``flow_id``."""
        flow_id = self._aliases.get(flow_id, flow_id)
        stats = self._stats[flow_id]
        if stats.first_byte_ns is None:
            stats.first_byte_ns = time_ns
        stats.last_byte_ns = time_ns
        stats.bytes_delivered += nbytes
        flow = stats.flow
        if (
            flow.size_bytes is not None
            and stats.completed_ns is None
            and stats.bytes_delivered >= flow.size_bytes
        ):
            stats.completed_ns = time_ns

    def get(self, flow_id: int) -> FlowStats:
        """Stats for ``flow_id`` (KeyError if unregistered)."""
        return self._stats[flow_id]

    def all(self) -> List[FlowStats]:
        """Stats of every registered flow."""
        return list(self._stats.values())

    def completed(self) -> List[FlowStats]:
        """Stats of flows that have finished."""
        return [s for s in self._stats.values() if s.completed_ns is not None]

    def fcts_ns(self) -> List[int]:
        """Completion times of all finished flows (ns)."""
        return [s.fct_ns for s in self.completed() if s.fct_ns is not None]
