"""Packets and Ethernet on-wire framing.

A :class:`Packet` is a metadata-only object: it has sizes, addressing and
transport fields but carries no payload bytes.  Sizes matter everywhere
(serialization times, queue occupancy, packing), so the distinction
between *frame* bytes and *wire* bytes (frame + preamble + SFD + IPG) is
kept explicit — packing cells amortizes the wire overhead, which is one
of the paper's throughput arguments (§2.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.net.addressing import PortAddress

# Ethernet constants (bytes).
PREAMBLE_SFD_BYTES = 8
INTERPACKET_GAP_BYTES = 12
ETHERNET_OVERHEAD_BYTES = PREAMBLE_SFD_BYTES + INTERPACKET_GAP_BYTES  # 20
ETHERNET_HEADER_BYTES = 14
ETHERNET_FCS_BYTES = 4
MIN_ETHERNET_FRAME = 64
MAX_ETHERNET_PAYLOAD = 1500
JUMBO_FRAME = 9000

_packet_ids = itertools.count()


@dataclass(frozen=True)
class PauseFrame:
    """Flow control from a Fabric Adapter to its host (§5.4).

    ``pause=True`` asks the host to stop transmitting; ``pause=False``
    resumes it.  Modeled after PFC/802.3x at the host link only — the
    fabric itself never needs pause in normal operation.
    """

    pause: bool
    size_bytes: int = 64

    @property
    def wire_bytes(self) -> int:
        """On-wire size: frame plus preamble/SFD/IPG."""
        return wire_size(self.size_bytes)


def wire_size(frame_bytes: int) -> int:
    """On-wire bytes for one Ethernet frame (adds preamble/SFD/IPG)."""
    if frame_bytes < MIN_ETHERNET_FRAME:
        frame_bytes = MIN_ETHERNET_FRAME
    return frame_bytes + ETHERNET_OVERHEAD_BYTES


@dataclass
class Packet:
    """One Ethernet frame's worth of traffic.

    ``size_bytes`` is the frame size (headers + payload + FCS);
    :attr:`wire_bytes` adds the inter-packet overhead a real wire pays.
    Transport fields (``flow_id``, ``seq``, ``is_ack`` ...) are used by
    the TCP-family models, ``dst``/``src`` by switching, ``ecn``/``ecn_echo``
    by DCTCP/DCQCN, and ``priority`` by traffic-class experiments.
    """

    size_bytes: int
    src: PortAddress
    dst: PortAddress
    flow_id: int = 0
    seq: int = 0
    is_ack: bool = False
    ack_seq: int = 0
    ecn: bool = False
    ecn_echo: bool = False
    priority: int = 0
    created_ns: int = 0
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    # DCQCN congestion-notification packets.
    is_cnp: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(
                f"packet size must be positive, got {self.size_bytes}"
            )

    @property
    def wire_bytes(self) -> int:
        """On-wire size of the pause frame."""
        return wire_size(self.size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"<Packet#{self.pkt_id} {kind} flow={self.flow_id} "
            f"{self.src}->{self.dst} {self.size_bytes}B seq={self.seq}>"
        )
