"""Packet-level substrate: packets, Ethernet framing, flows, addresses."""

from repro.net.addressing import DeviceId, PortAddress
from repro.net.packet import (
    ETHERNET_HEADER_BYTES,
    ETHERNET_OVERHEAD_BYTES,
    MAX_ETHERNET_PAYLOAD,
    MIN_ETHERNET_FRAME,
    Packet,
    wire_size,
)
from repro.net.flow import Flow, FlowStats, FlowTracker

__all__ = [
    "DeviceId",
    "PortAddress",
    "Packet",
    "wire_size",
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_OVERHEAD_BYTES",
    "MIN_ETHERNET_FRAME",
    "MAX_ETHERNET_PAYLOAD",
    "Flow",
    "FlowStats",
    "FlowTracker",
]
