"""The telemetry collector: wires probes, spans and meta-metrics.

:func:`attach_collector` is the one-call entry point experiments use:

* arms the engine's probe hook (``Simulator.set_probe``) at the
  configured cadence — sampling rides the event stream, schedules no
  events of its own, and therefore cannot perturb a run's digest;
* asks the fabric to register its probes
  (``FabricNetwork.register_probes``): queue depths, buffer occupancy,
  credit balances, link utilization;
* registers engine meta-probes (wheel/spill occupancy, corpse count,
  cumulative events);
* wraps ``net.attach_host`` so every host attached afterwards reports
  flow spans into one shared :class:`~repro.telemetry.spans.SpanRecorder`.

After the run, :meth:`TelemetryCollector.finalize` disarms the probe
and returns the JSON-ready artifact.  Everything in the artifact is
deterministic for a given spec except the ``meta`` section, which holds
wall-clock-derived throughput numbers and is kept separate precisely so
determinism checks can ignore it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.probes import Series, TelemetryConfig
from repro.telemetry.spans import SpanRecorder

#: Artifact schema version (bump on incompatible shape changes).
SCHEMA = 1


class TelemetryCollector:
    """Samples registered probes on the engine's probe hook."""

    def __init__(self, net, config: Optional[TelemetryConfig] = None):
        self.net = net
        self.config = config or TelemetryConfig()
        self._series: Dict[str, Series] = {}
        self._probes: List[Tuple[Series, Callable[[], float]]] = []
        #: Dynamic probes return ``{key: value}`` maps; series appear
        #: lazily as keys do (VOQs are created on first traffic).
        self._dynamic: List[
            Tuple[str, str, Callable[[], Dict[str, float]]]
        ] = []
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder() if self.config.spans else None
        )
        self._trackers: List[Any] = []
        self.samples_taken = 0
        self._wall_start = time.perf_counter()
        self._wall_s: Optional[float] = None
        self._armed = False

    # ------------------------------------------------------------------
    # Probe registration
    # ------------------------------------------------------------------
    def add_probe(
        self, name: str, fn: Callable[[], float], unit: str = ""
    ) -> Series:
        """Register ``fn`` to be sampled every tick into series
        ``name``.  Registration order fixes artifact order."""
        if name in self._series:
            raise ValueError(f"duplicate telemetry series {name!r}")
        series = Series(name, unit=unit, capacity=self.config.capacity)
        self._series[name] = series
        self._probes.append((series, fn))
        return series

    def add_dynamic_probe(
        self,
        prefix: str,
        fn: Callable[[], Dict[str, float]],
        unit: str = "",
    ) -> None:
        """Register a probe returning ``{key: value}``; each key gets
        its own series named ``prefix.key``, created on first sight."""
        self._dynamic.append((prefix, unit, fn))

    def _add_engine_probes(self) -> None:
        sim = self.net.sim
        self.add_probe(
            "engine.events_fired", lambda: sim.events_fired, unit="events"
        )
        self.add_probe(
            "engine.wheel_occupancy",
            lambda: sim.wheel_occupancy,
            unit="events",
        )
        self.add_probe(
            "engine.spill_occupancy",
            lambda: sim.spill_occupancy,
            unit="events",
        )
        self.add_probe(
            "engine.corpse_count", lambda: sim.corpse_count, unit="events"
        )

    # ------------------------------------------------------------------
    # Sampling (engine probe callback)
    # ------------------------------------------------------------------
    def _sample(self, time_ns: int) -> None:
        self.samples_taken += 1
        for series, fn in self._probes:
            series.append(time_ns, fn())
        if self._dynamic:
            capacity = self.config.capacity
            get = self._series.get
            for prefix, unit, fn in self._dynamic:
                for key, value in fn().items():
                    name = f"{prefix}.{key}"
                    series = get(name)
                    if series is None:
                        series = Series(name, unit=unit, capacity=capacity)
                        self._series[name] = series
                    series.append(time_ns, value)

    def arm(self) -> None:
        """Start sampling on the engine's probe hook."""
        if self._armed:
            return
        self.net.sim.set_probe(
            self._sample, self.config.sample_interval_ns
        )
        self._armed = True

    def disarm(self) -> None:
        """Stop sampling (the run is over)."""
        if self._armed:
            self.net.sim.clear_probe()
            self._armed = False

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def _wrap_attach_host(self) -> None:
        """Shadow ``net.attach_host`` so every host attached from now
        on reports into the shared span recorder."""
        original = self.net.attach_host

        def attach_host(address, host):
            result = original(address, host)
            host.span_recorder = self.spans
            tracker = getattr(host, "tracker", None)
            if tracker is not None and not any(
                t is tracker for t in self._trackers
            ):
                self._trackers.append(tracker)
            return result

        self.net.attach_host = attach_host

    # ------------------------------------------------------------------
    # Artifact
    # ------------------------------------------------------------------
    def finalize(self) -> Dict[str, Any]:
        """Disarm, fold tracker data into spans, return the artifact."""
        self.disarm()
        if self._wall_s is None:
            self._wall_s = time.perf_counter() - self._wall_start
        if self.spans is not None:
            for tracker in self._trackers:
                self.spans.finalize(tracker)
        return self.artifact()

    def artifact(self) -> Dict[str, Any]:
        """The JSON-ready telemetry artifact.

        Deterministic for a given spec — except ``meta``, which holds
        wall-clock-derived numbers (events/s) and must be excluded from
        any reproducibility comparison.
        """
        sim = self.net.sim
        hints = self.net.telemetry_hints()
        wall_s = (
            self._wall_s
            if self._wall_s is not None
            else time.perf_counter() - self._wall_start
        )
        events = sim.events_fired
        return {
            "schema": SCHEMA,
            "config": self.config.to_dict(),
            "sim_time_ns": sim.now,
            "samples": self.samples_taken,
            "events_fired": events,
            "hints": hints,
            "series": [s.to_dict() for s in self._series.values()],
            "spans": (
                self.spans.to_list(hints) if self.spans is not None else []
            ),
            "meta": {
                "wall_s": wall_s,
                "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
                "sim_ns_per_wall_s": (
                    sim.now / wall_s if wall_s > 0 else 0.0
                ),
            },
        }

    def series(self, name: str) -> Series:
        """The series registered (or dynamically created) as ``name``."""
        return self._series[name]

    def series_names(self) -> List[str]:
        """All series names, in artifact order."""
        return list(self._series)


def attach_collector(
    net, config: Optional[TelemetryConfig] = None
) -> TelemetryCollector:
    """Attach a fully wired collector to ``net`` and start sampling.

    Call *before* hosts are attached so flow spans are captured; the
    returned collector's :meth:`~TelemetryCollector.finalize` yields
    the artifact after the run.
    """
    collector = TelemetryCollector(net, config)
    collector._add_engine_probes()
    net.register_probes(collector)
    if collector.spans is not None:
        collector._wrap_attach_host()
    collector.arm()
    net.telemetry = collector
    return collector
