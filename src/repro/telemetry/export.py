"""Timeline export: Chrome-trace / Perfetto JSON and compact JSONL.

The Perfetto trace-event format (``{"traceEvents": [...]}``) renders in
``ui.perfetto.dev`` or ``chrome://tracing``:

* every telemetry series becomes a counter track (``ph: "C"``);
* every finished flow becomes a complete span (``ph: "X"``) on its own
  row, with the FCT breakdown in ``args``;
* tracer records (``repro.sim.trace``) become instant events
  (``ph: "i"``) so debug traces land on the same timeline.

Timestamps are microseconds (the format's unit); sim nanoseconds divide
by 1000 losslessly enough at fabric scale.

The JSONL form is the compact on-disk shape the result store attaches
to cells: a header line, one line per series, one per span — streamable
and diff-friendly.  :func:`read_jsonl` reconstructs the artifact dict,
so ``python -m repro.telemetry export`` works from either a stored
result cell or a raw sidecar.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

PathLike = Union[str, Path]

#: Perfetto pid/tid namespaces: one fake "process" per track family.
_PID_SERIES = 1
_PID_FLOWS = 2
_PID_TRACE = 3


def perfetto_trace(
    artifact: Dict[str, Any],
    trace_records: Optional[Iterable] = None,
) -> Dict[str, Any]:
    """Convert a telemetry artifact into a Chrome-trace/Perfetto dict.

    ``trace_records`` may be an iterable of
    :class:`~repro.sim.trace.TraceRecord` (or their ``to_dict`` forms)
    to interleave as instant events.
    """
    events: List[Dict[str, Any]] = [
        _meta(_PID_SERIES, "process_name", name="telemetry.series"),
        _meta(_PID_FLOWS, "process_name", name="telemetry.flows"),
    ]
    for series in artifact.get("series", []):
        name = series["name"]
        arg = series.get("unit") or "value"
        for t, v in series.get("points", []):
            events.append({
                "ph": "C",
                "name": name,
                "pid": _PID_SERIES,
                "tid": 0,
                "ts": t / 1000.0,
                "args": {arg: v},
            })
    for span in artifact.get("spans", []):
        event = _flow_event(span)
        if event is not None:
            events.append(event)
    if trace_records is not None:
        events.append(
            _meta(_PID_TRACE, "process_name", name="telemetry.trace")
        )
        for record in trace_records:
            if hasattr(record, "to_dict"):
                record = record.to_dict()
            events.append({
                "ph": "i",
                "s": "g",
                "name": f"{record['category']}: {record['message']}",
                "pid": _PID_TRACE,
                "tid": 0,
                "ts": record["time_ns"] / 1000.0,
                "args": {
                    "source": record["source"],
                    **(record.get("data") or {}),
                },
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "schema": artifact.get("schema"),
            "sim_time_ns": artifact.get("sim_time_ns"),
            "samples": artifact.get("samples"),
        },
    }


def _meta(pid: int, field: str, **args: Any) -> Dict[str, Any]:
    return {"ph": "M", "pid": pid, "tid": 0, "name": field, "args": args}


def _flow_event(span: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """A flow as one complete-span event (its own row).

    Finished flows span start to completion; long-running/unfinished
    flows (permutation workloads never complete) span to the last
    observed packet and are marked ``incomplete``.
    """
    start = span.get("start_ns")
    fct = span.get("fct_ns")
    incomplete = False
    if start is not None and fct is None:
        last = span.get("last_in_ns") or span.get("last_out_ns")
        if last is not None and last > start:
            fct = last - start
            incomplete = True
    if start is None or fct is None:
        return None
    args = {
        k: span[k]
        for k in (
            "src", "dst", "size_bytes", "bytes_delivered",
            "first_out_ns", "first_in_ns", "last_in_ns",
            "host_ns", "serialization_ns", "propagation_ns",
            "queueing_ns",
        )
        if k in span and span[k] is not None
    }
    if incomplete:
        args["incomplete"] = True
    return {
        "ph": "X",
        "name": f"flow{span['flow_id']}",
        "pid": _PID_FLOWS,
        "tid": span["flow_id"],
        "ts": start / 1000.0,
        "dur": fct / 1000.0,
        "args": args,
    }


def write_perfetto(
    path: PathLike,
    artifact: Dict[str, Any],
    trace_records: Optional[Iterable] = None,
) -> int:
    """Write the Perfetto JSON to ``path``; returns the event count."""
    trace = perfetto_trace(artifact, trace_records)
    Path(path).write_text(
        json.dumps(trace, sort_keys=True), encoding="utf-8"
    )
    return len(trace["traceEvents"])


# ----------------------------------------------------------------------
# Compact JSONL (the result-store sidecar shape)
# ----------------------------------------------------------------------
def write_jsonl(path: PathLike, artifact: Dict[str, Any]) -> int:
    """Write the artifact as JSONL: one ``header`` line, then one line
    per series and per span.  Returns the line count."""
    lines = list(jsonl_lines(artifact))
    with Path(path).open("w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


def jsonl_lines(artifact: Dict[str, Any]) -> Iterable[str]:
    """The artifact as serialized JSONL lines (streamable)."""
    header = {
        "type": "header",
        **{
            k: artifact[k]
            for k in (
                "schema", "config", "sim_time_ns", "samples",
                "events_fired", "hints", "meta",
            )
            if k in artifact
        },
    }
    yield json.dumps(header, sort_keys=True)
    for series in artifact.get("series", []):
        yield json.dumps({"type": "series", **series}, sort_keys=True)
    for span in artifact.get("spans", []):
        yield json.dumps({"type": "span", **span}, sort_keys=True)


def read_jsonl(path: PathLike) -> Dict[str, Any]:
    """Rebuild an artifact dict from its JSONL form."""
    artifact: Dict[str, Any] = {"series": [], "spans": []}
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("type", None)
            if kind == "header":
                artifact.update(obj)
            elif kind == "series":
                artifact["series"].append(obj)
            elif kind == "span":
                artifact["spans"].append(obj)
            else:
                raise ValueError(f"unknown telemetry line type {kind!r}")
    return artifact


def load_artifact(path: PathLike, key: Optional[str] = None) -> Dict[str, Any]:
    """Load a telemetry artifact from any shape it is stored in.

    Accepts a ``.jsonl`` sidecar, a bare artifact JSON, a stored result
    cell (``{"result": {"telemetry": {...}}}`` or a result dict with a
    ``telemetry`` key), or a **record-store directory** — there
    telemetry lives inside the cell records, selected by ``key``
    (a spec content hash or spec-key prefix); with no ``key`` the
    store must hold exactly one instrumented cell.
    """
    path = Path(path)
    if path.is_dir():
        return _artifact_from_record_store(path, key)
    if path.suffix == ".jsonl":
        return read_jsonl(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if "series" in data:
        return data
    if "telemetry" in data and data["telemetry"]:
        return data["telemetry"]
    result = data.get("result")
    if isinstance(result, dict) and result.get("telemetry"):
        return result["telemetry"]
    raise ValueError(f"no telemetry artifact found in {path}")


def _artifact_from_record_store(
    root: Path, key: Optional[str]
) -> Dict[str, Any]:
    """Telemetry out of a sharded record store's cell records."""
    from repro.store import RecordStore, is_record_store

    if not is_record_store(root):
        raise ValueError(
            f"{root} is a directory but not a record store; pass a "
            "telemetry .jsonl sidecar or result cell instead"
        )
    store = RecordStore(root)
    if key is not None:
        record = store.get_record(key)
        if record is not None:
            telemetry = record.get("result", {}).get("telemetry")
            if telemetry:
                return telemetry
            raise ValueError(f"cell {key} in {root} has no telemetry")
    instrumented = [
        record
        for record in store.iter_records(key or "")
        if record.get("result", {}).get("telemetry")
    ]
    if not instrumented:
        raise ValueError(
            f"no instrumented cells match {key or '*'!r} in {root}"
        )
    if len(instrumented) > 1:
        keys = ", ".join(r["key"] for r in instrumented[:5])
        raise ValueError(
            f"{len(instrumented)} instrumented cells match in {root}; "
            f"pick one with its key ({keys}, ...)"
        )
    return instrumented[0]["result"]["telemetry"]
