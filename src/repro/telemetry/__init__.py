"""repro.telemetry — run-level metrics, probes and timeline tracing.

Zero-overhead when disabled: nothing here is imported on the hot path,
and the engine's probe hook costs one integer compare per event until a
collector arms it.  See ``README.md`` ("Observability") for the tour.
"""

from repro.telemetry.collector import (
    TelemetryCollector,
    attach_collector,
)
from repro.telemetry.export import (
    load_artifact,
    perfetto_trace,
    read_jsonl,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.probes import Series, TelemetryConfig
from repro.telemetry.spans import FlowSpan, SpanRecorder

__all__ = [
    "FlowSpan",
    "Series",
    "SpanRecorder",
    "TelemetryCollector",
    "TelemetryConfig",
    "attach_collector",
    "load_artifact",
    "perfetto_trace",
    "read_jsonl",
    "write_jsonl",
    "write_perfetto",
]
