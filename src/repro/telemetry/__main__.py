"""Telemetry CLI: convert stored artifacts into Perfetto timelines.

Usage::

    # From a telemetry JSONL sidecar (what the result store writes):
    python -m repro.telemetry export results/<hash>.telemetry.jsonl \
        -o timeline.json

    # From a stored result cell with an embedded telemetry artifact:
    python -m repro.telemetry export results/<hash>.json -o timeline.json

    # Quick textual summary of what an artifact contains:
    python -m repro.telemetry summary results/<hash>.telemetry.jsonl

Open the exported JSON in https://ui.perfetto.dev or chrome://tracing.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.export import load_artifact, write_jsonl, write_perfetto


def cmd_export(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.input, key=args.key)
    if args.jsonl:
        count = write_jsonl(args.output, artifact)
        print(f"wrote {count} JSONL lines to {args.output}")
        return 0
    count = write_perfetto(args.output, artifact)
    print(
        f"wrote {count} trace events "
        f"({len(artifact.get('series', []))} series, "
        f"{len(artifact.get('spans', []))} spans) to {args.output}"
    )
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.input, key=args.key)
    print(f"schema:      {artifact.get('schema')}")
    print(f"sim time:    {artifact.get('sim_time_ns')} ns")
    print(f"samples:     {artifact.get('samples')}")
    print(f"events:      {artifact.get('events_fired')}")
    series = artifact.get("series", [])
    print(f"series ({len(series)}):")
    for s in series:
        last = s["points"][-1] if s["points"] else None
        tail = f"last={last[1]:g} @ {last[0]}ns" if last else "empty"
        drop = f" dropped={s['dropped']}" if s.get("dropped") else ""
        print(f"  {s['name']:<36} {len(s['points']):>6} pts  {tail}{drop}")
    spans = artifact.get("spans", [])
    finished = [sp for sp in spans if sp.get("fct_ns") is not None]
    print(f"spans: {len(spans)} flows, {len(finished)} finished")
    if finished:
        fcts = sorted(sp["fct_ns"] for sp in finished)
        print(
            f"  fct min/median/max: {fcts[0]} / "
            f"{fcts[len(fcts) // 2]} / {fcts[-1]} ns"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="telemetry artifact tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_export = sub.add_parser(
        "export", help="write a Perfetto/Chrome-trace JSON timeline"
    )
    p_export.add_argument(
        "input",
        help="telemetry .jsonl sidecar, result cell .json, or a "
             "record-store directory",
    )
    p_export.add_argument(
        "-o", "--output", default="timeline.json",
        help="output path (default: timeline.json)",
    )
    p_export.add_argument(
        "--key", default=None,
        help="cell key / spec-key prefix (record-store inputs)",
    )
    p_export.add_argument(
        "--jsonl", action="store_true",
        help="write the compact JSONL artifact instead of Perfetto",
    )
    p_export.set_defaults(fn=cmd_export)

    p_summary = sub.add_parser(
        "summary", help="print what an artifact contains"
    )
    p_summary.add_argument(
        "input",
        help="telemetry .jsonl sidecar, result cell .json, or a "
             "record-store directory",
    )
    p_summary.add_argument(
        "--key", default=None,
        help="cell key / spec-key prefix (record-store inputs)",
    )
    p_summary.set_defaults(fn=cmd_summary)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
