"""Time-series probes: configuration and bounded sample storage.

A probe is a zero-argument callable returning a number; the
:class:`~repro.telemetry.collector.TelemetryCollector` invokes every
registered probe once per sampling tick (the engine's probe hook, see
``repro.sim.engine``) and appends the value to a :class:`Series` ring
buffer.  Series are bounded: a run that outlives its ring keeps the
most recent samples and counts what it evicted, so telemetry can never
grow a long simulation out of memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TelemetryConfig:
    """What to sample and how often.

    Rides scenario specs as a plain dict (hash-neutral, like ``faults``)
    and reconstructs here; every field has a default so ``{}`` is a
    valid, sensible configuration.
    """

    #: Sampling cadence.  Probes fire at most once per interval, carried
    #: by the event stream itself — a quiet simulation samples less
    #: often, and sampling never schedules events of its own.
    sample_interval_ns: int = 10_000
    #: Ring-buffer capacity per series, in points.
    capacity: int = 4096
    #: Record one series per fabric link (queued bytes) instead of just
    #: the aggregate.  Costly on large topologies; off by default.
    per_link: bool = False
    #: Record one series per VOQ (bytes / credit balance).  VOQs appear
    #: lazily as traffic starts, so these series do too.
    per_voq: bool = False
    #: Record flow-level spans (FCT breakdowns).
    spans: bool = True

    def __post_init__(self) -> None:
        if self.sample_interval_ns <= 0:
            raise ValueError("sample_interval_ns must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the shape specs carry)."""
        return {
            "sample_interval_ns": self.sample_interval_ns,
            "capacity": self.capacity,
            "per_link": self.per_link,
            "per_voq": self.per_voq,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TelemetryConfig":
        """Build from a spec's ``telemetry`` dict; unknown keys fail
        loudly rather than silently sampling the wrong thing."""
        known = {
            "sample_interval_ns", "capacity", "per_link", "per_voq",
            "spans",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown telemetry config keys: {sorted(unknown)}"
            )
        return cls(**data)


class Series:
    """A bounded time series of ``(time_ns, value)`` points."""

    __slots__ = ("name", "unit", "dropped", "_points")

    def __init__(self, name: str, unit: str = "", capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.name = name
        self.unit = unit
        self.dropped = 0
        self._points: Deque[Tuple[int, float]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._points)

    def append(self, time_ns: int, value: float) -> None:
        """Record one sample, evicting the oldest when full."""
        points = self._points
        if len(points) == points.maxlen:
            self.dropped += 1
        points.append((time_ns, value))

    def points(self) -> List[Tuple[int, float]]:
        """The retained points, oldest first."""
        return list(self._points)

    def last(self) -> Optional[Tuple[int, float]]:
        """The most recent point, or None if empty."""
        return self._points[-1] if self._points else None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (points as ``[t, v]`` pairs)."""
        return {
            "name": self.name,
            "unit": self.unit,
            "dropped": self.dropped,
            "points": [[t, v] for t, v in self._points],
        }
