"""Flow-level spans: per-flow lifecycle timestamps and FCT breakdown.

A :class:`SpanRecorder` hangs off every attached host (the
``Host.span_recorder`` hook — one attribute test per packet when
telemetry is off) and stamps the first/last data packet leaving the
source and arriving at the destination.  Combined with the
:class:`~repro.net.flow.FlowTracker`'s registration and completion
times, each finished flow yields a span whose flow-completion time
decomposes into host time, serialization, propagation and queueing —
the fabric comparison the paper's Fig 10 makes, per flow.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class FlowSpan:
    """Lifecycle timestamps for one flow (all in sim nanoseconds)."""

    __slots__ = (
        "flow_id", "src", "dst", "size_bytes", "start_ns",
        "first_out_ns", "last_out_ns", "first_in_ns", "last_in_ns",
        "completed_ns", "bytes_delivered", "packets_out", "packets_in",
    )

    def __init__(self, flow_id: int) -> None:
        self.flow_id = flow_id
        self.src: Optional[str] = None
        self.dst: Optional[str] = None
        self.size_bytes: Optional[int] = None
        self.start_ns: Optional[int] = None
        #: First/last data packet leaving the source NIC.
        self.first_out_ns: Optional[int] = None
        self.last_out_ns: Optional[int] = None
        #: First/last data packet arriving at the destination.
        self.first_in_ns: Optional[int] = None
        self.last_in_ns: Optional[int] = None
        self.completed_ns: Optional[int] = None
        self.bytes_delivered = 0
        self.packets_out = 0
        self.packets_in = 0

    @property
    def fct_ns(self) -> Optional[int]:
        """Completion time relative to the flow's start, if finished."""
        if self.completed_ns is None or self.start_ns is None:
            return None
        return self.completed_ns - self.start_ns

    def breakdown(self, hints: Dict[str, Any]) -> Dict[str, int]:
        """Split the FCT into host / serialization / propagation /
        queueing components.

        ``hints`` come from the fabric's ``telemetry_hints()``:
        ``link_rate_bps`` (edge link speed) and ``propagation_ns`` (an
        end-to-end propagation estimate for the wired path).  Host time
        is measured (start to first packet out); serialization is the
        delivered bytes clocked out at the edge rate; queueing is the
        remainder — everything the fabric made the flow wait.
        """
        fct = self.fct_ns
        if fct is None:
            return {}
        host_ns = 0
        if self.first_out_ns is not None and self.start_ns is not None:
            host_ns = max(0, self.first_out_ns - self.start_ns)
        serialization_ns = 0
        rate = hints.get("link_rate_bps")
        if rate:
            serialization_ns = round(self.bytes_delivered * 8 * 1e9 / rate)
        propagation_ns = int(hints.get("propagation_ns", 0))
        queueing_ns = max(
            0, fct - host_ns - serialization_ns - propagation_ns
        )
        return {
            "host_ns": host_ns,
            "serialization_ns": serialization_ns,
            "propagation_ns": propagation_ns,
            "queueing_ns": queueing_ns,
        }

    def to_dict(self, hints: Optional[Dict[str, Any]] = None) -> Dict:
        """JSON-ready form; None timestamps are kept explicit so an
        unfinished flow is distinguishable from an unstarted one."""
        out = {
            "flow_id": self.flow_id,
            "src": self.src,
            "dst": self.dst,
            "size_bytes": self.size_bytes,
            "start_ns": self.start_ns,
            "first_out_ns": self.first_out_ns,
            "last_out_ns": self.last_out_ns,
            "first_in_ns": self.first_in_ns,
            "last_in_ns": self.last_in_ns,
            "completed_ns": self.completed_ns,
            "fct_ns": self.fct_ns,
            "bytes_delivered": self.bytes_delivered,
            "packets_out": self.packets_out,
            "packets_in": self.packets_in,
        }
        if hints is not None:
            out.update(self.breakdown(hints))
        return out


class SpanRecorder:
    """Collects :class:`FlowSpan` records from host packet events.

    One recorder is shared by every host of a run (installed by the
    collector's ``attach_host`` wrap); the per-packet methods stay
    allocation-free except the first packet of each flow.
    """

    def __init__(self) -> None:
        self._spans: Dict[int, FlowSpan] = {}

    def _span(self, flow_id: int) -> FlowSpan:
        span = self._spans.get(flow_id)
        if span is None:
            span = FlowSpan(flow_id)
            self._spans[flow_id] = span
        return span

    # ------------------------------------------------------------------
    # Host hot-path hooks
    # ------------------------------------------------------------------
    def packet_out(self, time_ns: int, packet) -> None:
        """A packet left a host NIC (data packets only)."""
        if packet.is_ack or packet.is_cnp:
            return
        span = self._span(packet.flow_id)
        if span.first_out_ns is None:
            span.first_out_ns = time_ns
        span.last_out_ns = time_ns
        span.packets_out += 1

    def packet_in(self, time_ns: int, packet) -> None:
        """A data packet arrived at a destination host."""
        span = self._span(packet.flow_id)
        if span.first_in_ns is None:
            span.first_in_ns = time_ns
        span.last_in_ns = time_ns
        span.packets_in += 1

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, tracker) -> None:
        """Merge the :class:`~repro.net.flow.FlowTracker`'s registration
        and completion data into the packet-level spans."""
        for stats in tracker.all():
            flow = stats.flow
            span = self._span(flow.flow_id)
            span.src = str(flow.src)
            span.dst = str(flow.dst)
            span.size_bytes = flow.size_bytes
            span.start_ns = flow.start_ns
            span.completed_ns = stats.completed_ns
            span.bytes_delivered = stats.bytes_delivered

    def spans(self) -> List[FlowSpan]:
        """All recorded spans, in flow-id order."""
        return [self._spans[k] for k in sorted(self._spans)]

    def to_list(
        self, hints: Optional[Dict[str, Any]] = None
    ) -> List[Dict]:
        """JSON-ready span list (flow-id order, deterministic)."""
        return [span.to_dict(hints) for span in self.spans()]
