"""§5.1 scaling axis: the push baseline on a three-tier fabric.

The fabric-agnostic wiring layer gives the Ethernet/ECMP baseline the
same three-tier topologies as Stardust, opening the §5.1 scaling
comparison that used to be Stardust-only.  This smoke benchmark runs
the ``permutation_three_tier`` scenario on both fabrics and asserts
the paper's headline result survives the extra tier: Stardust's pull
scheduling sustains near-line-rate permutation throughput where ECMP
flow collisions cap the pushed fabric well below it.
"""

from harness import print_series

from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec
from repro.sim.units import MILLISECOND

WARMUP_NS = 1 * MILLISECOND
MEASURE_NS = 2 * MILLISECOND


def run(kind: str):
    spec = build_scenario(
        "permutation_three_tier", kind=kind, seed=7,
        warmup_ns=WARMUP_NS, measure_ns=MEASURE_NS,
    )
    return run_spec(spec)


def test_three_tier_stardust_beats_push():
    star = run("stardust")
    push = run("tcp")

    print_series(
        "Three-tier permutation (8 hosts, 10G): per-flow Gbps",
        [
            ("stardust", f"mean {star.mean_rate_gbps:.2f}",
             f"min {star.flow_rates_gbps[0]:.2f}"),
            ("push", f"mean {push.mean_rate_gbps:.2f}",
             f"min {push.flow_rates_gbps[0]:.2f}"),
        ],
    )

    # Both fabrics deliver something across the three tiers.
    assert star.delivered_bytes > 0
    assert push.delivered_bytes > 0
    # Stardust: near line rate, lossless fabric (drops only at ingress).
    assert star.mean_rate_gbps > 8.0
    assert star.metrics["queue_mean_cells"] >= 0.0
    # The strawman keeps losing: ECMP collisions on the many stages cut
    # mean throughput below Stardust's.
    assert star.mean_rate_gbps > push.mean_rate_gbps
    # And the slowest victim flow is far below Stardust's worst flow.
    assert star.flow_rates_gbps[0] > push.flow_rates_gbps[0]
