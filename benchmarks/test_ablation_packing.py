"""Ablation (§3.4): packet packing at the fabric level.

The same trace-shaped traffic through the same fabric with packing on
vs off: unpacked mode needs more cells (every packet's tail cell is
short) and therefore more fabric bytes per delivered payload byte —
Fig 8's silicon argument visible at the network level.
"""

from harness import print_series

from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps
from repro.workloads.distributions import packet_size_distribution
from repro.workloads.generator import UniformRandomTraffic

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow

SPEC = OneTierSpec(num_fas=6, uplinks_per_fa=4, hosts_per_fa=2)
RATE = gbps(10)
ADDRS = [
    PortAddress(fa, p)
    for fa in range(SPEC.num_fas)
    for p in range(SPEC.hosts_per_fa)
]


def run_packing(packing: bool, workload: str):
    config = StardustConfig(
        fabric_link_rate_bps=RATE, host_link_rate_bps=RATE,
        cell_size_bytes=256, cell_header_bytes=16,
        packet_packing=packing,
    )
    net = StardustNetwork(SPEC, config=config)
    traffic = UniformRandomTraffic(
        net, ADDRS, utilization=0.5,
        size_dist=packet_size_distribution(workload), seed=41,
    )
    traffic.start()
    net.run(2 * MILLISECOND)
    traffic.stop()
    net.run(MILLISECOND // 2)

    cells = sum(fa.cells_sent for fa in net.fas)
    payload = sum(i.bytes_sent for i in traffic.injectors)
    fabric_bytes = cells and sum(
        up.tx_bytes for fa in net.fas for up in fa.uplinks
    )
    return {
        "cells": cells,
        "payload_bytes": payload,
        "fabric_bytes": fabric_bytes,
        "overhead": fabric_bytes / payload if payload else 0.0,
        "delivered": traffic.total_received(),
        "sent": traffic.total_sent(),
    }


def test_ablation_packet_packing(benchmark):
    def run():
        return {
            workload: {
                packing: run_packing(packing, workload)
                for packing in (True, False)
            }
            for workload in ("web", "hadoop", "db")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("workload", "packed cells", "unpacked cells",
             "packed overhead", "unpacked overhead")]
    for workload, by_mode in results.items():
        rows.append(
            (workload,
             by_mode[True]["cells"], by_mode[False]["cells"],
             f"{(by_mode[True]['overhead'] - 1) * 100:.1f}%",
             f"{(by_mode[False]['overhead'] - 1) * 100:.1f}%")
        )
    print_series("Ablation: packet packing (§3.4) — fabric overhead", rows)

    for by_mode in results.values():
        packed, unpacked = by_mode[True], by_mode[False]
        # Same offered traffic, everything delivered either way...
        assert packed["delivered"] > 0.95 * packed["sent"]
        assert unpacked["delivered"] > 0.95 * unpacked["sent"]
        # ...but unpacked mode needs strictly more cells and more
        # fabric bytes per payload byte.
        assert unpacked["cells"] > packed["cells"]
        assert unpacked["overhead"] > packed["overhead"]
    # Small-packet workloads suffer the most from disabling packing.
    web_penalty = (
        results["web"][False]["overhead"] / results["web"][True]["overhead"]
    )
    hadoop_penalty = (
        results["hadoop"][False]["overhead"]
        / results["hadoop"][True]["overhead"]
    )
    assert web_penalty > hadoop_penalty
