"""Appendix E: failure recovery time and reachability overhead."""

from harness import print_series

from repro.analysis.resilience import (
    ReachabilityParams,
    messages_per_table,
    reachability_overhead_fraction,
    recovery_time_ns,
)


def test_appendixE_recovery_time(benchmark):
    def run():
        base = ReachabilityParams()
        sweep = {}
        for hosts in (8_000, 32_000, 128_000):
            params = ReachabilityParams(total_hosts=hosts)
            sweep[hosts] = (
                messages_per_table(params),
                recovery_time_ns(params) / 1000,
            )
        return base, sweep

    base, sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("hosts", "messages/table", "recovery [us]")]
    for hosts, (m, t) in sweep.items():
        rows.append((f"{hosts:,}", m, f"{t:.0f}"))
    rows.append(("overhead",
                 f"{reachability_overhead_fraction(base) * 100:.3f}%",
                 "(paper: 0.04%)"))
    print_series("Appendix E: reachability recovery time", rows)

    # The worked example: 32K hosts -> 7 messages, 652us, 0.04%.
    assert sweep[32_000][0] == 7
    assert abs(sweep[32_000][1] - 652.05) < 1.0
    assert abs(reachability_overhead_fraction(base) - 0.000384) < 1e-6

    # Recovery time grows with table size but stays sub-millisecond
    # into the 100K-host range ("hundreds of microseconds", §5.9).
    times = [t for _m, t in sweep.values()]
    assert times == sorted(times)
    assert times[-1] < 3_000

    # Faster message rates shrink recovery linearly.
    fast = ReachabilityParams(cycles_between_messages=5_000)
    assert recovery_time_ns(fast) < recovery_time_ns(ReachabilityParams())
