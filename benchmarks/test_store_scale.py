"""The record store's acceptance bar: 10k cells, verified and compact.

A 10k-cell synthetic sweep (``repro.store.synth``) goes through the
real put/flush/shard path, then every claim the store makes is checked
at that scale: full CRC verification of every record, prefix queries
returning the exact brute-force answer, legacy migration serving
bit-identical results, and the sharded blocks landing at least 5x
smaller on disk than the legacy one-JSON-file-per-cell layout.
"""

import pytest
from harness import print_series

from repro.experiments.store import ResultStore
from repro.store import RecordStore, migrate_legacy, verify_store
from repro.store.cells import spec_key_from_dict
from repro.store.query import store_records
from repro.store.synth import fill_store, synthetic_cells

CELLS = 10_000


@pytest.mark.slow
def test_store_holds_10k_cells_verified_and_compact(tmp_path):
    record_root = tmp_path / "record"
    store = RecordStore(record_root)
    stored = fill_store(store, CELLS, seed=3)
    assert stored == CELLS

    # Every record CRC-verified at scale.
    stats = verify_store(record_root)
    assert stats["corrupt_blocks"] == 0
    assert stats["records"] == CELLS
    assert stats["distinct_keys"] == CELLS

    # Prefix query == brute force over the same synthetic grid.
    selector = "scenario=incast/fabric=push"
    got = {r["key"] for r in store_records(record_root, selector)}
    expect = set()
    for spec, _ in synthetic_cells(CELLS, seed=3):
        key = spec.content_hash()
        if spec_key_from_dict(spec.to_dict(), key).startswith(
            "scenario=incast/fabric=push/"
        ):
            expect.add(key)
    assert got == expect
    assert got  # a meaningful slice, not vacuous

    # Size: sharded compressed blocks vs one JSON file per cell.
    legacy_root = tmp_path / "legacy"
    legacy = ResultStore(legacy_root)
    sample = 500  # enough files to estimate per-cell cost fairly
    for spec, result in synthetic_cells(sample, seed=3):
        legacy.put(spec, result)
    legacy_bytes_per_cell = (
        sum(p.stat().st_size for p in legacy_root.glob("*.json")) / sample
    )
    record_bytes_per_cell = stats["shard_bytes"] / CELLS
    ratio = legacy_bytes_per_cell / record_bytes_per_cell

    print_series(
        f"result store at {CELLS} cells",
        [
            ("legacy", f"{legacy_bytes_per_cell:.0f} B/cell"),
            ("record", f"{record_bytes_per_cell:.0f} B/cell",
             f"{ratio:.1f}x smaller"),
            ("blocks", str(stats["blocks"]),
             f"{stats['shard_bytes'] / 1024:.0f} KiB total"),
        ],
    )
    assert ratio >= 5.0

    # Migration: the legacy sample imports bit-identically.
    migrated_root = tmp_path / "migrated"
    report = migrate_legacy(legacy_root, migrated_root)
    assert report.cells == sample
    migrated = RecordStore(migrated_root)
    for spec, result in synthetic_cells(sample, seed=3):
        assert migrated.get(spec).to_dict() == result.to_dict()
