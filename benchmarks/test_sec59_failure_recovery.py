"""§5.9/§5.10 head to head: graceful degradation vs blackholing.

The same declarative failure — one edge uplink down for 200us, both
directions, mid-permutation — driven through both fabrics via the
fault-injection subsystem:

* Stardust (dynamic reachability): the source excludes the dead link
  on loss of signal, the protocol re-heals the remote view at the
  Appendix E timescale, cells keep spraying over the survivors, and
  nothing blackholes.
* Push/ECMP (delayed rehash): flows hashed onto the dead path are
  blackholed until the rehash interval elapses — §5.2's complaint as
  a measured number, not prose.
"""

from harness import print_series

from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec_with_network
from repro.experiments.spec import TopologySpec
from repro.perf.digest import run_digest
from repro.sim.units import MICROSECOND

TOPOLOGY = TopologySpec(
    "two_tier",
    dict(pods=2, fas_per_pod=2, fes_per_pod=2, spines=2, hosts_per_fa=2),
)
WINDOWS = dict(warmup_ns=200 * MICROSECOND, measure_ns=600 * MICROSECOND)
FAULT = dict(fail_at_ns=300 * MICROSECOND, downtime_ns=200 * MICROSECOND)


def _run(kind):
    spec = build_scenario(
        "permutation_link_failure", kind=kind, topology=TOPOLOGY,
        **WINDOWS, **FAULT,
    )
    result, net = run_spec_with_network(spec)
    return spec, result, net


def test_sec59_failure_recovery(benchmark):
    (s_spec, s_result, s_net), (p_spec, p_result, p_net) = (
        benchmark.pedantic(
            lambda: (_run("stardust"), _run("tcp")), rounds=1, iterations=1
        )
    )
    s_res = s_net.collect_metrics().resilience
    p_res = p_net.collect_metrics().resilience

    rows = [
        ("", "stardust", "push/ECMP"),
        (
            "mean goodput [Gbps]",
            f"{s_result.mean_rate_gbps:.2f}",
            f"{p_result.mean_rate_gbps:.2f}",
        ),
        (
            "throughput dip depth",
            f"{s_res.dip_depth:.0%}",
            f"{p_res.dip_depth:.0%}",
        ),
        (
            "frames lost in transit",
            s_res.frames_lost_in_transit,
            p_res.frames_lost_in_transit,
        ),
        ("blackholed flows", s_res.blackholed_flows, p_res.blackholed_flows),
        (
            "protocol detect [us]",
            f"{(s_res.protocol_detect_ns or 0) / 1e3:.0f}",
            "n/a (no protocol)",
        ),
        (
            "analytical recovery [us]",
            f"{(s_res.analytical_recovery_ns or 0) / 1e3:.1f}",
            "n/a",
        ),
    ]
    print_series("§5.9/§5.10: one link down for 200us, both fabrics", rows)

    # Stardust: per-cell spray means nothing blackholes; the dead link
    # is excluded on loss of signal, the protocol heals the rest.
    assert s_res.blackholed_flows == 0
    assert s_res.faults_injected == 1
    assert s_res.protocol_detect_ns is not None
    assert s_res.analytical_recovery_ns is not None
    # Detection is protocol-speed: same order as the Appendix E value.
    assert (
        s_res.analytical_recovery_ns * 0.2
        <= s_res.protocol_detect_ns
        <= s_res.analytical_recovery_ns * 5
    )

    # Push: ECMP keeps hashing flows onto the dead path until rehash.
    assert p_res.blackholed_flows > 0
    assert p_res.blackholed_packets > 0

    # Both fabrics lose whatever sat on the failed link itself.
    assert s_res.frames_lost_in_transit > 0
    assert p_res.frames_lost_in_transit > 0

    # The cell fabric out-delivers the push baseline under failure.
    assert s_result.mean_rate_gbps > p_result.mean_rate_gbps

    # Failure experiments are as reproducible as healthy ones.
    assert run_digest(s_result, s_net) == run_digest(
        *run_spec_with_network(s_spec)
    )
