"""Table 2 (Appendix A): element counts of an n-tier fat-tree."""


from harness import print_series

from repro.topology.scaling import (
    fabric_switches,
    link_bundles,
    links_per_tor,
    max_tors,
    switches_per_tor,
)

K, T, L = 16, 8, 2  # radix, ToR uplinks, bundle — illustrative values


def test_table2_element_counts(benchmark):
    def run():
        return {
            n: {
                "max_tors": max_tors(K, n),
                "switches": fabric_switches(K, T, n),
                "switches_per_tor": switches_per_tor(K, T, n),
                "bundles": link_bundles(K, T, n),
                "links_per_tor": links_per_tor(K, T, L, n),
            }
            for n in (1, 2, 3, 4)
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("tiers", "max ToRs", "switches", "sw/ToR", "bundles",
             "links/ToR")]
    for n, r in table.items():
        rows.append(
            (n, r["max_tors"], r["switches"], str(r["switches_per_tor"]),
             r["bundles"], str(r["links_per_tor"]))
        )
    print_series(f"Table 2 (k={K}, t={T}, l={L})", rows)

    # The explicit Table 2 rows.
    assert table[1]["max_tors"] == K
    assert table[2]["max_tors"] == K**2 // 2
    assert table[3]["max_tors"] == K**3 // 4
    assert table[4]["max_tors"] == K**4 // 8

    assert table[1]["switches"] == T
    assert table[2]["switches"] == 3 * T * K // 2
    assert table[3]["switches"] == 5 * T * K**2 // 4
    assert table[4]["switches"] == 7 * T * K**3 // 8

    assert table[1]["bundles"] == T * K
    assert table[2]["bundles"] == T * K**2
    assert table[3]["bundles"] == 3 * T * K**3 // 4
    assert table[4]["bundles"] == 7 * T * K**4 // 8

    assert table[1]["links_per_tor"] == T * L
    assert table[2]["links_per_tor"] == 2 * T * L
    assert table[3]["links_per_tor"] == 3 * T * L
    assert table[4]["links_per_tor"] == 7 * T * L

    # Column consistency: links/ToR x ToRs == bundles x l.
    for r in table.values():
        assert r["links_per_tor"] * r["max_tors"] == r["bundles"] * L

    # "The maximum size of a network of n tiers ... is O((k/2)^n)":
    # exactly 2 x (k/2)^n.
    for n in (1, 2, 3, 4):
        assert table[n]["max_tors"] == 2 * (K // 2) ** n
