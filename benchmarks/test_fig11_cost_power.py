"""Fig 11: relative cost (a) and power (b) of Stardust vs fat-trees."""

from harness import print_series

from repro.analysis.cost import (
    FT_50G,
    FT_100G,
    STARDUST_25G,
    relative_cost_series,
)
from repro.analysis.power import (
    power_saving_fraction,
    relative_power_series,
)

HOSTS = [1_000, 10_000, 100_000, 1_000_000]


def test_fig11a_relative_cost(benchmark):
    series = benchmark.pedantic(
        lambda: relative_cost_series(HOSTS), rounds=1, iterations=1
    )
    rows = [("option", *[f"{h:,}" for h in HOSTS])]
    for name, values in series.items():
        rows.append(
            (name, *[f"{v:.0f}%" if v is not None else "-" for v in values])
        )
    print_series("Fig 11(a): network cost relative to costliest option", rows)

    stardust = series[STARDUST_25G.name]
    for i, _hosts in enumerate(HOSTS):
        others = [
            series[name][i]
            for name in (FT_50G.name, FT_100G.name)
            if series[name][i] is not None
        ]
        # §7: "Stardust is always the most cost effective solution."
        assert stardust[i] is not None
        assert all(stardust[i] <= o for o in others)
    # §7: "cost of a large scale DCN can be cut in half" — at 1M hosts
    # Stardust sits well below the costliest fat-tree.
    assert stardust[-1] < 85.0


def test_fig11b_relative_power(benchmark):
    def run():
        series = relative_power_series(HOSTS)
        savings = {
            "network@10k": power_saving_fraction(10_000),
            "fabric@10k": power_saving_fraction(10_000, fabric_only=True),
        }
        return series, savings

    series, savings = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("bundle", *[f"{h:,}" for h in HOSTS])]
    for bundle, values in series.items():
        label = "Stardust (L=1)" if bundle == 1 else f"FT (L={bundle})"
        rows.append(
            (label, *[f"{v:.0f}%" if v is not None else "-" for v in values])
        )
    rows.append(("saving vs FT L=2, whole network @10k hosts",
                 f"{savings['network@10k'] * 100:.0f}%"))
    rows.append(("saving vs FT L=2, fabric only @10k hosts",
                 f"{savings['fabric@10k'] * 100:.0f}%"))
    print_series("Fig 11(b): power relative to hungriest option", rows)

    for i, _hosts in enumerate(HOSTS):
        column = {b: series[b][i] for b in series if series[b][i] is not None}
        # Stardust (L=1) is the least power-hungry at every scale.
        assert min(column, key=column.get) == 1

    # §7's headline numbers: up to ~25% whole-network, 78% in-fabric.
    assert 0.15 <= savings["network@10k"] <= 0.45
    assert abs(savings["fabric@10k"] - 0.78) < 0.05
