"""Fig 2: DCN scalability vs link bundling (12.8 Tbps switches).

(a) hosts vs tiers; (b) devices vs hosts; (c) serial links vs hosts —
for link bundles 1 (Stardust), 2, 4, 8.
"""

from harness import print_series

from repro.sim.units import GBPS
from repro.topology.scaling import (
    SwitchModel,
    fig2_network_devices,
    fig2_network_links,
    fig2_series_hosts_vs_tiers,
)

SWITCHES = {
    "Stardust, 50Gx256 Port (L=1)": SwitchModel(12_800 * GBPS, bundle=1),
    "FT, 100Gx128 Port (L=2)": SwitchModel(12_800 * GBPS, bundle=2),
    "FT, 200Gx64 Port (L=4)": SwitchModel(12_800 * GBPS, bundle=4),
    "FT, 400Gx32 Port (L=8)": SwitchModel(12_800 * GBPS, bundle=8),
}
HOST_COUNTS = [200_000, 400_000, 600_000, 800_000, 1_000_000]


def test_fig2a_hosts_vs_tiers(benchmark):
    series = benchmark.pedantic(
        lambda: {
            name: fig2_series_hosts_vs_tiers(sw)
            for name, sw in SWITCHES.items()
        },
        rounds=1, iterations=1,
    )
    rows = [("config", "1 tier", "2 tiers", "3 tiers", "4 tiers")]
    for name, values in series.items():
        rows.append((name, *[f"{v:.2e}" for v in values]))
    print_series("Fig 2(a): max end-hosts vs number of tiers", rows)

    stardust = series["Stardust, 50Gx256 Port (L=1)"]
    l8 = series["FT, 400Gx32 Port (L=8)"]
    # The paper's headline ratios: x8 per tier of bundling advantage.
    for n in range(4):
        assert stardust[n] == 8 ** (n + 1) * l8[n]
    assert stardust[0] == 10_240  # "over ten thousand servers" at 1 tier
    assert l8[1] == 20_480  # "only 20K hosts" for 2-tier L=8


def test_fig2b_devices_vs_hosts(benchmark):
    series = benchmark.pedantic(
        lambda: {
            name: [fig2_network_devices(sw, h) for h in HOST_COUNTS]
            for name, sw in SWITCHES.items()
        },
        rounds=1, iterations=1,
    )
    rows = [("config", *[f"{h:,}" for h in HOST_COUNTS])]
    for name, values in series.items():
        rows.append((name, *[str(v) for v in values]))
    print_series("Fig 2(b): network devices vs end-hosts", rows)

    for i, _hosts in enumerate(HOST_COUNTS):
        column = [series[name][i] for name in SWITCHES]
        # Smaller bundle -> strictly fewer devices.
        valid = [c for c in column if c is not None]
        assert valid == sorted(valid)
        assert column[0] == min(valid)  # Stardust needs the fewest


def test_fig2c_links_vs_hosts(benchmark):
    series = benchmark.pedantic(
        lambda: {
            name: [fig2_network_links(sw, h) for h in HOST_COUNTS]
            for name, sw in SWITCHES.items()
        },
        rounds=1, iterations=1,
    )
    rows = [("config", *[f"{h:,}" for h in HOST_COUNTS])]
    for name, values in series.items():
        rows.append((name, *[str(v) for v in values]))
    print_series("Fig 2(c): serial links vs end-hosts", rows)

    for i, _ in enumerate(HOST_COUNTS):
        column = [series[name][i] for name in SWITCHES]
        valid = [c for c in column if c is not None]
        assert column[0] == min(valid)  # fewest links with L=1
