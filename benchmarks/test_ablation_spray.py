"""Ablation (§5.3): spray arbitration policy.

The paper's choice — round-robin over a periodically reshuffled random
permutation — against two alternatives: pure random pick per cell, and
a static per-destination link (ECMP-at-cell-granularity).  Permutation
spray gives perfectly even link loads; random spray is close but
noisier (bigger queue tails); static pinning collapses to flow-hashing
behaviour and congests.
"""

from harness import print_series

from repro.core.config import StardustConfig
from repro.core.network import StardustNetwork, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps
from repro.workloads.generator import UniformRandomTraffic

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow

SPEC = TwoTierSpec(pods=2, fas_per_pod=4, fes_per_pod=4, spines=4,
                   hosts_per_fa=4)
RATE = gbps(10)
ADDRS = [
    PortAddress(fa, p)
    for fa in range(SPEC.num_fas)
    for p in range(SPEC.hosts_per_fa)
]


def run_mode(mode: str):
    config = StardustConfig(
        fabric_link_rate_bps=RATE, host_link_rate_bps=RATE,
        cell_size_bytes=256, cell_header_bytes=16,
    )
    net = StardustNetwork(SPEC, config=config, spray_mode=mode)
    traffic = UniformRandomTraffic(
        net, ADDRS, utilization=0.85 * 240 / 256, packet_bytes=1000, seed=31
    )
    traffic.start()
    net.run(2 * MILLISECOND)
    traffic.stop()

    # Per-uplink imbalance at one loaded Fabric Adapter.
    counts = [up.tx_frames for up in net.fas[0].uplinks]
    imbalance = (max(counts) - min(counts)) / max(max(counts), 1)
    queues = net.fabric_queue_depth()
    return {
        "imbalance": imbalance,
        "queue_p99": queues.pct(99),
        "queue_max": queues.maximum(),
        "latency_p99_us": net.cell_latency().pct(99) / 1000,
        "delivered": traffic.total_received(),
    }


def test_ablation_spray_modes(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_mode(m) for m in ("permutation", "random", "static")},
        rounds=1, iterations=1,
    )
    rows = [("spray mode", "uplink imbalance", "queue p99", "queue max",
             "latency p99 [us]")]
    for mode, r in results.items():
        rows.append(
            (mode, f"{r['imbalance'] * 100:.1f}%", f"{r['queue_p99']:.0f}",
             f"{r['queue_max']:.0f}", f"{r['latency_p99_us']:.1f}")
        )
    print_series("Ablation: spray arbitration (§5.3)", rows)

    perm, rand, static = (
        results["permutation"], results["random"], results["static"],
    )
    # Permutation spray: near-perfect balance (<2%).
    assert perm["imbalance"] < 0.02
    # Random: same long-run balance ballpark, but worse than permutation.
    assert perm["imbalance"] <= rand["imbalance"]
    # Static pinning is catastrophically imbalanced and queues blow up.
    assert static["imbalance"] > 5 * max(rand["imbalance"], 0.01)
    assert static["queue_max"] > 2 * perm["queue_max"]
    # Latency tail ordering follows.
    assert perm["latency_p99_us"] <= static["latency_p99_us"]
