"""Ablation (§4.1, footnote 4): credit speedup.

Credit rate slightly above port rate keeps the egress buffer fed
(throughput); more speedup means more in-flight data and deeper fabric
queues (latency).  Sweep 0% / 2% / 5% and show the trade-off the paper
tunes around 2%.
"""

from harness import print_series

from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps
from repro.workloads.generator import UniformRandomTraffic

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow

SPEC = OneTierSpec(num_fas=6, uplinks_per_fa=4, hosts_per_fa=4)
RATE = gbps(10)
ADDRS = [
    PortAddress(fa, p)
    for fa in range(SPEC.num_fas)
    for p in range(SPEC.hosts_per_fa)
]
DURATION = 2 * MILLISECOND


def run_speedup(speedup: float):
    config = StardustConfig(
        fabric_link_rate_bps=RATE, host_link_rate_bps=RATE,
        cell_size_bytes=256, cell_header_bytes=16,
        credit_speedup=speedup,
    )
    net = StardustNetwork(SPEC, config=config)
    traffic = UniformRandomTraffic(
        net, ADDRS, utilization=0.92 * 240 / 256, packet_bytes=1000, seed=53
    )
    traffic.start()
    net.run(DURATION)
    traffic.stop()
    net.run(DURATION // 2)
    delivered_bps = sum(
        i.bytes_received for i in traffic.injectors
    ) * 8 / (1.5 * DURATION / 1e9)
    return {
        "delivered_gbps": delivered_bps / 1e9,
        "latency_p99_us": net.cell_latency().pct(99) / 1000,
        "queue_p99": net.fabric_queue_depth().pct(99),
        "drops": net.fabric_cell_drops(),
    }


def test_ablation_credit_speedup(benchmark):
    speedups = [0.0, 0.02, 0.05]
    results = benchmark.pedantic(
        lambda: {s: run_speedup(s) for s in speedups},
        rounds=1, iterations=1,
    )
    rows = [("speedup", "delivered [Gbps]", "latency p99 [us]",
             "queue p99 [cells]", "drops")]
    for s, r in results.items():
        rows.append(
            (f"{s * 100:.0f}%", f"{r['delivered_gbps']:.2f}",
             f"{r['latency_p99_us']:.1f}", f"{r['queue_p99']:.0f}",
             r["drops"])
        )
    print_series("Ablation: credit speedup (§4.1)", rows)

    # Lossless at every setting.
    assert all(r["drops"] == 0 for r in results.values())
    # Throughput: speedup must at least hold delivery (it exists to
    # keep egress buffers from starving on credit-loop jitter).
    assert results[0.02]["delivered_gbps"] >= 0.98 * results[0.0][
        "delivered_gbps"
    ]
    # Latency/queue cost grows with speedup at high load.
    assert (
        results[0.05]["queue_p99"] >= results[0.0]["queue_p99"]
    )
