"""Fig 3: required parallelism vs packet size (12.8T, 256B bus, 1 GHz)."""

from harness import print_series

from repro.pipeline.parallelism import (
    standard_parallelism,
    stardust_parallelism,
)

B = 12_800_000_000_000
SIZES = [64, 128, 256, 513, 768, 1025, 1500, 2048, 2500]


def test_fig3_required_parallelism(benchmark):
    def run():
        return {
            size: (
                standard_parallelism(B, size),
                stardust_parallelism(B, size),
            )
            for size in SIZES
        }

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("pkt size", "standard switch", "Stardust FE")]
    for size, (std, star) in points.items():
        rows.append((f"{size}B", f"{std:.2f}", f"{star:.2f}"))
    print_series("Fig 3: required parallelism (12.8Tbps, 256B bus, 1GHz)",
                 rows)

    star = points[64][1]
    # Stardust flat at B/(8 x 256B x 1GHz) = 6.25.
    assert all(abs(s[1] - 6.25) < 1e-9 for s in points.values())
    # Paper's callouts: ~x4 at small sizes, 41% at 513B, 18% at 1025B.
    assert points[64][0] / star > 3.0
    assert 1.30 <= points[513][0] / star <= 1.55
    assert 1.10 <= points[1025][0] / star <= 1.30
    # Sawtooth: crossing a bus boundary raises the requirement.
    assert points[513][0] > points[256][0]
