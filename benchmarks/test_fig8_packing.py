"""Fig 8: packet packing on the NetFPGA model (150 MHz, 32B datapath).

(a) throughput vs packet size for the four designs;
(b) throughput on the DB / Web / Hadoop trace mixes.
"""

from harness import print_series

from repro.pipeline.switch_model import (
    NetFpgaModel,
    SwitchDesign,
    trace_throughput,
)
from repro.workloads.distributions import PACKET_SIZE_MIXES

SIZES = [64, 65, 97, 129, 256, 384, 512, 768, 1024, 1280, 1518]


def test_fig8a_throughput_vs_packet_size(benchmark):
    model = NetFpgaModel()

    def run():
        return {
            design: [
                model.throughput(design, s).goodput_bps / 1e9 for s in SIZES
            ]
            for design in SwitchDesign
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("design", *[f"{s}B" for s in SIZES])]
    for design, values in curves.items():
        rows.append((design.value, *[f"{v:.1f}" for v in values]))
    print_series("Fig 8(a): throughput at 150MHz [Gbps]", rows)

    star = curves[SwitchDesign.STARDUST_PACKED]
    ref = curves[SwitchDesign.REFERENCE]
    ndp = curves[SwitchDesign.NDP]
    cells = curves[SwitchDesign.CELLS_UNPACKED]

    # Stardust: flat, and at least matches every design at every size.
    assert max(star) - min(star) < 1e-9
    for i in range(len(SIZES)):
        assert star[i] >= ref[i] - 1e-9
        assert star[i] >= ndp[i] - 1e-9
        assert star[i] >= cells[i] - 1e-9

    # Paper's gains ("up to 15%, 30% and 49% better than the Reference
    # Switch, NDP, and non-packed cells") — our model's maxima are in
    # the same bands or better.
    def gain(other):
        return max(star[i] / other[i] - 1 for i in range(len(SIZES)))
    assert gain(ref) >= 0.15
    assert gain(ndp) >= 0.30
    assert gain(cells) >= 0.49

    # NDP misses line rate at its known sizes.
    for size in (65, 97, 129):
        point = NetFpgaModel().throughput(SwitchDesign.NDP, size)
        assert point.line_rate_fraction < 0.95


def test_fig8b_trace_throughput(benchmark):
    model = NetFpgaModel()

    def run():
        return {
            workload: {
                design: trace_throughput(model, design, mix)
                for design in SwitchDesign
            }
            for workload, mix in PACKET_SIZE_MIXES.items()
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("workload", *[d.value for d in SwitchDesign])]
    for workload, by_design in scores.items():
        rows.append(
            (workload, *[f"{by_design[d]:.1f}%" for d in SwitchDesign])
        )
    print_series("Fig 8(b): throughput on trace mixes [% of capacity]", rows)

    for by_design in scores.values():
        star = by_design[SwitchDesign.STARDUST_PACKED]
        # Stardust saturates the device on every mix and keeps its edge.
        assert star > 99.0
        assert star > by_design[SwitchDesign.REFERENCE]
        assert star > by_design[SwitchDesign.CELLS_UNPACKED]
        # NDP performs worst (§6.1.1 omits it for this reason).
        assert by_design[SwitchDesign.NDP] == min(by_design.values())
