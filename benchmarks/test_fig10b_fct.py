"""Fig 10(b): flow completion times of Web-workload flows under load.

A pair of hosts exchanges flows drawn from the (synthetic) Facebook Web
flow-size distribution while every other host runs long-lived
background traffic — the paper's "testing the effect of queuing within
the network on short flows".  Stardust's scheduled fabric keeps short
flows out of deep queues: the paper's CDF shows even 1MB flows
finishing in under a millisecond, far ahead of DCTCP/DCQCN/MPTCP.
"""

import random

from harness import print_series, push_network, stardust_network

from repro.core.network import TwoTierSpec
from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.units import MICROSECOND, MILLISECOND
from repro.transport.dctcp import DctcpSender
from repro.transport.host import make_hosts
from repro.workloads.distributions import flow_size_distribution
from repro.workloads.permutation import host_permutation, start_permutation_flows

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow

# A smaller fabric than Fig 10(a)'s so the three runs stay tractable on
# one core: 4 FAs x 4 hosts, full bisection at 10G.
SPEC = TwoTierSpec(pods=2, fas_per_pod=2, fes_per_pod=4, spines=4,
                   hosts_per_fa=4)
ADDRS = [
    PortAddress(fa, p)
    for fa in range(SPEC.num_fas)
    for p in range(SPEC.hosts_per_fa)
]
N_PROBE_FLOWS = 30
PROBE_GAP_NS = 20 * MICROSECOND
#: Cap the heavy tail at 1MB — the paper's headline is "even flows of
#: 1MB have a FCT of less than a millisecond".
MAX_PROBE_BYTES = 1_000_000
DEADLINE_NS = 200 * MILLISECOND


def run_fct(kind: str):
    """Returns sorted FCTs (ms) of the probe flows.

    Probes run *sequentially* (the paper's pair of nodes exchanging
    Web-workload traffic): each probe starts a short gap after the
    previous one completes, so every FCT measures the network, not
    queueing behind sibling probes.
    """
    if kind == "stardust":
        net = stardust_network(SPEC)
        sender_cls = None
    else:
        net = push_network(SPEC)
        sender_cls = DctcpSender if kind == "dctcp" else None
    hosts, tracker = make_hosts(net, ADDRS)

    # Background: permutation of long flows on all other hosts.
    probe_src, probe_dst = ADDRS[0], ADDRS[-1]
    background_addrs = [
        a for a in ADDRS if a not in (probe_src, probe_dst)
    ]
    mapping = host_permutation(background_addrs, random.Random(3))
    start_permutation_flows(
        hosts, mapping,
        sender_cls=sender_cls, mss=9000 - 40,
    )

    sizes = flow_size_distribution("web")
    rng = random.Random(17)
    probes = []
    remaining = [N_PROBE_FLOWS]

    def launch_next():
        if not remaining[0]:
            return
        remaining[0] -= 1
        size = min(MAX_PROBE_BYTES, max(200, sizes.sample_int(rng)))
        flow = Flow(
            src=probe_src, dst=probe_dst, size_bytes=size,
            start_ns=net.sim.now + PROBE_GAP_NS,
        )
        probes.append(flow)
        kwargs = dict(
            mss=1460,
            start_delay_ns=PROBE_GAP_NS,
            on_complete=lambda: net.sim.schedule(
                PROBE_GAP_NS, launch_next
            ),
        )
        if sender_cls is not None:
            hosts[probe_src].start_flow(flow, sender_cls=sender_cls, **kwargs)
        else:
            hosts[probe_src].start_flow(flow, **kwargs)

    net.sim.schedule(100 * MICROSECOND, launch_next)  # after bg warm-up

    def done() -> int:
        return sum(
            1
            for f in probes
            if tracker.get(f.flow_id).fct_ns is not None
        )

    # Run in slices; stop as soon as the probe sequence finishes (the
    # background flows would otherwise burn simulation time forever).
    while net.sim.now < DEADLINE_NS:
        net.run(2 * MILLISECOND)
        if not remaining[0] and done() == len(probes):
            break
    fcts = sorted(
        tracker.get(f.flow_id).fct_ns / 1e6
        for f in probes
        if tracker.get(f.flow_id).fct_ns is not None
    )
    return fcts, done()


def test_fig10b_web_fct(benchmark):
    def run():
        return {
            kind: run_fct(kind) for kind in ("stardust", "tcp", "dctcp")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("scheme", "done", "p50 [ms]", "p90 [ms]", "p99 [ms]")]
    stats = {}
    def pct(fcts, q):
        return fcts[min(len(fcts) - 1, int(q * len(fcts)))]

    for kind, (fcts, completed) in results.items():
        stats[kind] = (pct(fcts, 0.5), pct(fcts, 0.9), pct(fcts, 0.99))
        rows.append(
            (kind, f"{completed}/{N_PROBE_FLOWS}",
             f"{stats[kind][0]:.3f}", f"{stats[kind][1]:.3f}",
             f"{stats[kind][2]:.3f}")
        )
    print_series("Fig 10(b): Web-workload FCT under background load", rows)

    star_fcts, star_done = results["stardust"]
    # Every probe finishes on Stardust.
    assert star_done == N_PROBE_FLOWS
    # "Even flows of 1MB have a FCT of less than a millisecond" — the
    # largest probe is 1MB; allow 2ms at our 10G scale.
    assert star_fcts[-1] < 2.0
    # Stardust's distribution beats both competitors at the median and
    # the tail (Fig 10(b)'s CDF dominance).
    for other in ("tcp", "dctcp"):
        assert stats["stardust"][2] <= stats[other][2]
        assert stats["stardust"][0] <= stats[other][0] * 1.2
