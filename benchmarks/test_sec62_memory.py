"""§6.2's closing extrapolation and §4.1's credit sizing."""

from harness import print_series

from repro.analysis.memory import (
    egress_inflight_bytes,
    fe_buffer_bytes,
    fe_max_latency_ns,
    min_credit_size_bytes,
)


def test_sec62_memory_extrapolation(benchmark):
    def run():
        return {
            "fe_memory_bytes": fe_buffer_bytes(
                links=256, queue_cells=128, cell_bytes=256
            ),
            "fe_latency_ns": fe_max_latency_ns(
                queue_cells=128, cell_bytes=256, link_rate_bps=50 * 10**9
            ),
            "min_credit_10T": min_credit_size_bytes(10 * 10**12),
            "egress_inflight": egress_inflight_bytes(
                credit_size_bytes=4096, sources=128,
                loop_latency_ns=5_000, port_rate_bps=50 * 10**9,
            ),
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("FE cell memory (256 links x 128 cells x 256B)",
         f"{r['fe_memory_bytes'] / 2**20:.0f} MB (paper: 8 MB)"),
        ("FE worst-case queueing latency",
         f"{r['fe_latency_ns'] / 1000:.2f} us (paper: <= ~5 us)"),
        ("min credit for a 10Tbps FA",
         f"{r['min_credit_10T']} B (paper's prose: ~2000B)"),
        ("egress in-flight memory, 128 sources x 4KB credits",
         f"{r['egress_inflight'] / 1024:.0f} KB"),
    ]
    print_series("§6.2 extrapolation / §4.1 credit sizing", rows)

    assert r["fe_memory_bytes"] == 8 * 2**20
    assert 5_000 <= r["fe_latency_ns"] <= 5_500
    assert r["min_credit_10T"] == 2500
    # Egress memory stays small — the architecture's whole point.
    assert r["egress_inflight"] < 1 * 2**20
