"""Fig 10(d) + Appendix C: relative silicon area/power of a Fabric
Element vs a standard Ethernet switch, and the lookup-table math."""

from harness import print_series

from repro.analysis.area import (
    FABRIC_ELEMENT_RATIOS,
    fabric_adapter_overhead_fraction,
    fe_table_bits,
    table_ratio,
    tor_table_bits,
    voq_memory_bytes,
)


def test_fig10d_relative_area(benchmark):
    ratios = benchmark.pedantic(
        lambda: dict(FABRIC_ELEMENT_RATIOS), rounds=1, iterations=1
    )
    rows = [("component", "B/A (FE vs standard switch)")]
    for key, value in ratios.items():
        rows.append((key, f"{value * 100:.1f}%"))
    print_series("Fig 10(d): Fabric Element area relative to a ToR", rows)

    assert ratios["header_processing"] == 0.13
    assert ratios["network_interface"] == 0.30
    assert ratios["other_logic"] == 0.60
    assert ratios["io"] == 0.875
    assert ratios["area_per_tbps"] == 0.666
    assert ratios["power_per_tbps"] == 0.648
    # §1's "reducing silicon level requirements by 33%".
    assert 1 - ratios["area_per_tbps"] >= 0.33


def test_appendixC_table_sizes(benchmark):
    def run():
        hosts = 100_000
        return {
            k: (tor_table_bits(hosts, k), fe_table_bits(hosts, k),
                table_ratio(hosts, k))
            for k in (64, 128, 256)
        }

    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("radix", "ToR table [bits]", "FE table [bits]", "ratio")]
    for k, (tor, fe, ratio) in tables.items():
        rows.append((k, f"{tor:,}", f"{fe:,}", f"{ratio:.0f}x"))
    print_series("Appendix C: lookup table sizes at 100K hosts", rows)

    # §4.2: FE forwarding state is two orders of magnitude smaller.
    for _k, (_tor, _fe, ratio) in tables.items():
        assert ratio >= 100

    # Appendix C's other claims.
    assert voq_memory_bytes(128 * 1024) == 4 * 1024 * 1024
    assert abs(fabric_adapter_overhead_fraction()) < 0.15
