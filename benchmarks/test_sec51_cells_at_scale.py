"""§5.1 at scale: the head-to-head on the large three-tier fabric.

``permutation_three_tier_large`` is 128 hosts spraying cells across 32
Fabric Adapters, two FE tiers and a global spine row — the biggest
registered scenario, and the workload class the calendar-queue engine
plus cell trains were built to unlock.  This benchmark runs the paper's
headline comparison on it: Stardust's pull scheduling holds near line
rate where the pushed ECMP fabric loses throughput to flow collisions
on every one of the five hops.
"""

import pytest
from harness import print_series

from repro.experiments.registry import build_scenario
from repro.experiments.runner import run_spec
from repro.sim.units import MICROSECOND

WARMUP_NS = 150 * MICROSECOND
MEASURE_NS = 450 * MICROSECOND


def run(kind: str):
    spec = build_scenario(
        "permutation_three_tier_large", kind=kind, seed=7,
        warmup_ns=WARMUP_NS, measure_ns=MEASURE_NS,
    )
    return run_spec(spec)


@pytest.mark.slow
def test_cells_at_scale_stardust_beats_push():
    star = run("stardust")
    push = run("tcp")

    print_series(
        "Large three-tier permutation (128 hosts, 10G): per-flow Gbps",
        [
            ("stardust", f"mean {star.mean_rate_gbps:.2f}",
             f"min {star.flow_rates_gbps[0]:.2f}"),
            ("push", f"mean {push.mean_rate_gbps:.2f}",
             f"min {push.flow_rates_gbps[0]:.2f}"),
        ],
    )

    assert star.delivered_bytes > 0
    assert push.delivered_bytes > 0
    # Stardust: near line rate across all five hops, for every flow.
    assert star.mean_rate_gbps > 8.5
    # The §5.1 contrast survives scale: ECMP collisions compound with
    # fabric depth, so the push mean and its worst victim flow both
    # fall below Stardust's.
    assert star.mean_rate_gbps > push.mean_rate_gbps
    assert star.flow_rates_gbps[0] > push.flow_rates_gbps[0]
