"""§6.1.2: throughput and latency of a single-tier Stardust system.

The paper measured an Arista 7500E (24 Fabric Adapters, 12 Fabric
Elements): full line rate on all ports for all packet sizes, no loss in
the fabric, minimum latency nearly independent of packet size, average
and maximum latency growing with packet size (store-and-forward), and
nanosecond-scale latency variance.  We reproduce the behaviours on a
scaled 8-FA / 4-FE single-tier system at 10G.
"""

from harness import print_series

from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps
from repro.workloads.generator import UniformRandomTraffic

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow

SPEC = OneTierSpec(num_fas=8, uplinks_per_fa=4, hosts_per_fa=4)
RATE = gbps(10)
ADDRS = [
    PortAddress(fa, p)
    for fa in range(SPEC.num_fas)
    for p in range(SPEC.hosts_per_fa)
]
SIZES = [64, 256, 384, 512, 1024, 1500]
DURATION = 1 * MILLISECOND


def run_size(packet_bytes: int, utilization: float = 0.95):
    """Full-load run at one packet size; returns metrics."""
    config = StardustConfig(
        fabric_link_rate_bps=RATE,
        host_link_rate_bps=RATE,
        cell_size_bytes=256,
        cell_header_bytes=16,
    )
    net = StardustNetwork(SPEC, config=config)
    traffic = UniformRandomTraffic(
        net, ADDRS, utilization=utilization,
        packet_bytes=packet_bytes, seed=23,
    )
    traffic.start()
    net.run(DURATION)
    traffic.stop()
    net.run(DURATION // 4)  # drain
    lat = net.packet_latency()
    delivered = traffic.total_received()
    sent = traffic.total_sent()
    return {
        "delivered_frac": delivered / sent if sent else 0.0,
        "lat_min_us": lat.minimum() / 1000,
        "lat_avg_us": lat.mean() / 1000,
        "lat_max_us": lat.maximum() / 1000,
        "lat_stdev_us": lat.stdev() / 1000,
        "fabric_drops": net.fabric_cell_drops(),
        "ingress_drops": net.ingress_drops(),
    }


def test_sec612_line_rate_and_latency(benchmark):
    results = benchmark.pedantic(
        lambda: {s: run_size(s) for s in SIZES}, rounds=1, iterations=1
    )
    rows = [("pkt", "delivered", "min [us]", "avg [us]", "max [us]",
             "stdev [us]", "drops")]
    for size, r in results.items():
        rows.append(
            (f"{size}B", f"{r['delivered_frac'] * 100:.1f}%",
             f"{r['lat_min_us']:.2f}", f"{r['lat_avg_us']:.2f}",
             f"{r['lat_max_us']:.2f}", f"{r['lat_stdev_us']:.2f}",
             r["fabric_drops"] + r["ingress_drops"])
        )
    print_series("§6.1.2: single-tier system at 95% load", rows)

    for size, r in results.items():
        # Full line rate for all packet sizes, no loss anywhere.
        assert r["delivered_frac"] > 0.97, f"{size}B not at line rate"
        assert r["fabric_drops"] == 0
        assert r["ingress_drops"] == 0

    # Minimum latency nearly independent of packet size: at 10G links
    # store-and-forward adds ~1.2us for a 1500B packet, so the spread
    # of minima stays within ~3us while avg/max spread is far larger.
    minima = [r["lat_min_us"] for r in results.values()]
    assert max(minima) - min(minima) < 3.0
    avg_spread = (
        results[1500]["lat_avg_us"] - results[64]["lat_avg_us"]
    )
    assert avg_spread > 3 * (max(minima) - min(minima))

    # Average and maximum latency increase with packet size
    # (store-and-forward at the Fabric Adapter).
    avgs = [results[s]["lat_avg_us"] for s in SIZES]
    assert avgs[-1] > avgs[0]
    assert results[1500]["lat_max_us"] > results[64]["lat_max_us"]
