"""Shared experiment harnesses for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  The
simulations are scaled-down versions of the paper's setups (documented
per benchmark); the *shape* of each result — who wins, by what rough
factor, where crossovers sit — is asserted, not absolute numbers.

Since the ``repro.experiments`` subsystem landed, this module is a thin
compatibility veneer: networks are built by
:mod:`repro.experiments.builders` (which resolves fabrics through the
:mod:`repro.fabrics` registry) and permutation runs execute through
:func:`repro.experiments.runner.run_spec`, so benchmarks and declarative
sweeps share one implementation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments import builders
from repro.experiments.registry import PERM_TOPOLOGY
from repro.experiments.runner import run_spec
from repro.experiments.spec import ScenarioSpec, TopologySpec, resolve_kind
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps

#: The standard scaled-down 2-tier fabric used by host-level benches —
#: one definition, shared with the experiment registry's "permutation"
#: scenario so the two can never silently diverge.
PERM_SPEC = PERM_TOPOLOGY.build()
PERM_ADDRS = [
    PortAddress(fa, p)
    for fa in range(PERM_SPEC.num_fas)
    for p in range(PERM_SPEC.hosts_per_fa)
]
PERM_RATE = gbps(10)


def stardust_network(
    spec=PERM_SPEC,
    rate=PERM_RATE,
    cell_bytes: int = 512,
    **overrides,
):
    """A Stardust fabric at benchmark scale.

    512B cells / 4KB credits follow the paper's own htsim shortcut
    ("intended to reduce simulation time", Appendix G).
    """
    return builders.stardust_network(
        spec, rate=rate, cell_bytes=cell_bytes, **overrides
    )


def push_network(spec=PERM_SPEC, rate=PERM_RATE, **eth_overrides):
    """The Ethernet ECMP fabric on the same topology."""
    return builders.push_network(spec, rate=rate, **eth_overrides)


def permutation_throughput(
    kind: str,
    seed: int = 7,
    warmup_ns: int = 2 * MILLISECOND,
    window_ns: int = 6 * MILLISECOND,
    spec=PERM_SPEC,
    addrs: Optional[Sequence[PortAddress]] = None,
) -> List[float]:
    """One Fig 10(a) run; returns sorted per-flow Gbps."""
    fabric, transport = resolve_kind(kind)
    workload = {"kind": "permutation"}
    if transport == "mptcp":
        workload["mptcp_subflows"] = 8
    if addrs is not None:
        workload["addrs"] = [[a.fa, a.port] for a in addrs]
    scenario = ScenarioSpec(
        scenario="permutation",
        topology=TopologySpec.of(spec),
        fabric=fabric,
        transport=transport,
        workload=workload,
        seed=seed,
        warmup_ns=warmup_ns,
        measure_ns=window_ns,
        link_rate_bps=PERM_RATE,
    )
    # hermetic=False keeps the historical in-process flow-id sequence,
    # so existing benchmark outputs are reproduced bit for bit.
    return run_spec(scenario, hermetic=False).flow_rates_gbps


def print_series(title: str, rows: Sequence[tuple]) -> None:
    """Uniform table printer for benchmark output."""
    print(f"\n### {title}")
    for row in rows:
        print("   " + "  ".join(str(c) for c in row))
