"""Shared experiment harnesses for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  The
simulations are scaled-down versions of the paper's setups (documented
per benchmark); the *shape* of each result — who wins, by what rough
factor, where crossovers sit — is asserted, not absolute numbers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.baselines.ethernet import EthConfig
from repro.baselines.push_fabric import PushFabricNetwork
from repro.core.config import StardustConfig
from repro.core.network import StardustNetwork, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import KB, MILLISECOND, gbps
from repro.transport.dcqcn import DcqcnNotificationPoint, DcqcnSender
from repro.transport.dctcp import DctcpSender
from repro.transport.host import make_hosts
from repro.workloads.permutation import host_permutation, start_permutation_flows

#: The standard scaled-down 2-tier fabric used by host-level benches:
#: 8 FAs x 4 hosts at 10G, full bisection (4x10G uplinks per FA).
PERM_SPEC = TwoTierSpec(
    pods=2, fas_per_pod=4, fes_per_pod=4, spines=4, hosts_per_fa=4
)
PERM_ADDRS = [
    PortAddress(fa, p)
    for fa in range(PERM_SPEC.num_fas)
    for p in range(PERM_SPEC.hosts_per_fa)
]
PERM_RATE = gbps(10)


def stardust_network(
    spec=PERM_SPEC,
    rate=PERM_RATE,
    cell_bytes: int = 512,
    **overrides,
) -> StardustNetwork:
    """A Stardust fabric at benchmark scale.

    512B cells / 4KB credits follow the paper's own htsim shortcut
    ("intended to reduce simulation time", Appendix G).
    """
    config = StardustConfig(
        fabric_link_rate_bps=rate,
        host_link_rate_bps=rate,
        cell_size_bytes=cell_bytes,
        cell_header_bytes=16,
        **overrides,
    )
    return StardustNetwork(spec, config=config)


def push_network(spec=PERM_SPEC, rate=PERM_RATE, **eth_overrides):
    """The Ethernet ECMP fabric on the same topology."""
    config = EthConfig(**eth_overrides) if eth_overrides else EthConfig()
    return PushFabricNetwork(
        spec, config=config,
        fabric_link_rate_bps=rate, host_link_rate_bps=rate,
    )


def permutation_throughput(
    kind: str,
    seed: int = 7,
    warmup_ns: int = 2 * MILLISECOND,
    window_ns: int = 6 * MILLISECOND,
    spec=PERM_SPEC,
    addrs: Optional[Sequence[PortAddress]] = None,
) -> List[float]:
    """One Fig 10(a) run; returns sorted per-flow Gbps."""
    addrs = list(addrs or PERM_ADDRS)
    mapping = host_permutation(addrs, random.Random(seed))

    if kind == "stardust":
        net = stardust_network(spec)
    else:
        net = push_network(spec)
    hosts, tracker = make_hosts(net, addrs)

    kwargs: Dict = dict(mss=9000 - 40)
    if kind == "mptcp":
        flows = start_permutation_flows(
            hosts, mapping, mptcp_subflows=8, **kwargs
        )
    elif kind == "dctcp":
        flows = start_permutation_flows(
            hosts, mapping, sender_cls=DctcpSender, **kwargs
        )
    elif kind == "dcqcn":
        flows = []
        from repro.net.flow import Flow

        for src, dst in mapping.items():
            flow = Flow(src=src, dst=dst, size_bytes=None)
            receiver = hosts[dst]
            receiver.install_receiver(
                DcqcnNotificationPoint(receiver, flow.flow_id)
            )
            hosts[src].start_flow(
                flow, sender_cls=DcqcnSender,
                line_rate_bps=PERM_RATE, **kwargs,
            )
            flows.append(flow)
    else:  # stardust / tcp
        flows = start_permutation_flows(hosts, mapping, **kwargs)

    net.run(warmup_ns)
    marks = {f.flow_id: tracker.get(f.flow_id).bytes_delivered for f in flows}
    net.run(window_ns)
    rates = sorted(
        (tracker.get(f.flow_id).bytes_delivered - marks[f.flow_id])
        * 8 / (window_ns / 1e9) / 1e9
        for f in flows
    )
    return rates


def print_series(title: str, rows: Sequence[tuple]) -> None:
    """Uniform table printer for benchmark output."""
    print(f"\n### {title}")
    for row in rows:
        print("   " + "  ".join(str(c) for c in row))
