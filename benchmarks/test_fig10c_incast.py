"""Fig 10(c): incast completion time vs number of backend servers.

A frontend collects a fixed-size response (450KB in the paper; scaled
here) from N backends simultaneously.  The paper's claims: Stardust's
*last* FCT matches DCTCP's, its *first-to-last spread* (fairness) is
far better, and no packets drop inside the Stardust fabric.
"""

from harness import print_series, push_network, stardust_network

from repro.core.network import OneTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import KB, MB, MILLISECOND, gbps
from repro.transport.dctcp import DctcpSender
from repro.transport.host import make_hosts
from repro.workloads.incast import run_incast

RATE = gbps(10)
RESPONSE = 150 * KB
BACKEND_COUNTS = [4, 8, 16, 23]
SPEC = OneTierSpec(num_fas=24, uplinks_per_fa=4, hosts_per_fa=1)
ADDRS = [PortAddress(fa, 0) for fa in range(SPEC.num_fas)]


def run_one(kind: str, n_backends: int):
    if kind == "stardust":
        net = stardust_network(
            SPEC, RATE, cell_bytes=256, ingress_buffer_bytes=32 * MB
        )
        drops = net.fabric_cell_drops
        sender_cls = None
    else:
        net = push_network(
            SPEC, RATE,
            port_buffer_bytes=150_000,
            ecn_threshold_bytes=30_000 if kind == "dctcp" else None,
        )
        drops = net.total_drops
        sender_cls = DctcpSender if kind == "dctcp" else None
    hosts, tracker = make_hosts(net, ADDRS)
    return run_incast(
        net, hosts, tracker,
        frontend=ADDRS[0],
        backends=ADDRS[1 : n_backends + 1],
        response_bytes=RESPONSE,
        sender_cls=sender_cls,
        timeout_ns=400 * MILLISECOND,
        fabric_drops_fn=drops,
    )


def test_fig10c_incast(benchmark):
    def run():
        return {
            kind: [run_one(kind, n) for n in BACKEND_COUNTS]
            for kind in ("stardust", "dctcp", "tcp")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("scheme", "backends", "first [ms]", "last [ms]",
             "spread", "done", "drops")]
    for kind, runs in results.items():
        for r in runs:
            rows.append(
                (kind, r.n_backends,
                 f"{r.first_fct_ns / 1e6:.2f}" if r.first_fct_ns else "-",
                 f"{r.last_fct_ns / 1e6:.2f}" if r.last_fct_ns else "-",
                 f"{r.fairness_spread:.2f}" if r.fairness_spread else "-",
                 f"{r.completed}/{r.n_backends}", r.fabric_drops)
            )
    print_series("Fig 10(c): incast completion vs backend count", rows)

    for i in range(len(BACKEND_COUNTS)):
        star = results["stardust"][i]
        dctcp = results["dctcp"][i]
        # Everything completes, and the Stardust fabric never drops.
        assert star.all_completed
        assert star.fabric_drops == 0
        # Last FCT comparable to DCTCP (within 1.5x either way).
        if dctcp.last_fct_ns and star.last_fct_ns:
            assert star.last_fct_ns < 1.5 * dctcp.last_fct_ns
        # Fairness: Stardust's first-to-last spread is far tighter.
        if star.fairness_spread and dctcp.fairness_spread:
            assert star.fairness_spread < dctcp.fairness_spread

    # Last FCT grows with incast degree (the port is the bottleneck).
    lasts = [r.last_fct_ns for r in results["stardust"]]
    assert lasts == sorted(lasts)
