"""Fig 7 / Fig 12 (§5.2, Appendix F): push fabric vs pull fabric.

Two 10G ports A and B on one destination device.  A is oversubscribed
2:1 from two sources; B is cleanly loaded at line rate.  The Ethernet
push fabric drops B's traffic at fabric links shared with A's excess;
Stardust's egress schedulers admit exactly port rate per port, so B is
untouched.  The traffic-class variant (Fig 12) loads A with a high
class and B with a low class: the pushed fabric still destroys B, and
Stardust still delivers both.
"""

from harness import print_series, push_network, stardust_network

from repro.core.network import OneTierSpec
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.entity import Entity
from repro.sim.units import MILLISECOND, gbps

SPEC = OneTierSpec(num_fas=3, uplinks_per_fa=2, hosts_per_fa=2)
RATE = gbps(10)
DURATION = 3 * MILLISECOND


class BlastHost(Entity):
    """Saturates its NIC with pre-queued packets; counts deliveries."""

    def __init__(self, sim, name, address):
        super().__init__(sim, name)
        self.address = address
        self.received_bytes = 0

    def receive(self, packet, link):
        self.received_bytes += packet.size_bytes

    def blast(self, dst, flow_ids, priority=0):
        n = int(RATE / 8 * (DURATION / 1e9) / 1520) + 100
        for i in range(n):
            packet = Packet(
                size_bytes=1500, src=self.address, dst=dst,
                flow_id=flow_ids[i % len(flow_ids)], priority=priority,
                created_ns=self.sim.now,
            )
            self.ports[0].send(packet, packet.wire_bytes)


def scenario(kind: str, with_classes: bool):
    if kind == "stardust":
        net = stardust_network(
            SPEC, RATE, cell_bytes=256,
            traffic_classes=2 if with_classes else 1,
        )
    else:
        net = push_network(
            SPEC, RATE, port_buffer_bytes=30_000, ecn_threshold_bytes=None
        )
    hosts = {}
    for fa in range(SPEC.num_fas):
        for p in range(SPEC.hosts_per_fa):
            addr = PortAddress(fa, p)
            host = BlastHost(net.sim, f"h{fa}.{p}", addr)
            net.attach_host(addr, host)
            hosts[addr] = host

    port_a = PortAddress(2, 0)
    port_b = PortAddress(2, 1)
    hi = 0  # high priority class (strict priority class 0)
    lo = 1 if with_classes else 0
    hosts[PortAddress(0, 0)].blast(port_a, list(range(10, 18)), priority=hi)
    hosts[PortAddress(0, 1)].blast(port_b, [2], priority=lo)
    hosts[PortAddress(1, 0)].blast(port_a, list(range(30, 38)), priority=hi)
    net.run(2 * DURATION)

    def gbps_of(host):
        return host.received_bytes * 8 / (2 * DURATION / 1e9) / 1e9

    return gbps_of(hosts[port_a]), gbps_of(hosts[port_b])


def test_fig7_push_vs_pull(benchmark):
    def run():
        return {
            "stardust": scenario("stardust", with_classes=False),
            "push": scenario("push", with_classes=False),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("fabric", "port A [Gbps]", "port B [Gbps]")]
    for kind, (a, b) in results.items():
        rows.append((kind, f"{a:.2f}", f"{b:.2f}"))
    print_series("Fig 7: oversubscribed port A vs innocent port B", rows)

    star_a, star_b = results["stardust"]
    push_a, push_b = results["push"]
    # Stardust: B unharmed (full sending window's worth), A at port rate.
    assert star_b > 0.85 * (RATE / 1e9) / 2  # half the 2x window
    assert star_a <= (RATE / 1e9) * 1.05
    # Push fabric: B loses a chunk of its traffic (paper: 66% delivered).
    assert push_b < 0.9 * star_b


def test_fig12_traffic_classes(benchmark):
    def run():
        return {
            "stardust": scenario("stardust", with_classes=True),
            "push": scenario("push", with_classes=True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("fabric", "port A (high TC)", "port B (low TC)")]
    for kind, (a, b) in results.items():
        rows.append((kind, f"{a:.2f}", f"{b:.2f}"))
    print_series("Fig 12: same scenario with traffic classes", rows)

    star_a, star_b = results["stardust"]
    push_a, push_b = results["push"]
    # Stardust total is roughly twice the push fabric's (Appendix F).
    assert star_a + star_b > 1.5 * (push_a + push_b) * 0.75
    assert push_b < star_b
