"""§5.9 live: the fabric heals itself after a link failure.

Runs the real reachability protocol in a 1-tier fabric, fails a Fabric
Adapter uplink both ways under traffic, and measures (a) how long until
the source excludes the dead link from its spray set and (b) that
delivery continues over the surviving links.  The measured exclusion
time is compared against the Appendix E analytical expectation for the
same protocol parameters.
"""

from harness import print_series

from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.entity import Entity
from repro.sim.units import MICROSECOND, MILLISECOND, gbps

SPEC = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
PERIOD = 10 * MICROSECOND


class CountingHost(Entity):
    def __init__(self, sim, name, address):
        super().__init__(sim, name)
        self.address = address
        self.received = 0

    def receive(self, packet, link):
        self.received += 1


def run_healing():
    config = StardustConfig(
        fabric_link_rate_bps=gbps(25),
        host_link_rate_bps=gbps(25),
        reachability_period_ns=PERIOD,
        reachability_miss_threshold=3,
        reachability_up_threshold=3,
    )
    net = StardustNetwork(SPEC, config=config, reachability="dynamic")
    hosts = {}
    for fa in range(SPEC.num_fas):
        addr = PortAddress(fa, 0)
        host = CountingHost(net.sim, f"h{fa}", addr)
        net.attach_host(addr, host)
        hosts[addr] = host
    net.run(500 * MICROSECOND)  # converge

    fa0 = net.fas[0]
    assert len(fa0.eligible_uplinks(2)) == SPEC.uplinks_per_fa

    # Fail uplink 0 both ways.
    dead = fa0.uplinks[0]
    dead.fail()
    fe = dead.dst
    for port in fe.fabric_ports:
        if port.out.dst is fa0:
            port.out.fail()
    t_fail = net.sim.now

    # Local detection is instantaneous (loss of signal, §5.10): the
    # source immediately stops spraying on its own dead link.
    assert dead not in fa0.eligible_uplinks(2)

    # Remote propagation runs at protocol speed: another Fabric
    # Adapter must learn — via the failed FE's shrunken reachability
    # advertisement — that this FE no longer reaches fa0.
    fa1 = net.fas[1]
    t_excluded = None
    for _ in range(400):
        net.run(5 * MICROSECOND)
        if len(fa1.eligible_uplinks(0)) < SPEC.uplinks_per_fa:
            t_excluded = net.sim.now
            break
    assert t_excluded is not None, "remote FA never learned of the failure"

    # Traffic over the healed fabric.
    src = hosts[PortAddress(0, 0)]
    for _ in range(200):
        packet = Packet(
            size_bytes=1000, src=src.address, dst=PortAddress(2, 0),
            created_ns=net.sim.now,
        )
        src.ports[0].send(packet, packet.wire_bytes)
    net.run(3 * MILLISECOND)

    # Restore and re-admit.
    dead.restore()
    for port in fe.fabric_ports:
        if port.out.dst is fa0:
            port.out.restore()
    net.run(500 * MICROSECOND)

    return {
        "exclusion_us": (t_excluded - t_fail) / 1000,
        "delivered": hosts[PortAddress(2, 0)].received,
        "readmitted": len(fa0.eligible_uplinks(2)) == SPEC.uplinks_per_fa,
        "remote_healed": len(fa1.eligible_uplinks(0)) == SPEC.uplinks_per_fa,
    }


def test_sec59_self_healing(benchmark):
    result = benchmark.pedantic(run_healing, rounds=1, iterations=1)
    rows = [
        ("remote exclusion time (protocol)",
         f"{result['exclusion_us']:.0f} us"),
        ("packets delivered after failure", f"{result['delivered']}/200"),
        ("link re-admitted after restore", result["readmitted"]),
        ("remote view healed after restore", result["remote_healed"]),
    ]
    print_series("§5.9: self-healing under link failure", rows)

    # Remote detection needs miss_threshold periods of silence plus an
    # advertisement cycle — the "hundreds of microseconds" Appendix E
    # band at these parameters — and is definitely not instantaneous.
    assert result["exclusion_us"] <= 8 * PERIOD / 1000 + 50
    assert result["exclusion_us"] >= 2 * PERIOD / 1000
    assert result["delivered"] == 200
    assert result["readmitted"]
    assert result["remote_healed"]
