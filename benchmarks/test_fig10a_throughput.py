"""Fig 10(a): permutation throughput — Stardust vs MPTCP/DCTCP/DCQCN.

32 hosts at 10G over a full-bisection 2-tier fabric, one long flow per
host to a distinct remote host (random cross-rack permutation).  The
paper reports mean utilization 94% (Stardust) vs 90/49/47%
(MPTCP/DCTCP/DCQCN) on its 432-node fat-tree; at this scale the shape
to hold is: Stardust near line rate and almost perfectly fair, ECMP
transports far below with a starved low tail.
"""

from harness import PERM_RATE, permutation_throughput, print_series

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow


def test_fig10a_permutation_throughput(benchmark):
    def run():
        return {
            kind: permutation_throughput(kind)
            for kind in ("stardust", "mptcp", "dctcp", "dcqcn", "tcp")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    line = PERM_RATE / 1e9
    rows = [("scheme", "mean [Gbps]", "mean [%]", "p5", "min", "max")]
    means = {}
    for kind, rates in results.items():
        mean = sum(rates) / len(rates)
        means[kind] = mean
        rows.append(
            (kind, f"{mean:.2f}", f"{100 * mean / line:.0f}%",
             f"{rates[1]:.2f}", f"{rates[0]:.2f}", f"{rates[-1]:.2f}")
        )
    print_series("Fig 10(a): per-flow throughput, permutation", rows)

    star = results["stardust"]
    star_mean = means["stardust"]
    # Stardust: >90% mean utilization (paper: 94%).
    assert star_mean > 0.90 * line
    # ...and near-perfect fairness (96% of flows at the same rate).
    assert star[0] > 0.93 * star[-1]
    # Stardust beats every ECMP-based transport decisively.
    for other in ("mptcp", "dctcp", "dcqcn", "tcp"):
        assert star_mean > 1.3 * means[other]
    # DCTCP/DCQCN land in the paper's half-capacity band.
    assert means["dctcp"] < 0.65 * line
    assert means["dcqcn"] < 0.65 * line
    # MPTCP does better than single-path transports (paper's ordering).
    assert means["mptcp"] > means["dctcp"]
