"""Fig 9 (§6.2): latency and queue-size distributions in a 2-tier fabric.

A scaled-down version of the paper's 256-FA / 192-FE simulation:
8 FAs x 4 hosts at 10G over a full-bisection 2-tier fabric, open-loop
Poisson traffic to uniformly random remote FAs at fabric utilizations
0.66 / 0.8 / 0.92 / 0.95, plus an intentionally oversubscribed 1.2 run
where FCI throttles the credit rate.  Queue depths are sampled at
last-stage (FE -> FA) links in cells, as in the paper, and compared
against the M/D/1 model of §4.2.1.
"""

from harness import print_series

from repro.analysis.mdq import md1_tail_probability
from repro.core.config import StardustConfig
from repro.core.network import StardustNetwork, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps
from repro.workloads.generator import UniformRandomTraffic

import pytest

# Minutes-scale simulation: the fast gate skips it (-m 'not slow');
# CI runs the slow marks on main.
pytestmark = pytest.mark.slow

RATE = gbps(10)
LOADS = [0.66, 0.8, 0.92, 0.95]
DURATION = 2 * MILLISECOND


def run_load(load: float, oversubscribed: bool = False):
    """One Fig 9 run; returns (latency_hist, queue_hist, network)."""
    # The paper's "fabric utilization" is raw wire utilization after
    # cell-header overhead (§6.2).  The injector paces by host-wire
    # bytes (1020B for a 1000B packet), and the fabric carries the
    # payload in 256B cells with 16B headers, so the injection knob is
    # scaled by both ratios to land the fabric at the target load.
    payload_ratio = (256 - 16) / 256 * 1020 / 1000
    if oversubscribed:
        # 5 hosts x 10G feed 4x10G of uplinks: 1.25x oversubscription
        # at 96% wire injection = 1.2 offered fabric load.
        spec = TwoTierSpec(
            pods=2, fas_per_pod=4, fes_per_pod=4, spines=4, hosts_per_fa=5
        )
        utilization = 0.96 * payload_ratio
    else:
        spec = TwoTierSpec(
            pods=2, fas_per_pod=4, fes_per_pod=4, spines=4, hosts_per_fa=4
        )
        utilization = load * payload_ratio
    config = StardustConfig(
        fabric_link_rate_bps=RATE,
        host_link_rate_bps=RATE,
        cell_size_bytes=256,
        cell_header_bytes=16,
    )
    net = StardustNetwork(spec, config=config)
    addrs = [
        PortAddress(fa, p)
        for fa in range(spec.num_fas)
        for p in range(spec.hosts_per_fa)
    ]
    traffic = UniformRandomTraffic(
        net, addrs, utilization=utilization, packet_bytes=1000, seed=13
    )
    traffic.start()
    net.run(DURATION)
    traffic.stop()
    return net.cell_latency(), net.fabric_queue_depth(), net


def test_fig9_latency_distribution(benchmark):
    def run():
        results = {}
        for load in LOADS:
            lat, _q, net = run_load(load)
            results[load] = {
                "p50": lat.pct(50) / 1000,
                "p99": lat.pct(99) / 1000,
                "max": lat.maximum() / 1000,
                "drops": net.fabric_cell_drops(),
            }
        lat, _q, net = run_load(1.2, oversubscribed=True)
        results[1.2] = {
            "p50": lat.pct(50) / 1000,
            "p99": lat.pct(99) / 1000,
            "max": lat.maximum() / 1000,
            "drops": net.fabric_cell_drops(),
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("load", "p50 [us]", "p99 [us]", "max [us]", "cell drops")]
    for load, r in results.items():
        rows.append(
            (load, f"{r['p50']:.2f}", f"{r['p99']:.2f}",
             f"{r['max']:.2f}", r["drops"])
        )
    print_series("Fig 9 (left): fabric traversal latency", rows)

    # Latency distribution is tight and grows with load.
    p99s = [results[l]["p99"] for l in LOADS]
    assert p99s == sorted(p99s)
    # Even at 95% the tail stays bounded (paper: <13us at its scale).
    assert results[0.95]["max"] < 100.0
    # Lossless at every load, including 120% with FCI.
    assert all(r["drops"] == 0 for r in results.values())


def test_fig9_queue_distribution(benchmark):
    def run():
        results = {}
        for load in LOADS:
            _lat, queues, net = run_load(load)
            tail10 = sum(1 for s in queues.samples if s >= 10) / queues.count
            tail25 = sum(1 for s in queues.samples if s >= 25) / queues.count
            results[load] = {
                "mean": queues.mean(),
                "p99": queues.pct(99),
                "max": queues.maximum(),
                "tail10": tail10,
                "tail25": tail25,
                "md1_tail10": md1_tail_probability(load, 10),
                "fci": sum(fe.cells_fci_marked for fe in net.fes),
            }
        _lat, queues, net = run_load(1.2, oversubscribed=True)
        results[1.2] = {
            "mean": queues.mean(),
            "p99": queues.pct(99),
            "max": queues.maximum(),
            "tail10": sum(1 for s in queues.samples if s >= 10)
            / queues.count,
            "tail25": sum(1 for s in queues.samples if s >= 25)
            / queues.count,
            "md1_tail10": float("nan"),
            "fci": sum(fe.cells_fci_marked for fe in net.fes),
        }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("load", "mean [cells]", "p99", "max",
         "P[Q>=10]", "M/D/1 P[Q>=10]", "FCI marks")
    ]
    for load, r in results.items():
        rows.append(
            (load, f"{r['mean']:.2f}", f"{r['p99']:.0f}", f"{r['max']:.0f}",
             f"{r['tail10']:.2e}", f"{r['md1_tail10']:.2e}", r["fci"])
        )
    print_series("Fig 9 (right): last-stage queue size [cells]", rows)

    # Queue tails grow with utilization (exponential in load).
    tails = [results[l]["tail10"] for l in LOADS]
    assert tails == sorted(tails)
    # The M/D/1 model upper-bounds the sprayed fabric (it assumes the
    # worst-case arrival process, §4.2.1/§5.7).
    for load in LOADS:
        assert results[load]["tail10"] <= 3 * max(
            results[load]["md1_tail10"], 1e-6
        )
    # Oversubscription run: FCI engaged, queues bounded (they stop
    # growing once the throttle bites) and, critically, lossless.
    assert results[1.2]["fci"] > 0
    assert results[1.2]["max"] < 600
