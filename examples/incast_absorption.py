#!/usr/bin/env python3
"""Incast absorption (§5.4): many servers answer one frontend at once.

A pushed Ethernet fabric lets the whole burst converge on the victim
ToR, fills its small buffer and drops; Stardust admits exactly the
egress port's rate into the fabric and parks the rest in the *source*
Fabric Adapters' deep buffers — no loss, and the egress scheduler
drains all senders evenly (fair completion).

Run:  python examples/incast_absorption.py
"""

from repro.baselines.ethernet import EthConfig
from repro.baselines.push_fabric import PushFabricNetwork
from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.sim.units import KB, MB, MILLISECOND, gbps
from repro.transport.host import make_hosts
from repro.workloads.incast import run_incast

SPEC = OneTierSpec(num_fas=9, uplinks_per_fa=4, hosts_per_fa=1)
ADDRS = [PortAddress(fa, 0) for fa in range(SPEC.num_fas)]
FRONTEND = ADDRS[0]
BACKENDS = ADDRS[1:]
RESPONSE = 200 * KB


def stardust_network():
    cfg = StardustConfig(
        fabric_link_rate_bps=gbps(10),
        host_link_rate_bps=gbps(10),
        ingress_buffer_bytes=32 * MB,  # the deep, distributed buffer
    )
    return StardustNetwork(SPEC, config=cfg)


def push_network():
    cfg = EthConfig(port_buffer_bytes=150_000, ecn_threshold_bytes=None)
    return PushFabricNetwork(
        SPEC,
        config=cfg,
        fabric_link_rate_bps=gbps(10),
        host_link_rate_bps=gbps(10),
    )


def run(label, network, drops_fn):
    hosts, tracker = make_hosts(network, ADDRS)
    result = run_incast(
        network, hosts, tracker, FRONTEND, BACKENDS,
        response_bytes=RESPONSE,
        timeout_ns=500 * MILLISECOND,
        fabric_drops_fn=drops_fn(network),
    )
    spread = result.fairness_spread
    print(f"--- {label} ---")
    print(f"  completed: {result.completed}/{len(BACKENDS)}")
    first = result.first_fct_ns / 1e6 if result.first_fct_ns else None
    last = result.last_fct_ns / 1e6 if result.last_fct_ns else None
    print(f"  first FCT: {first:.2f} ms, last FCT: {last:.2f} ms")
    print(f"  fairness (last/first): {spread:.2f}" if spread else "")
    print(f"  drops inside the network: {result.fabric_drops}")
    return result


def main() -> None:
    star = run(
        "Stardust (pull, scheduled)",
        stardust_network(),
        lambda net: lambda: net.fabric_cell_drops() + net.ingress_drops(),
    )
    push = run(
        "Ethernet push fabric (ECMP, drop-tail)",
        push_network(),
        lambda net: lambda: net.total_drops(),
    )

    assert star.fabric_drops == 0, "Stardust must absorb incast losslessly"
    assert push.fabric_drops > 0, "the pushed fabric should be dropping"
    if star.fairness_spread and push.fairness_spread:
        assert star.fairness_spread < push.fairness_spread
    print("\nStardust absorbed the incast with zero loss and "
          f"{star.fairness_spread:.2f}x first-to-last spread; the pushed "
          f"fabric dropped {push.fabric_drops} packets.")


if __name__ == "__main__":
    main()
