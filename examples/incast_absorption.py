#!/usr/bin/env python3
"""Incast absorption (§5.4): many servers answer one frontend at once.

A pushed Ethernet fabric lets the whole burst converge on the victim
ToR, fills its small buffer and drops; Stardust admits exactly the
egress port's rate into the fabric and parks the rest in the *source*
Fabric Adapters' deep buffers — no loss, and the egress scheduler
drains all senders evenly (fair completion).

Expressed as a declarative ``repro.experiments`` scenario — the same
spec runs from the CLI: ``python -m repro.experiments run incast
--kinds stardust,tcp``.

Run:  python examples/incast_absorption.py
      python examples/incast_absorption.py --backends 6 --response-kb 100
"""

import argparse

from repro.experiments import build_scenario, run_spec
from repro.sim.units import KB, MILLISECOND


def run(label, kind, args):
    spec = build_scenario(
        "incast",
        kind=kind,
        n_backends=args.backends,
        response_bytes=args.response_kb * KB,
        timeout_ns=500 * MILLISECOND,
    )
    result = run_spec(spec)
    metrics = result.metrics
    print(f"--- {label} ---")
    print(f"  completed: {metrics['completed']}/{args.backends}")
    first = metrics["first_fct_ns"]
    last = metrics["last_fct_ns"]
    if first and last:
        print(f"  first FCT: {first / 1e6:.2f} ms, "
              f"last FCT: {last / 1e6:.2f} ms")
    spread = metrics["fairness_spread"]
    if spread:
        print(f"  fairness (last/first): {spread:.2f}")
    print(f"  drops inside the network: {result.drops}")
    return result


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backends", type=int, default=8)
    parser.add_argument("--response-kb", type=int, default=200)
    args = parser.parse_args(argv)

    star = run("Stardust (pull, scheduled)", "stardust", args)
    push = run("Ethernet push fabric (ECMP, drop-tail)", "tcp", args)

    assert star.drops == 0, "Stardust must absorb incast losslessly"
    assert push.drops > 0, "the pushed fabric should be dropping"
    star_spread = star.metrics["fairness_spread"]
    push_spread = push.metrics["fairness_spread"]
    if star_spread and push_spread:
        assert star_spread < push_spread
    print(
        "\nStardust absorbed the incast with zero loss and "
        f"{star_spread:.2f}x first-to-last spread; the pushed "
        f"fabric dropped {push.drops} packets."
    )


if __name__ == "__main__":
    main()
