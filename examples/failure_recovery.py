#!/usr/bin/env python3
"""Self-healing fabric (§5.9): kill a link mid-run and watch traffic heal.

Runs the live reachability protocol (periodic reachability cells, link
health thresholds), fails one Fabric Adapter uplink in both directions
while traffic flows, and shows that:

* the Fabric Adapter stops spraying onto the dead link within a few
  reachability periods (hundreds of microseconds, Appendix E scale);
* traffic keeps flowing over the surviving links, with zero cells lost
  after the reassembly timeout cleans up the in-flight casualties;
* the link is used again after it is restored.

Run:  python examples/failure_recovery.py
"""

from repro.core.config import StardustConfig
from repro.fabrics import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.entity import Entity
from repro.sim.units import MICROSECOND, MILLISECOND, gbps


class CountingHost(Entity):
    def __init__(self, sim, name, address):
        super().__init__(sim, name)
        self.address = address
        self.received = 0

    def receive(self, packet, link):
        self.received += 1

    def send_to(self, dst, size):
        packet = Packet(
            size_bytes=size, src=self.address, dst=dst,
            created_ns=self.sim.now,
        )
        self.ports[0].send(packet, packet.wire_bytes)


def main() -> None:
    spec = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
    config = StardustConfig(
        fabric_link_rate_bps=gbps(25),
        host_link_rate_bps=gbps(25),
        reachability_period_ns=10 * MICROSECOND,
    )
    network = StardustNetwork(spec, config=config, reachability="dynamic")

    hosts = {}
    for fa in range(spec.num_fas):
        addr = PortAddress(fa, 0)
        host = CountingHost(network.sim, f"h{fa}", addr)
        network.attach_host(addr, host)
        hosts[addr] = host

    # Let the reachability protocol converge.
    network.run(500 * MICROSECOND)
    src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
    fa0 = network.fas[0]
    print(f"eligible uplinks toward fa2 before failure: "
          f"{len(fa0.eligible_uplinks(2))}")

    # Steady traffic.
    for _ in range(100):
        src.send_to(dst, 1200)
    network.run(1 * MILLISECOND)
    before = hosts[dst].received
    print(f"delivered before failure: {before}")

    # Kill uplink 0 in both directions.
    dead_up = fa0.uplinks[0]
    dead_up.fail()
    fe = dead_up.dst
    for port in fe.fabric_ports:
        if port.out.dst is fa0:
            port.out.fail()
    fail_time = network.sim.now
    print(f"\n*** failed link {dead_up.name} at t={fail_time / 1000:.0f} us")

    # Wait for detection (miss_threshold x period plus margin).
    network.run(500 * MICROSECOND)
    eligible = fa0.eligible_uplinks(2)
    print(f"eligible uplinks after detection: {len(eligible)} "
          f"(dead link excluded: {dead_up not in eligible})")

    # Traffic continues over surviving links.
    for _ in range(100):
        src.send_to(dst, 1200)
    network.run(2 * MILLISECOND)
    print(f"delivered after failure: {hosts[dst].received - before}/100")

    # Restore the link: reachability cells flow again, and after the
    # up-threshold is met the link rejoins the spray set.
    dead_up.restore()
    for port in fe.fabric_ports:
        if port.out.dst is fa0:
            port.out.restore()
    network.run(500 * MICROSECOND)
    print(f"\n*** restored; eligible uplinks: "
          f"{len(fa0.eligible_uplinks(2))}")

    assert dead_up not in eligible
    assert hosts[dst].received - before == 100
    assert len(fa0.eligible_uplinks(2)) == spec.uplinks_per_fa
    print("OK: the fabric healed itself, no operator involved")


if __name__ == "__main__":
    main()
