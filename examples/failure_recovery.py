#!/usr/bin/env python3
"""Self-healing fabric (§5.9): declare a failure, watch traffic heal.

Failure is an *experiment input* here: a declarative FaultPlan (fail
one Fabric Adapter uplink both ways, repair it later) is compiled into
engine-scheduled events against a live dynamic-reachability Stardust
network, and the injector reports the resilience metrics — protocol
detection time next to the Appendix E analytical recovery time,
throughput dip, frames lost in transit.

Run:  python examples/failure_recovery.py
"""

from repro.core.config import StardustConfig
from repro.fabrics import OneTierSpec, StardustNetwork
from repro.faults import FaultPlan, attach_plan, link_down, link_up
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.entity import Entity
from repro.sim.units import MICROSECOND, MILLISECOND, gbps


class CountingHost(Entity):
    def __init__(self, sim, name, address):
        super().__init__(sim, name)
        self.address = address
        self.received = 0

    def receive(self, packet, link):
        self.received += 1

    def send_to(self, dst, size):
        packet = Packet(
            size_bytes=size, src=self.address, dst=dst,
            created_ns=self.sim.now,
        )
        self.ports[0].send(packet, packet.wire_bytes)


def main() -> None:
    spec = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=1)
    config = StardustConfig(
        fabric_link_rate_bps=gbps(25),
        host_link_rate_bps=gbps(25),
        reachability_period_ns=10 * MICROSECOND,
    )
    network = StardustNetwork(spec, config=config, reachability="dynamic")

    hosts = {}
    for fa in range(spec.num_fas):
        addr = PortAddress(fa, 0)
        host = CountingHost(network.sim, f"h{fa}", addr)
        network.attach_host(addr, host)
        hosts[addr] = host

    # Let the reachability protocol converge before the experiment.
    network.run(500 * MICROSECOND)

    # The failure, declared: uplink 0 of FA 0 dies at t=+1ms (both
    # directions) and is repaired at t=+3ms.  The same plan would run
    # unchanged against the push/ECMP baseline.
    plan = FaultPlan(
        events=[
            link_down(1 * MILLISECOND, edge=0, uplink=0),
            link_up(3 * MILLISECOND, edge=0, uplink=0),
        ],
        sample_period_ns=20 * MICROSECOND,
    )
    attach_plan(plan, network)

    fa0 = network.fas[0]
    print(f"eligible uplinks toward fa2 before failure: "
          f"{len(fa0.eligible_uplinks(2))}")

    # Steady traffic across the failure window: one packet every 40us
    # for 4ms, spanning the outage at [+1ms, +3ms].
    src, dst = hosts[PortAddress(0, 0)], PortAddress(2, 0)
    for burst_at_us in range(0, 4000, 40):
        network.sim.schedule(
            burst_at_us * MICROSECOND,
            lambda: src.send_to(dst, 1200),
        )
    network.run(1_500 * MICROSECOND)  # mid-outage
    eligible = fa0.eligible_uplinks(2)
    dead = fa0.uplinks[0]
    print(f"mid-outage eligible uplinks: {len(eligible)} "
          f"(dead link excluded: {dead not in eligible})")

    network.run(2_500 * MICROSECOND)  # through repair + re-admission
    print(f"after repair: {len(fa0.eligible_uplinks(2))} uplinks eligible")

    resilience = network.collect_metrics().resilience
    print(f"\ndelivered: {hosts[dst].received}/100 packets")
    print(f"faults injected:        {resilience.faults_injected}")
    print(f"frames lost in transit: {resilience.frames_lost_in_transit}")
    print(f"protocol detection:     {resilience.protocol_detect_ns} ns")
    print(f"analytical (App. E):    "
          f"{resilience.analytical_recovery_ns:.0f} ns")

    assert dead not in eligible
    assert hosts[dst].received == 100
    assert len(fa0.eligible_uplinks(2)) == spec.uplinks_per_fa
    assert resilience.protocol_detect_ns is not None
    print("\nOK: the fabric healed itself, no operator involved")


if __name__ == "__main__":
    main()
