#!/usr/bin/env python3
"""Quickstart: build a small Stardust fabric and push traffic through it.

Builds a two-tier fabric (2 pods x 4 Fabric Adapters, 4 tier-1 Fabric
Elements per pod, 4 spines), attaches TCP hosts, runs a few transfers,
and prints what the fabric did: delivery, losslessness, cell spray
balance and latency.

Run:  python examples/quickstart.py
"""

from repro.core.config import StardustConfig
from repro.fabrics import StardustNetwork, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.units import KB, MILLISECOND, gbps
from repro.transport.host import make_hosts


def main() -> None:
    # 1. Describe the fabric.  Every link is an independent 25G serial
    #    lane — Stardust never bundles links.
    spec = TwoTierSpec(
        pods=2, fas_per_pod=4, fes_per_pod=4, spines=4, hosts_per_fa=2
    )
    config = StardustConfig(
        cell_size_bytes=256,
        credit_size_bytes=4 * KB,
        credit_speedup=0.02,
        fabric_link_rate_bps=gbps(25),
        host_link_rate_bps=gbps(25),
    )
    network = StardustNetwork(spec, config=config)

    # 2. Attach one TCP host per Fabric Adapter port.
    addresses = [
        PortAddress(fa, port)
        for fa in range(spec.num_fas)
        for port in range(spec.hosts_per_fa)
    ]
    hosts, tracker = make_hosts(network, addresses)

    # 3. Start a handful of cross-pod transfers.
    flows = []
    for i in range(4):
        src = PortAddress(i, 0)  # pod 0
        dst = PortAddress(spec.num_fas - 1 - i, 1)  # pod 1
        flow = Flow(src=src, dst=dst, size_bytes=500 * KB)
        hosts[src].start_flow(flow)
        flows.append(flow)

    # 4. Run.
    network.run(20 * MILLISECOND)

    # 5. Report.
    print("=== Stardust quickstart ===")
    print(f"fabric: {len(network.fas)} Fabric Adapters, "
          f"{len(network.fes)} Fabric Elements, "
          f"{network.host_count} hosts")
    for flow in flows:
        stats = tracker.get(flow.flow_id)
        fct_ms = stats.fct_ns / 1e6 if stats.fct_ns else float("nan")
        print(f"  flow {flow.src} -> {flow.dst}: "
              f"{stats.bytes_delivered} B in {fct_ms:.2f} ms "
              f"({stats.goodput_bps() / 1e9:.2f} Gbps)")

    # The unified fabric metrics surface (same shape for every fabric).
    metrics = network.collect_metrics()
    print(f"cells sprayed: {sum(fa.cells_sent for fa in network.fas)}")
    print(f"fabric cell drops: {metrics.fabric_drops} (lossless)")
    lat = metrics.cell_latency_ns
    print(f"cell latency: min {lat.minimum() / 1000:.2f} us, "
          f"p99 {lat.pct(99) / 1000:.2f} us")

    # Spray balance: every uplink of a loaded Fabric Adapter carried
    # nearly the same number of cells.
    fa0 = network.fas[0]
    counts = [up.tx_frames for up in fa0.uplinks]
    print(f"fa0 per-uplink cells: min {min(counts)}, max {max(counts)} "
          f"(near-perfect balance)")

    assert metrics.fabric_drops == 0
    assert all(tracker.get(f.flow_id).completed_ns is not None for f in flows)
    print("OK")


if __name__ == "__main__":
    main()
