#!/usr/bin/env python3
"""Permutation throughput: Stardust vs TCP/DCTCP/MPTCP on ECMP (§6.3).

Every host sends one long flow to a distinct host on another rack.
The Ethernet fabric hashes each flow onto one path (collisions strand
capacity); Stardust sprays cells across every path and schedules
egress ports, so each flow gets its full line rate, fairly.

This is a scaled-down Fig 10(a); the benchmark suite runs the fuller
version (benchmarks/test_fig10a_throughput.py).

Run:  python examples/permutation_throughput.py
"""

import random

from repro.baselines.push_fabric import PushFabricNetwork
from repro.core.config import StardustConfig
from repro.core.network import StardustNetwork, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import KB, MILLISECOND, gbps
from repro.transport.dctcp import DctcpSender
from repro.transport.host import make_hosts
from repro.workloads.permutation import host_permutation, start_permutation_flows

SPEC = TwoTierSpec(pods=2, fas_per_pod=3, fes_per_pod=3, spines=3,
                   hosts_per_fa=3)
ADDRS = [
    PortAddress(fa, p)
    for fa in range(SPEC.num_fas)
    for p in range(SPEC.hosts_per_fa)
]
RATE = gbps(10)
WARMUP = 1 * MILLISECOND
WINDOW = 4 * MILLISECOND


def run(label, network, mapping, **flow_kwargs):
    hosts, tracker = make_hosts(network, ADDRS)
    flows = start_permutation_flows(hosts, mapping, mss=9000 - 40,
                                    **flow_kwargs)
    network.run(WARMUP)
    marks = {f.flow_id: tracker.get(f.flow_id).bytes_delivered for f in flows}
    network.run(WINDOW)
    rates = sorted(
        (tracker.get(f.flow_id).bytes_delivered - marks[f.flow_id])
        * 8 / (WINDOW / 1e9) / 1e9
        for f in flows
    )
    mean = sum(rates) / len(rates)
    print(f"{label:24s} mean {mean:5.2f} Gbps ({100 * mean / 10:3.0f}%)  "
          f"min {rates[0]:5.2f}  max {rates[-1]:5.2f}")
    return mean


def main() -> None:
    mapping = host_permutation(ADDRS, random.Random(11))
    print(f"{len(ADDRS)} hosts, one long flow each, 10G links\n")

    cfg = StardustConfig(
        fabric_link_rate_bps=RATE, host_link_rate_bps=RATE,
        cell_size_bytes=512, cell_header_bytes=16,
    )
    star = run("Stardust + TCP", StardustNetwork(SPEC, config=cfg), mapping)

    push = lambda: PushFabricNetwork(
        SPEC, fabric_link_rate_bps=RATE, host_link_rate_bps=RATE
    )
    tcp = run("Ethernet ECMP + TCP", push(), mapping)
    dctcp = run("Ethernet ECMP + DCTCP", push(), mapping,
                sender_cls=DctcpSender)
    mptcp = run("Ethernet ECMP + MPTCP x8", push(), mapping,
                mptcp_subflows=8)

    assert star > max(tcp, dctcp, mptcp), "Stardust should win (Fig 10a)"
    print(f"\nStardust beats the best ECMP transport by "
          f"{star / max(tcp, dctcp, mptcp):.1f}x on mean throughput.")


if __name__ == "__main__":
    main()
