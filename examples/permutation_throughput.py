#!/usr/bin/env python3
"""Permutation throughput: Stardust vs TCP/DCTCP/MPTCP on ECMP (§6.3).

Every host sends one long flow to a distinct host on another rack.
The Ethernet fabric hashes each flow onto one path (collisions strand
capacity); Stardust sprays cells across every path and schedules
egress ports, so each flow gets its full line rate, fairly.

This is a scaled-down Fig 10(a), expressed as a declarative scenario
and executed through ``repro.experiments`` — the same specs run from
the CLI: ``python -m repro.experiments run permutation --kinds
stardust,tcp,dctcp,mptcp``.  The benchmark suite runs the fuller
version (benchmarks/test_fig10a_throughput.py).

Run:  python examples/permutation_throughput.py
      python examples/permutation_throughput.py --hosts-per-fa 2 --window-ms 1
"""

import argparse

from repro.experiments import build_scenario, run_spec
from repro.experiments.spec import TopologySpec
from repro.sim.units import MILLISECOND, gbps

KINDS = [
    ("Stardust + TCP", "stardust"),
    ("Ethernet ECMP + TCP", "tcp"),
    ("Ethernet ECMP + DCTCP", "dctcp"),
    ("Ethernet ECMP + MPTCP x8", "mptcp"),
]


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fas-per-pod", type=int, default=3)
    parser.add_argument("--hosts-per-fa", type=int, default=3)
    parser.add_argument("--warmup-ms", type=float, default=1.0)
    parser.add_argument("--window-ms", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    topology = TopologySpec(
        "two_tier",
        dict(
            pods=2,
            fas_per_pod=args.fas_per_pod,
            fes_per_pod=3,
            spines=3,
            hosts_per_fa=args.hosts_per_fa,
        ),
    )
    n_hosts = len(topology.addresses())
    print(f"{n_hosts} hosts, one long flow each, 10G links\n")

    means = {}
    for label, kind in KINDS:
        spec = build_scenario(
            "permutation",
            kind=kind,
            seed=args.seed,
            topology=topology,
            warmup_ns=int(args.warmup_ms * MILLISECOND),
            measure_ns=int(args.window_ms * MILLISECOND),
            rate_bps=gbps(10),
        )
        result = run_spec(spec)
        rates = result.flow_rates_gbps
        mean = result.mean_rate_gbps
        print(
            f"{label:24s} mean {mean:5.2f} Gbps ({100 * mean / 10:3.0f}%)  "
            f"min {rates[0]:5.2f}  max {rates[-1]:5.2f}"
        )
        means[kind] = mean

    star = means["stardust"]
    best_ecmp = max(means["tcp"], means["dctcp"], means["mptcp"])
    assert star > best_ecmp, "Stardust should win (Fig 10a)"
    print(
        f"\nStardust beats the best ECMP transport by "
        f"{star / best_ecmp:.1f}x on mean throughput."
    )


if __name__ == "__main__":
    main()
