#!/usr/bin/env python3
"""§8's future data center: no packet switches anywhere.

Builds a network whose only devices are Fabric Elements and
Fabric-Adapter-NICs at the hosts, runs traffic across it, and shows
the §8 reductions: host-scale buffers, a reachability table that
shrinks with uplink count (and vanishes for single-homed NICs).

Run:  python examples/nic_edge.py
"""

from repro.core.config import StardustConfig
from repro.core.nic import build_nic_edge_network
from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.units import KB, MILLISECOND
from repro.transport.host import make_hosts


def main() -> None:
    net = build_nic_edge_network(n_nics=8, uplinks_per_nic=4)
    addrs = [PortAddress(i, 0) for i in range(8)]
    hosts, tracker = make_hosts(net, addrs)

    print("=== §8: the NIC-edge data center ===")
    nic = net.fas[0]
    tor_cfg = StardustConfig()
    print(f"devices: {len(net.fas)} NICs + {len(net.fes)} Fabric Elements "
          "(zero packet switches)")
    print(f"NIC ingress buffer: {nic.config.ingress_buffer_bytes // 2**20} MB "
          f"(ToR-class FA: {tor_cfg.ingress_buffer_bytes // 2**20} MB)")
    print(f"NIC reachability entries: {nic.reachability_entries()} "
          f"(single-homed NICs need none)")

    flows = []
    for i in range(8):
        flow = Flow(
            src=addrs[i], dst=addrs[(i + 3) % 8], size_bytes=200 * KB
        )
        hosts[addrs[i]].start_flow(flow)
        flows.append(flow)
    net.run(30 * MILLISECOND)

    done = sum(
        1 for f in flows if tracker.get(f.flow_id).completed_ns is not None
    )
    print(f"\ntransfers completed: {done}/8; "
          f"fabric cell drops: {net.fabric_cell_drops()}")
    assert done == 8
    assert net.fabric_cell_drops() == 0
    print("OK: the all-cell-switch network behaves exactly like the "
          "ToR-based one — which is §8's entire argument")


if __name__ == "__main__":
    main()
