#!/usr/bin/env python3
"""Data-center planning with the Appendix A math (Figs 2 and 11).

Given a target host count, compare link-bundling options for the same
12.8 Tbps switch silicon: how many tiers, devices, serial links, what
power — and the Table 3-based cost picture at 25G-lane generation.

Run:  python examples/scalability_planner.py [hosts]
"""

import sys

from repro.analysis.cost import (
    FT_50G,
    FT_100G,
    STARDUST_25G,
    network_cost_usd,
)
from repro.analysis.power import network_power_relative
from repro.sim.units import GBPS
from repro.topology.scaling import (
    SwitchModel,
    fig2_network_devices,
    fig2_network_links,
    max_hosts,
    min_tiers_for_hosts,
)

SWITCHES = [
    ("Stardust 256x50G (L=1)", SwitchModel(12_800 * GBPS, bundle=1), 1, True),
    ("FT 128x100G (L=2)", SwitchModel(12_800 * GBPS, bundle=2), 2, False),
    ("FT 64x200G  (L=4)", SwitchModel(12_800 * GBPS, bundle=4), 4, False),
    ("FT 32x400G  (L=8)", SwitchModel(12_800 * GBPS, bundle=8), 8, False),
]


def main() -> None:
    hosts = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    print(f"=== planning a {hosts:,}-host data center ===\n")

    print(f"{'option':28s} {'tiers':>5s} {'devices':>9s} "
          f"{'links':>10s} {'power':>7s}")
    for name, switch, bundle, is_stardust in SWITCHES:
        tiers = min_tiers_for_hosts(switch.radix, hosts, 40)
        if tiers is None:
            print(f"{name:28s} {'--- cannot reach this scale ---':>40s}")
            continue
        devices = fig2_network_devices(switch, hosts)
        links = fig2_network_links(switch, hosts)
        power = network_power_relative(bundle, hosts, is_stardust=is_stardust)
        print(f"{name:28s} {tiers:5d} {devices:9,d} {links:10,d} "
              f"{power:7,.0f}")

    print("\nmax hosts by tier count (40 hosts per ToR):")
    for name, switch, _, _ in SWITCHES:
        sizes = [max_hosts(switch.radix, n, 40) for n in range(1, 5)]
        print(f"  {name:28s} " + "  ".join(f"{s:>13,d}" for s in sizes))

    print("\ncost at the 25G-lane generation (6.4T switches, Table 3):")
    for option in (STARDUST_25G, FT_50G, FT_100G):
        cost = network_cost_usd(option, hosts)
        if cost is None:
            print(f"  {option.name:34s} cannot reach this scale")
        else:
            print(f"  {option.name:34s} ${cost:13,.0f}")

    star = network_cost_usd(STARDUST_25G, hosts)
    worst = max(
        c
        for c in (
            network_cost_usd(FT_50G, hosts),
            network_cost_usd(FT_100G, hosts),
        )
        if c is not None
    )
    print(f"\nStardust saves {100 * (1 - star / worst):.0f}% vs the most "
          "expensive fat-tree option at this scale.")


if __name__ == "__main__":
    main()
