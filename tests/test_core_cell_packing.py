"""Unit tests for cells and packet packing."""

import pytest

from repro.core.cell import Cell, CellFragment, CellKind, VoqId
from repro.core.packing import burst_wire_bytes, cells_for_bytes, pack_burst
from repro.net.addressing import PortAddress
from repro.net.packet import Packet

DST = PortAddress(fa=7, port=2)
SRC = PortAddress(fa=0, port=0)
VOQ = VoqId(dst=DST)


def mk_packets(*sizes):
    return [Packet(size_bytes=s, src=SRC, dst=DST) for s in sizes]


def pack(packets, payload=240, packing=True, first_seq=0):
    return pack_burst(
        packets,
        payload_bytes=payload,
        header_bytes=16,
        dst_fa=DST.fa,
        src_fa=SRC.fa,
        voq=VOQ,
        first_seq=first_seq,
        packing=packing,
    )


class TestCell:
    def test_data_cell_sizes(self):
        pkt = mk_packets(100)[0]
        cell = Cell(
            kind=CellKind.DATA,
            dst_fa=1,
            src_fa=0,
            header_bytes=16,
            voq=VOQ,
            fragments=(CellFragment(pkt, 100, True),),
        )
        assert cell.payload_bytes == 100
        assert cell.size_bytes == 116

    def test_data_cell_requires_voq(self):
        with pytest.raises(ValueError):
            Cell(kind=CellKind.DATA, dst_fa=1, src_fa=0, header_bytes=16)

    def test_fragment_validation(self):
        pkt = mk_packets(50)[0]
        with pytest.raises(ValueError):
            CellFragment(pkt, 0, True)
        with pytest.raises(ValueError):
            CellFragment(pkt, 51, True)

    def test_voq_id_str_and_priority(self):
        v = VoqId(dst=DST, priority=2)
        assert "tc2" in str(v)
        with pytest.raises(ValueError):
            VoqId(dst=DST, priority=-1)


class TestPackedMode:
    def test_single_small_packet_fits_one_cell(self):
        cells = pack(mk_packets(100))
        assert len(cells) == 1
        assert cells[0].payload_bytes == 100
        assert cells[0].fragments[0].end_of_packet

    def test_large_packet_spans_cells(self):
        cells = pack(mk_packets(1000), payload=240)
        assert len(cells) == 5  # ceil(1000/240)
        assert [c.payload_bytes for c in cells] == [240, 240, 240, 240, 40]
        assert not cells[0].fragments[0].end_of_packet
        assert cells[-1].fragments[-1].end_of_packet

    def test_packing_merges_packets_into_one_cell(self):
        cells = pack(mk_packets(100, 100), payload=240)
        assert len(cells) == 1
        assert len(cells[0].fragments) == 2
        assert all(f.end_of_packet for f in cells[0].fragments)

    def test_packet_straddles_cell_boundary(self):
        # 200 + 200: second packet split 40/160 across cells.
        cells = pack(mk_packets(200, 200), payload=240)
        assert len(cells) == 2
        assert cells[0].payload_bytes == 240
        assert cells[1].payload_bytes == 160
        frags0 = cells[0].fragments
        assert frags0[0].nbytes == 200 and frags0[0].end_of_packet
        assert frags0[1].nbytes == 40 and not frags0[1].end_of_packet

    def test_only_last_cell_of_burst_is_short(self):
        cells = pack(mk_packets(300, 301, 299, 555), payload=240)
        for cell in cells[:-1]:
            assert cell.payload_bytes == 240
        assert cells[-1].payload_bytes <= 240

    def test_sequence_numbers_consecutive_from_first_seq(self):
        cells = pack(mk_packets(1000), first_seq=42)
        assert [c.seq for c in cells] == [42, 43, 44, 45, 46]

    def test_total_payload_conserved(self):
        sizes = [64, 1500, 257, 90, 4096]
        cells = pack(mk_packets(*sizes))
        assert sum(c.payload_bytes for c in cells) == sum(sizes)

    def test_empty_burst(self):
        assert pack([]) == []


class TestUnpackedMode:
    def test_each_packet_chopped_independently(self):
        cells = pack(mk_packets(100, 100), payload=240, packing=False)
        assert len(cells) == 2
        assert all(len(c.fragments) == 1 for c in cells)

    def test_one_byte_overflow_wastes_a_cell(self):
        # The paper's §3.4 waste argument: 241B into 240B cells = 2 cells.
        cells = pack(mk_packets(241), payload=240, packing=False)
        assert len(cells) == 2
        assert cells[1].payload_bytes == 1

    def test_unpacked_never_mixes_packets(self):
        cells = pack(mk_packets(100, 300, 50), payload=240, packing=False)
        for cell in cells:
            pkts = {f.packet.pkt_id for f in cell.fragments}
            assert len(pkts) == 1

    def test_unpacked_uses_at_least_as_many_cells(self):
        sizes = [64, 100, 241, 999, 1500]
        packed = pack(mk_packets(*sizes), packing=True)
        unpacked = pack(mk_packets(*sizes), packing=False)
        assert len(unpacked) >= len(packed)


class TestHelpers:
    def test_cells_for_bytes(self):
        assert cells_for_bytes(0, 240) == 0
        assert cells_for_bytes(1, 240) == 1
        assert cells_for_bytes(240, 240) == 1
        assert cells_for_bytes(241, 240) == 2

    def test_burst_wire_bytes_packed_vs_unpacked(self):
        pkts = mk_packets(241, 241)
        packed = burst_wire_bytes(
            pkts, payload_bytes=240, header_bytes=16, packing=True
        )
        unpacked = burst_wire_bytes(
            pkts, payload_bytes=240, header_bytes=16, packing=False
        )
        # Packed: 482 payload in 3 cells; unpacked: 4 cells.
        assert packed == 482 + 3 * 16
        assert unpacked == 482 + 4 * 16

    def test_invalid_payload_raises(self):
        with pytest.raises(ValueError):
            cells_for_bytes(10, 0)
        with pytest.raises(ValueError):
            pack(mk_packets(10), payload=0)
