"""Tests for the analytical models: queueing, cost, power, area,
resilience, memory."""

import pytest

from repro.analysis.area import (
    FABRIC_ELEMENT_RATIOS,
    fabric_adapter_overhead_fraction,
    fe_table_bits,
    table_ratio,
    tor_table_bits,
    voq_memory_bytes,
)
from repro.analysis.cost import (
    FT_50G,
    FT_100G,
    STARDUST_25G,
    network_cost_usd,
    relative_cost_series,
)
from repro.analysis.mdq import (
    md1_mean_queue,
    md1_queue_distribution,
    md1_tail_probability,
    speedup_tail_bound,
)
from repro.analysis.memory import (
    egress_inflight_bytes,
    fe_buffer_bytes,
    fe_max_latency_ns,
    min_credit_size_bytes,
)
from repro.analysis.power import (
    network_power_relative,
    power_saving_fraction,
    relative_power_series,
)
from repro.analysis.resilience import (
    ReachabilityParams,
    messages_per_table,
    reachability_overhead_fraction,
    recovery_time_ns,
)


class TestMD1:
    def test_distribution_normalized(self):
        for rho in (0.1, 0.5, 0.66, 0.8, 0.92, 0.95):
            dist = md1_queue_distribution(rho, 300)
            assert sum(dist) == pytest.approx(1.0, abs=1e-9)

    def test_p0_is_one_minus_rho(self):
        dist = md1_queue_distribution(0.8, 100)
        assert dist[0] == pytest.approx(0.2, abs=1e-3)

    def test_tail_grows_with_utilization(self):
        tails = [md1_tail_probability(rho, 20) for rho in (0.66, 0.8, 0.92)]
        assert tails == sorted(tails)

    def test_tail_decays_exponentially_in_n(self):
        # log-linear decay: ratio of successive tails roughly constant.
        import math

        tails = [md1_tail_probability(0.8, n) for n in (10, 20, 30)]
        r1 = math.log(tails[0] / tails[1])
        r2 = math.log(tails[1] / tails[2])
        assert r1 == pytest.approx(r2, rel=0.15)

    def test_zero_load_is_empty_queue(self):
        dist = md1_queue_distribution(0.0, 10)
        assert dist[0] == 1.0

    def test_mean_queue_formula(self):
        assert md1_mean_queue(0.5) == pytest.approx(0.75)

    def test_unstable_utilization_rejected(self):
        with pytest.raises(ValueError):
            md1_queue_distribution(1.0)
        with pytest.raises(ValueError):
            md1_mean_queue(1.2)

    def test_speedup_bound_tracks_exact_tail(self):
        # §4.2.1's fs^-2N shorthand approximates the true M/D/1 tail:
        # same exponential decay, within a small constant factor.
        import math

        fs = 1.25
        rho = 1 / fs
        for n in (10, 20, 40):
            exact = md1_tail_probability(rho, n)
            bound = speedup_tail_bound(fs, n)
            assert abs(math.log10(exact) - math.log10(bound)) < 0.75

    def test_bound_requires_speedup(self):
        with pytest.raises(ValueError):
            speedup_tail_bound(1.0, 5)


class TestArea:
    def test_fig10d_ratios_present(self):
        assert FABRIC_ELEMENT_RATIOS["area_per_tbps"] == pytest.approx(0.666)
        assert FABRIC_ELEMENT_RATIOS["power_per_tbps"] == pytest.approx(0.648)
        assert FABRIC_ELEMENT_RATIOS["io"] == pytest.approx(0.875)

    def test_table_sizes(self):
        # N=100K hosts, k=256: ToR needs N x (32+8) bits.
        assert tor_table_bits(100_000, 256) == 100_000 * 40
        assert fe_table_bits(100_000, 256) == 2500 * 8

    def test_two_orders_of_magnitude(self):
        # §4.2: FE table "two orders of magnitude smaller".
        assert table_ratio(100_000, 256) >= 100

    def test_fabric_adapter_area_roughly_neutral(self):
        # Appendix C: +8% Stardust logic vs -70% of the interface area.
        delta = fabric_adapter_overhead_fraction()
        assert abs(delta) < 0.15

    def test_voq_memory(self):
        assert voq_memory_bytes(128 * 1024) == 4 * 1024 * 1024
        assert voq_memory_bytes(64 * 1024) == 2 * 1024 * 1024


class TestCost:
    def test_stardust_always_cheapest(self):
        # §7: "Stardust is always the most cost effective solution."
        for hosts in (1_000, 10_000, 100_000, 1_000_000):
            series = {
                opt.name: network_cost_usd(opt, hosts)
                for opt in (STARDUST_25G, FT_50G, FT_100G)
            }
            valid = {k: v for k, v in series.items() if v is not None}
            assert min(valid, key=valid.get) == STARDUST_25G.name

    def test_relative_series_normalized(self):
        series = relative_cost_series([10_000, 100_000])
        for values in series.values():
            for v in values:
                assert v is None or 0 < v <= 100

    def test_costs_scale_with_hosts(self):
        small = network_cost_usd(STARDUST_25G, 1_000)
        big = network_cost_usd(STARDUST_25G, 100_000)
        assert big > 50 * small

    def test_invalid_hosts(self):
        with pytest.raises(ValueError):
            network_cost_usd(STARDUST_25G, 0)


class TestPower:
    def test_fabric_saving_close_to_78pct(self):
        # §7: "78% saving within the network fabric" at ~10K nodes.
        saving = power_saving_fraction(10_000, fabric_only=True)
        assert saving == pytest.approx(0.78, abs=0.05)

    def test_network_saving_substantial_at_10k(self):
        saving = power_saving_fraction(10_000)
        assert 0.15 <= saving <= 0.45  # paper: "up to 25%"

    def test_stardust_uses_least_power(self):
        for hosts in (10_000, 200_000, 1_000_000):
            series = relative_power_series([hosts])
            column = {b: v[0] for b, v in series.items() if v[0] is not None}
            assert min(column, key=column.get) == 1

    def test_power_grows_with_bundle(self):
        series = relative_power_series([500_000])
        values = [
            series[b][0] for b in (1, 2, 4, 8) if series[b][0] is not None
        ]
        assert values == sorted(values)

    def test_unreachable_scale_returns_none(self):
        assert network_power_relative(8, 10**14) is None


class TestResilience:
    def test_worked_example_652us(self):
        params = ReachabilityParams()
        assert recovery_time_ns(params) == pytest.approx(652_050, rel=1e-3)

    def test_messages_per_table(self):
        assert messages_per_table(ReachabilityParams()) == 7

    def test_overhead_is_0_04_pct(self):
        overhead = reachability_overhead_fraction(ReachabilityParams())
        assert overhead == pytest.approx(0.000384, rel=1e-6)

    def test_recovery_scales_with_confirmations(self):
        p1 = ReachabilityParams(confirm_threshold=1)
        p3 = ReachabilityParams(confirm_threshold=3)
        assert recovery_time_ns(p3) == pytest.approx(
            3 * recovery_time_ns(p1)
        )

    def test_propagation_list_must_match_tiers(self):
        with pytest.raises(ValueError):
            ReachabilityParams(tiers=3)  # needs 5 hop delays


class TestMemory:
    def test_sec62_extrapolation_8mb(self):
        assert fe_buffer_bytes(256, 128, 256) == 8 * 1024 * 1024

    def test_sec62_latency_bound_5us(self):
        lat = fe_max_latency_ns(128, 256, 50 * 10**9)
        assert 5_000 <= lat <= 5_500  # "at most 5us" scale

    def test_min_credit_worked_example(self):
        # 10 Tbps FA, credit every 2 clocks at 1 GHz: exact value 2500B
        # (the paper's prose rounds the same story to 2000B).
        assert min_credit_size_bytes(10 * 10**12) == 2500

    def test_egress_inflight(self):
        # 10 sources x 4KB credits plus one loop of 50G x 10us.
        bytes_needed = egress_inflight_bytes(4096, 10, 10_000, 50 * 10**9)
        assert bytes_needed == 10 * 4096 + 62_500

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            fe_buffer_bytes(0)
        with pytest.raises(ValueError):
            min_credit_size_bytes(0)
