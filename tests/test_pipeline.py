"""Tests for the Appendix B math and the Fig 8 NetFPGA model."""

import pytest

from repro.pipeline.parallelism import (
    packet_rate_pps,
    required_parallelism,
    standard_parallelism,
    stardust_parallelism,
)
from repro.pipeline.switch_model import (
    NetFpgaModel,
    SwitchDesign,
    trace_throughput,
)
from repro.workloads.distributions import PACKET_SIZE_MIXES

B128 = 12_800_000_000_000  # 12.8 Tbps


class TestAppendixB:
    def test_worked_example_64B(self):
        # Appendix B: 12.8T, 64B, G=20B, f=1GHz, c=1 -> P = 19.047.
        assert required_parallelism(B128, 64, 10**9) == pytest.approx(
            19.047, abs=0.01
        )

    def test_worked_example_256B(self):
        assert required_parallelism(B128, 256, 10**9) == pytest.approx(
            5.797, abs=0.01
        )

    def test_packet_rate_1500B(self):
        # More than one packet per clock even at 1500B (§2.3).
        assert packet_rate_pps(B128, 1500) > 1e9

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            packet_rate_pps(B128, 0)
        with pytest.raises(ValueError):
            required_parallelism(B128, 64, 0)


class TestFig3:
    def test_stardust_flat_in_packet_size(self):
        values = {stardust_parallelism(B128, s) for s in (64, 513, 1500, 2500)}
        assert len(values) == 1
        assert values.pop() == pytest.approx(6.25)

    def test_standard_never_meaningfully_below_stardust(self):
        # Just under a bus multiple, the wire's inter-packet gap gives
        # the standard switch a few percent of headroom; everywhere
        # else it needs at least as many pipelines as Stardust.
        for size in range(64, 2501, 7):
            assert standard_parallelism(B128, size) > stardust_parallelism(
                B128
            ) * 0.93

    def test_standard_worst_case_far_above_stardust(self):
        worst = max(
            standard_parallelism(B128, s) for s in range(64, 2501)
        )
        assert worst > 3 * stardust_parallelism(B128)

    def test_small_packet_factor_about_4x(self):
        # §2.3: "For small packets ... outperforms ... by a factor of x4"
        ratio = standard_parallelism(B128, 64) / stardust_parallelism(B128)
        assert 2.8 <= ratio <= 4.2

    def test_513B_gain_about_41pct(self):
        gain = standard_parallelism(B128, 513) / stardust_parallelism(B128) - 1
        assert 0.3 <= gain <= 0.55  # paper: 41%

    def test_1025B_gain_about_18pct(self):
        gain = (
            standard_parallelism(B128, 1025) / stardust_parallelism(B128) - 1
        )
        assert 0.1 <= gain <= 0.3  # paper: 18%

    def test_sawtooth_at_bus_boundaries(self):
        # One byte past a bus multiple costs a whole extra slot.
        below = standard_parallelism(B128, 512)
        above = standard_parallelism(B128, 513)
        assert above > below


class TestNetFpgaModel:
    def setup_method(self):
        self.model = NetFpgaModel()

    def test_stardust_flat_and_highest(self):
        sizes = list(range(64, 1519, 13))
        star = [
            self.model.throughput(SwitchDesign.STARDUST_PACKED, s)
            for s in sizes
        ]
        assert len({p.goodput_bps for p in star}) == 1
        for design in (
            SwitchDesign.REFERENCE,
            SwitchDesign.NDP,
            SwitchDesign.CELLS_UNPACKED,
        ):
            for s, sp in zip(sizes, star):
                other = self.model.throughput(design, s)
                assert other.goodput_bps <= sp.goodput_bps + 1e-6

    def test_reference_loses_at_small_sizes(self):
        small = self.model.throughput(SwitchDesign.REFERENCE, 64)
        large = self.model.throughput(SwitchDesign.REFERENCE, 1500)
        assert small.goodput_bps < large.goodput_bps

    def test_ndp_worse_than_reference(self):
        for s in (64, 65, 97, 129, 512, 1500):
            ndp = self.model.throughput(SwitchDesign.NDP, s)
            ref = self.model.throughput(SwitchDesign.REFERENCE, s)
            assert ndp.goodput_bps <= ref.goodput_bps

    def test_ndp_fails_line_rate_at_known_sizes(self):
        # §6.1.1: NDP misses line rate at 65B, 97B, 129B.
        for s in (65, 97, 129):
            point = self.model.throughput(SwitchDesign.NDP, s)
            assert point.line_rate_fraction < 0.95

    def test_unpacked_cells_waste_on_boundary_plus_one(self):
        # 65B into 64B cells: two cells, half the second wasted.
        at_64 = self.model.throughput(SwitchDesign.CELLS_UNPACKED, 64)
        at_65 = self.model.throughput(SwitchDesign.CELLS_UNPACKED, 65)
        assert at_65.goodput_bps < at_64.goodput_bps

    def test_reference_full_line_rate_at_180mhz(self):
        # §6.1.1: the Reference Switch reaches line rate for all sizes
        # only at 180 MHz.
        fast = NetFpgaModel(clock_hz=200_000_000)
        for s in range(64, 1519, 31):
            point = fast.throughput(SwitchDesign.REFERENCE, s)
            assert point.line_rate_fraction > 0.99

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            self.model.throughput(SwitchDesign.REFERENCE, 0)


class TestFig8b:
    def test_stardust_wins_every_trace(self):
        model = NetFpgaModel()
        for mix in PACKET_SIZE_MIXES.values():
            scores = {
                d: trace_throughput(model, d, mix) for d in SwitchDesign
            }
            best = scores.pop(SwitchDesign.STARDUST_PACKED)
            assert best == pytest.approx(100.0, abs=0.5)
            assert all(v < best for v in scores.values())

    def test_ndp_is_worst(self):
        # §6.1.1: "NDP is omitted as it performs worse than the
        # standard switch".
        model = NetFpgaModel()
        for mix in PACKET_SIZE_MIXES.values():
            assert trace_throughput(
                model, SwitchDesign.NDP, mix
            ) < trace_throughput(model, SwitchDesign.REFERENCE, mix)
