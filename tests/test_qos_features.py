"""Tests for QoS features: low-latency VOQs, host flow control, WRR."""

import pytest

from repro.core.cell import VoqId
from repro.core.config import StardustConfig
from repro.core.credit import EgressScheduler
from repro.core.network import OneTierSpec
from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.engine import Simulator
from repro.sim.units import KB, MICROSECOND, MILLISECOND, gbps
from repro.transport.host import make_hosts

from tests.conftest import build_network

SPEC = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=2)


class TestLowLatencyVoqs:
    def test_ll_packet_skips_credit_round_trip(self):
        cfg = StardustConfig(
            traffic_classes=2, low_latency_classes=(0,),
        )
        net, hosts = build_network(SPEC, config=cfg)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        src.send_to(dst, 500, priority=0)
        # Deliverable well before a credit loop could complete: run
        # only a few microseconds.
        net.run(8 * MICROSECOND)
        assert len(hosts[dst].received) == 1
        assert net.fas[0].low_latency_cells >= 1

    def test_normal_class_still_uses_credits(self):
        cfg = StardustConfig(
            traffic_classes=2, low_latency_classes=(0,),
        )
        net, hosts = build_network(SPEC, config=cfg)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        src.send_to(dst, 500, priority=1)  # credited class
        net.run(2 * MILLISECOND)
        assert len(hosts[dst].received) == 1
        sched = net.fas[2].egress_ports[0].scheduler
        assert sched.credits_granted >= 1

    def test_ll_latency_beats_credited_latency(self):
        results = {}
        for ll in (True, False):
            cfg = StardustConfig(
                traffic_classes=2,
                low_latency_classes=(0,) if ll else (),
            )
            net, hosts = build_network(SPEC, config=cfg)
            src = hosts[PortAddress(0, 0)]
            src.send_to(PortAddress(2, 0), 500, priority=0)
            net.run(2 * MILLISECOND)
            results[ll] = net.fas[2].packet_latency.minimum()
        assert results[True] < results[False]

    def test_invalid_ll_class_rejected(self):
        with pytest.raises(ValueError):
            StardustConfig(traffic_classes=1, low_latency_classes=(3,))


class TestHostFlowControl:
    def test_pause_asserted_when_pool_fills(self):
        cfg = StardustConfig(
            ingress_buffer_bytes=30 * KB,
            host_pause_threshold=0.8,
            host_resume_threshold=0.4,
            fabric_link_rate_bps=gbps(10),
            host_link_rate_bps=gbps(10),
        )
        net, hosts = build_network(
            OneTierSpec(num_fas=3, uplinks_per_fa=2, hosts_per_fa=2),
            config=cfg,
        )
        # Two sources overload one destination port: pool fills.
        dst = PortAddress(2, 0)
        for fa in (0, 1):
            for p in range(2):
                for _ in range(100):
                    hosts[PortAddress(fa, p)].send_to(dst, 1400)
        net.run(1 * MILLISECOND)
        paused_fas = [fa for fa in net.fas if fa.pause_frames_sent]
        assert paused_fas, "no Fabric Adapter ever paused its hosts"

    def test_pause_then_resume_cycle(self):
        cfg = StardustConfig(
            ingress_buffer_bytes=40 * KB,
            host_pause_threshold=0.8,
            host_resume_threshold=0.3,
        )
        net, hosts = build_network(SPEC, config=cfg)
        src_fa = net.fas[0]
        # Both of fa0's hosts blast one destination port: the port's
        # credit rate caps the drain, so fa0's shared pool fills.
        for p in range(2):
            for _ in range(60):
                hosts[PortAddress(0, p)].send_to(PortAddress(2, 0), 1000)
        net.run(50 * MICROSECOND)
        # Pool filled -> paused at some point.
        was_paused = src_fa.hosts_paused or src_fa.pause_frames_sent > 0
        net.run(5 * MILLISECOND)
        # Everything drained: resumed.
        assert was_paused
        assert not src_fa.hosts_paused
        # These blast hosts ignore PAUSE (their packets are pre-queued
        # on the wire), so overflow drops at the ingress — but every
        # admitted packet is delivered.
        delivered = len(hosts[PortAddress(2, 0)].received)
        assert delivered + net.ingress_drops() == 120
        assert delivered >= 60

    def test_tcp_host_honours_pause_losslessly(self):
        # Pause early enough that the post-PAUSE in-flight data (NIC
        # queues + wires) fits in the remaining pool headroom.
        cfg = StardustConfig(
            ingress_buffer_bytes=240 * KB,
            host_pause_threshold=0.5,
            host_resume_threshold=0.25,
            fabric_link_rate_bps=gbps(10),
            host_link_rate_bps=gbps(10),
        )
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=2, hosts_per_fa=2)
        from repro.core.network import StardustNetwork

        net = StardustNetwork(spec, config=cfg)
        addrs = [PortAddress(f, p) for f in range(3) for p in range(2)]
        hosts, tracker = make_hosts(net, addrs)
        # 2:1 oversubscription of one port with a tiny ingress pool:
        # without PAUSE this drops; with it, TCP is throttled instead.
        flows = []
        for i in range(2):
            flow = Flow(
                src=PortAddress(i, 0), dst=PortAddress(2, 0),
                size_bytes=300 * KB,
            )
            hosts[flow.src].start_flow(flow)
            flows.append(flow)
        net.run(100 * MILLISECOND)
        for flow in flows:
            assert tracker.get(flow.flow_id).completed_ns is not None
        assert net.ingress_drops() == 0  # flow control, not loss

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            StardustConfig(
                host_pause_threshold=0.3, host_resume_threshold=0.5
            )


class TestWeightedRoundRobin:
    def make(self, weights, classes=2):
        sim = Simulator()
        cfg = StardustConfig(
            traffic_classes=classes,
            strict_priority=False,
            class_weights=weights,
        )
        grants = []
        sched = EgressScheduler(
            sim, cfg, gbps(50),
            lambda fa, voq, nb: grants.append(voq.priority),
        )
        return sim, sched, grants

    def test_weights_respected(self):
        sim, sched, grants = self.make((3, 1))
        dst = PortAddress(1, 0)
        sched.request(0, VoqId(dst=dst, priority=0))
        sched.request(0, VoqId(dst=dst, priority=1))
        sim.run(until=2 * MILLISECOND)
        share0 = grants.count(0) / len(grants)
        assert share0 == pytest.approx(0.75, abs=0.05)

    def test_equal_weights_split_evenly(self):
        sim, sched, grants = self.make(())
        dst = PortAddress(1, 0)
        sched.request(0, VoqId(dst=dst, priority=0))
        sched.request(0, VoqId(dst=dst, priority=1))
        sim.run(until=2 * MILLISECOND)
        share0 = grants.count(0) / len(grants)
        assert share0 == pytest.approx(0.5, abs=0.05)

    def test_idle_class_yields_bandwidth(self):
        sim, sched, grants = self.make((3, 1))
        dst = PortAddress(1, 0)
        sched.request(0, VoqId(dst=dst, priority=1))  # only low class
        sim.run(until=1 * MILLISECOND)
        assert grants and all(p == 1 for p in grants)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            StardustConfig(class_weights=(0, 1))
