"""Tests for TCP NewReno, DCTCP, DCQCN and MPTCP host models."""

import pytest

from repro.baselines.ethernet import EthConfig
from repro.baselines.push_fabric import PushFabricNetwork
from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.net.flow import Flow
from repro.sim.units import KB, MILLISECOND, gbps
from repro.transport.dcqcn import DcqcnNotificationPoint, DcqcnSender
from repro.transport.dctcp import DctcpSender
from repro.transport.host import make_hosts
from repro.transport.mptcp import MptcpConnection

SPEC = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=2)
ADDRS = [PortAddress(f, p) for f in range(4) for p in range(2)]


def stardust():
    return StardustNetwork(SPEC, config=StardustConfig())


def push(**cfg):
    return PushFabricNetwork(SPEC, config=EthConfig(**cfg))


class TestTcpBasics:
    @pytest.mark.parametrize("make_net", [stardust, push])
    def test_transfer_completes(self, make_net):
        net = make_net()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=200 * KB)
        hosts[ADDRS[0]].start_flow(flow)
        net.run(50 * MILLISECOND)
        stats = tracker.get(flow.flow_id)
        assert stats.completed_ns is not None
        assert stats.bytes_delivered >= 200 * KB

    def test_short_flow_fast(self):
        net = stardust()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=10 * KB)
        hosts[ADDRS[0]].start_flow(flow)
        net.run(5 * MILLISECOND)
        fct = tracker.get(flow.flow_id).fct_ns
        assert fct is not None
        assert fct < 1 * MILLISECOND

    def test_bidirectional_transfers(self):
        net = stardust()
        hosts, tracker = make_hosts(net, ADDRS)
        f1 = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=100 * KB)
        f2 = Flow(src=ADDRS[5], dst=ADDRS[0], size_bytes=100 * KB)
        hosts[ADDRS[0]].start_flow(f1)
        hosts[ADDRS[5]].start_flow(f2)
        net.run(50 * MILLISECOND)
        assert tracker.get(f1.flow_id).completed_ns is not None
        assert tracker.get(f2.flow_id).completed_ns is not None

    def test_loss_recovery_on_push_fabric(self):
        # Tiny buffers force drops; the transfer must still complete.
        net = push(port_buffer_bytes=5_000, ecn_threshold_bytes=None)
        hosts, tracker = make_hosts(net, ADDRS)
        flows = []
        for i in range(3):
            flow = Flow(
                src=PortAddress(i, 0), dst=PortAddress(3, 0),
                size_bytes=50 * KB,
            )
            hosts[flow.src].start_flow(flow)
            flows.append(flow)
        net.run(200 * MILLISECOND)
        assert net.total_drops() > 0
        for flow in flows:
            assert tracker.get(flow.flow_id).completed_ns is not None

    def test_sender_respects_nic_backpressure(self):
        net = stardust()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=None)
        sender = hosts[ADDRS[0]].start_flow(flow)
        net.run(5 * MILLISECOND)
        host = hosts[ADDRS[0]]
        # NIC queue stays at/under the backpressure threshold plus one
        # in-flight MSS worth of slack.
        assert host.ports[0].peak_queue_bytes <= (
            host.tx_backpressure_bytes + 2 * 1500 + 100
        )
        assert host.nic_drops == 0

    def test_rtt_estimation_runs(self):
        net = stardust()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=100 * KB)
        sender = hosts[ADDRS[0]].start_flow(flow)
        net.run(20 * MILLISECOND)
        assert sender.srtt_ns is not None
        assert 0 < sender.srtt_ns < 5 * MILLISECOND


class TestDctcp:
    def test_transfer_completes_with_ecn(self):
        net = push(port_buffer_bytes=100_000, ecn_threshold_bytes=15_000)
        hosts, tracker = make_hosts(net, ADDRS)
        flows = []
        for i in range(3):
            flow = Flow(
                src=PortAddress(i, 0), dst=PortAddress(3, 0),
                size_bytes=100 * KB,
            )
            hosts[flow.src].start_flow(flow, sender_cls=DctcpSender)
            flows.append(flow)
        net.run(100 * MILLISECOND)
        for flow in flows:
            assert tracker.get(flow.flow_id).completed_ns is not None

    def test_alpha_rises_under_congestion(self):
        net = push(port_buffer_bytes=60_000, ecn_threshold_bytes=10_000)
        hosts, tracker = make_hosts(net, ADDRS)
        senders = []
        for i in range(3):
            flow = Flow(
                src=PortAddress(i, 0), dst=PortAddress(3, 0),
                size_bytes=None,
            )
            senders.append(
                hosts[flow.src].start_flow(flow, sender_cls=DctcpSender)
            )
        net.run(20 * MILLISECOND)
        assert any(s.alpha > 0 for s in senders)

    def test_alpha_stays_zero_without_congestion(self):
        net = push(port_buffer_bytes=10**6, ecn_threshold_bytes=10**6)
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=200 * KB)
        sender = hosts[ADDRS[0]].start_flow(flow, sender_cls=DctcpSender)
        net.run(50 * MILLISECOND)
        assert sender.alpha == 0.0

    def test_invalid_gain_rejected(self):
        net = stardust()
        hosts, _ = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=1000)
        with pytest.raises(ValueError):
            DctcpSender(hosts[ADDRS[0]], flow, g=0)


class TestDcqcn:
    def test_paced_transfer_completes(self):
        net = push()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=100 * KB)
        dst_host = hosts[ADDRS[5]]
        dst_host.install_receiver(
            DcqcnNotificationPoint(dst_host, flow.flow_id)
        )
        hosts[ADDRS[0]].start_flow(
            flow, sender_cls=DcqcnSender, line_rate_bps=gbps(50)
        )
        net.run(100 * MILLISECOND)
        assert tracker.get(flow.flow_id).completed_ns is not None

    def test_cnp_slows_sender(self):
        net = push(port_buffer_bytes=200_000, ecn_threshold_bytes=8_000)
        hosts, tracker = make_hosts(net, ADDRS)
        senders = []
        for i in range(2):
            flow = Flow(
                src=PortAddress(i, 0), dst=PortAddress(3, 0),
                size_bytes=None,
            )
            dst_host = hosts[PortAddress(3, 0)]
            dst_host.install_receiver(
                DcqcnNotificationPoint(dst_host, flow.flow_id)
            )
            senders.append(
                hosts[flow.src].start_flow(
                    flow, sender_cls=DcqcnSender, line_rate_bps=gbps(50)
                )
            )
        net.run(10 * MILLISECOND)
        assert any(s.cnps_received > 0 for s in senders)
        assert any(s.rc_bps < gbps(50) for s in senders)

    def test_rate_recovers_after_congestion(self):
        net = push()
        hosts, _ = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=None)
        sender = hosts[ADDRS[0]].start_flow(
            flow, sender_cls=DcqcnSender, line_rate_bps=gbps(50)
        )
        net.run(1 * MILLISECOND)
        sender.on_cnp(None.__class__ if False else __import__("repro.net.packet", fromlist=["Packet"]).Packet(
            size_bytes=64, src=ADDRS[5], dst=ADDRS[0],
            flow_id=flow.flow_id, is_cnp=True,
        ))
        dipped = sender.rc_bps
        assert dipped < gbps(50)
        net.run(5 * MILLISECOND)
        assert sender.rc_bps > dipped  # recovery stages kicked in


class TestMptcp:
    def test_transfer_completes(self):
        net = push()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=400 * KB)
        conn = MptcpConnection(hosts[ADDRS[0]], flow, n_subflows=4)
        conn.start()
        net.run(100 * MILLISECOND)
        assert conn.done
        assert tracker.get(flow.flow_id).completed_ns is not None
        assert tracker.get(flow.flow_id).bytes_delivered >= 400 * KB

    def test_subflows_take_different_paths(self):
        net = push()
        hosts, tracker = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=None)
        conn = MptcpConnection(hosts[ADDRS[0]], flow, n_subflows=8)
        conn.start()
        net.run(5 * MILLISECOND)
        tor = net.tors[0]
        used = sum(1 for p in tor.up_ports if p.out.tx_frames > 10)
        assert used >= 2  # hashing spread the subflows

    def test_share_striping_covers_all_bytes(self):
        net = push()
        hosts, tracker = make_hosts(net, ADDRS)
        size = 1_000_003  # deliberately not divisible by n_subflows
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=size)
        conn = MptcpConnection(hosts[ADDRS[0]], flow, n_subflows=4)
        assert sum(s.total_bytes for s in conn.subflows) == size
        conn.start()
        net.run(200 * MILLISECOND)
        assert tracker.get(flow.flow_id).bytes_delivered >= size

    def test_invalid_subflow_count(self):
        net = push()
        hosts, _ = make_hosts(net, ADDRS)
        flow = Flow(src=ADDRS[0], dst=ADDRS[5], size_bytes=1000)
        with pytest.raises(ValueError):
            MptcpConnection(hosts[ADDRS[0]], flow, n_subflows=0)
