"""Golden-trace regression tests: the simulator must reproduce, bit for
bit, the run digests recorded in ``tests/golden/*.json``.

Each golden cell is one quick fabric x tier x workload run collapsed to
a compact digest (delivered bytes, drops, event count, hashes of the
per-flow rates and latency/queue histograms — see
:mod:`repro.perf.digest`).  Because every sample vector is hashed, any
drift in event ordering, scheduling, routing or accounting anywhere in
the stack fails these tests — this is what lets hot-path optimizations
claim "bit-identical results" as a checked fact.

If a change *intentionally* alters simulation behavior, re-record the
digests in the same commit and say why::

    PYTHONPATH=src python -m repro.perf golden --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.digest import diff_digests
from repro.perf.golden import compute_digest, golden_name, golden_specs
from repro.sim.kernel import kernel_names

GOLDEN_DIR = Path(__file__).parent / "golden"

_REGEN_HINT = (
    "run `PYTHONPATH=src python -m repro.perf golden --regen` and commit "
    "the result ONLY if this behavior change is intentional"
)


@pytest.mark.parametrize("kernel", kernel_names())
@pytest.mark.parametrize("spec", golden_specs(), ids=golden_name)
def test_golden_trace_is_reproduced(spec, kernel):
    """Every registered kernel must hit the recorded digest, byte for
    byte — the recordings are kernel-agnostic because ``kernel`` is a
    hash-neutral execution detail, not part of scenario identity."""
    path = GOLDEN_DIR / f"{golden_name(spec)}.json"
    assert path.exists(), f"no recorded golden at {path}; {_REGEN_HINT}"
    recorded = json.loads(path.read_text())["digest"]
    diff = diff_digests(
        recorded, compute_digest(spec.with_updates(kernel=kernel))
    )
    assert not diff, (
        f"golden trace drifted under kernel={kernel}: "
        f"{json.dumps(diff, indent=1, default=str)}\n"
        f"{_REGEN_HINT}"
    )


def test_no_orphaned_golden_files():
    """Every file on disk corresponds to a cell in the current matrix."""
    expected = {golden_name(s) for s in golden_specs()}
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert on_disk == expected, (
        f"stale: {sorted(on_disk - expected)}, "
        f"missing: {sorted(expected - on_disk)}; {_REGEN_HINT}"
    )


def test_golden_files_record_their_spec():
    """Each recording carries the spec it was produced from (provenance)."""
    for spec in golden_specs():
        payload = json.loads(
            (GOLDEN_DIR / f"{golden_name(spec)}.json").read_text()
        )
        assert payload["spec"] == spec.to_dict()
        assert payload["digest"]["spec_hash"] == spec.content_hash()
