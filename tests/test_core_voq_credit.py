"""Unit tests for VOQs, the shared buffer pool and egress scheduling."""

import pytest

from repro.core.cell import VoqId
from repro.core.config import StardustConfig
from repro.core.credit import EgressScheduler
from repro.core.voq import SharedBufferPool, Voq
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.units import KB, MB, SECOND, gbps

DST = PortAddress(fa=3, port=1)
SRC = PortAddress(fa=0, port=0)


def mk_voq(capacity=1 * MB, priority=0):
    pool = SharedBufferPool(capacity)
    return Voq(VoqId(dst=DST, priority=priority), pool), pool


def pkt(size):
    return Packet(size_bytes=size, src=SRC, dst=DST)


class TestSharedBufferPool:
    def test_admit_and_release(self):
        pool = SharedBufferPool(100)
        assert pool.try_admit(60)
        assert pool.used_bytes == 60
        pool.release(60)
        assert pool.used_bytes == 0

    def test_rejects_over_capacity(self):
        pool = SharedBufferPool(100)
        assert pool.try_admit(100)
        assert not pool.try_admit(1)
        assert pool.dropped_frames == 1
        assert pool.dropped_bytes == 1

    def test_release_more_than_reserved_raises(self):
        pool = SharedBufferPool(100)
        with pytest.raises(ValueError):
            pool.release(1)

    def test_occupancy(self):
        pool = SharedBufferPool(200)
        pool.try_admit(50)
        assert pool.occupancy == 0.25


class TestVoq:
    def test_push_accounts_bytes(self):
        voq, pool = mk_voq()
        voq.push(pkt(100))
        voq.push(pkt(200))
        assert voq.bytes == 300
        assert voq.packets == 2
        assert pool.used_bytes == 300

    def test_shared_pool_drop(self):
        voq, pool = mk_voq(capacity=150)
        assert voq.push(pkt(100))
        assert not voq.push(pkt(100))
        assert voq.bytes == 100

    def test_grant_dequeues_whole_packets(self):
        voq, _ = mk_voq()
        for _ in range(4):
            voq.push(pkt(1000))
        burst = voq.grant(2500)
        # 1000+1000 consumes 2000; balance 500 still positive -> third
        # packet dequeues too, leaving a 500B deficit.
        assert len(burst) == 3
        assert voq.credit_balance == -500

    def test_deficit_repaid_by_next_credit(self):
        voq, _ = mk_voq()
        for _ in range(4):
            voq.push(pkt(1000))
        voq.grant(2500)  # leaves deficit of 500, 1 packet queued
        burst = voq.grant(400)  # balance -100: nothing released
        assert burst == []
        burst = voq.grant(200)  # balance +100: releases the last packet
        assert len(burst) == 1

    def test_surplus_forfeited_when_drained(self):
        voq, _ = mk_voq()
        voq.push(pkt(100))
        burst = voq.grant(4 * KB)
        assert len(burst) == 1
        assert voq.credit_balance == 0  # surplus not banked

    def test_grant_releases_pool_bytes(self):
        voq, pool = mk_voq()
        voq.push(pkt(1000))
        voq.grant(4 * KB)
        assert pool.used_bytes == 0

    def test_seq_reservation(self):
        voq, _ = mk_voq()
        assert voq.take_seq(5) == 0
        assert voq.take_seq(3) == 5
        assert voq.next_seq == 8

    def test_invalid_credit_raises(self):
        voq, _ = mk_voq()
        with pytest.raises(ValueError):
            voq.grant(0)


class TestEgressScheduler:
    def make(self, config=None, rate=gbps(50)):
        sim = Simulator()
        cfg = config or StardustConfig()
        grants = []
        sched = EgressScheduler(
            sim, cfg, rate, lambda fa, voq, nb: grants.append((sim.now, fa, voq, nb))
        )
        return sim, cfg, sched, grants

    def test_credit_rate_matches_speedup(self):
        sim, cfg, sched, grants = self.make()
        voq = VoqId(dst=DST)
        sched.request(0, voq)
        sim.run(until=SECOND // 1000)  # 1 ms
        # Expected rate: 50G * 1.02 / (4KB*8) credits/sec.
        expected = 50e9 * 1.02 / (4 * KB * 8) * 1e-3
        assert len(grants) == pytest.approx(expected, rel=0.02)

    def test_round_robin_fairness(self):
        sim, cfg, sched, grants = self.make()
        voqs = [VoqId(dst=PortAddress(3, 1), priority=0) for _ in range(3)]
        for fa in range(3):
            sched.request(fa, voqs[fa])
        sim.run(until=1_000_000)
        per_fa = [sum(1 for _, fa, _, _ in grants if fa == i) for i in range(3)]
        assert max(per_fa) - min(per_fa) <= 1

    def test_strict_priority_preempts(self):
        cfg = StardustConfig(traffic_classes=2)
        sim, _, sched, grants = self.make(config=cfg)
        low = VoqId(dst=DST, priority=1)
        high = VoqId(dst=DST, priority=0)
        sched.request(1, low)
        sched.request(2, high)
        sim.run(until=1_000_000)
        # All credits go to the high class while it keeps requesting.
        assert all(voq.priority == 0 for _, _, voq, _ in grants)

    def test_withdraw_stops_grants(self):
        sim, cfg, sched, grants = self.make()
        voq = VoqId(dst=DST)
        sched.request(0, voq)
        sim.run(until=100_000)
        n = len(grants)
        assert n > 0
        sched.withdraw(0, voq)
        sim.run(until=1_000_000)
        assert len(grants) == n

    def test_no_grants_without_requests(self):
        sim, cfg, sched, grants = self.make()
        sim.run(until=1_000_000)
        assert grants == []

    def test_pause_resume(self):
        sim, cfg, sched, grants = self.make()
        sched.request(0, VoqId(dst=DST))
        sched.pause()
        sim.run(until=500_000)
        assert grants == []
        sched.resume()
        sim.run(until=1_000_000)
        assert grants

    def test_duplicate_request_ignored(self):
        sim, cfg, sched, grants = self.make()
        voq = VoqId(dst=DST)
        sched.request(0, voq)
        sched.request(0, voq)
        assert sched.active_voqs == 1

    def test_fci_throttles_credit_rate(self):
        sim, cfg, sched, grants = self.make()
        sched.request(0, VoqId(dst=DST))
        sim.run(until=1_000_000)
        baseline = len(grants)
        # Keep marking FCI for the whole next window.
        from repro.sim.engine import PeriodicTask

        marker = PeriodicTask(sim, 10_000, sched.fci_mark)
        sim.run(until=2_000_000)
        throttled = len(grants) - baseline
        assert throttled < baseline
        assert throttled == pytest.approx(
            baseline / cfg.fci_throttle_factor, rel=0.1
        )
        marker.stop()

    def test_throttle_decays_back(self):
        sim, cfg, sched, grants = self.make()
        sched.request(0, VoqId(dst=DST))
        sched.fci_mark()
        sim.run(until=cfg.fci_decay_ns * 3)
        window = cfg.fci_decay_ns
        before_end = [t for t, *_ in grants if t > 2 * window]
        # Rate in the last window is back to the un-throttled gap
        # (credit_size serialized at credit rate).
        base_gap = int(
            cfg.credit_size_bytes * 8 * 1e9
            / (sched.port_rate_bps * (1 + cfg.credit_speedup))
        )
        gaps = [b - a for a, b in zip(before_end, before_end[1:])]
        assert gaps and max(gaps) == pytest.approx(base_gap, rel=0.01)
