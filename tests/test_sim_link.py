"""Unit tests for links: serialization, propagation, FIFO order, failure."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link, LinkDown, duplex
from repro.sim.units import GBPS, gbps


class Sink(Entity):
    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def receive(self, payload, link):
        self.received.append((self.sim.now, payload))


def make_link(sim, rate_bps=GBPS, prop=0):
    src = Sink(sim, "src")
    dst = Sink(sim, "dst")
    return Link(sim, src, dst, rate_bps, prop), dst


def test_serialization_delay_is_size_over_rate():
    sim = Simulator()
    link, dst = make_link(sim, rate_bps=GBPS)  # 1 Gbps => 8 ns/byte
    link.send("x", 125)  # 1000 bits => 1000 ns
    sim.run()
    assert dst.received == [(1000, "x")]


def test_propagation_delay_added_after_serialization():
    sim = Simulator()
    link, dst = make_link(sim, rate_bps=GBPS, prop=500)
    link.send("x", 125)
    sim.run()
    assert dst.received == [(1500, "x")]


def test_frames_serialize_back_to_back_in_fifo_order():
    sim = Simulator()
    link, dst = make_link(sim, rate_bps=GBPS)
    link.send("a", 125)
    link.send("b", 125)
    sim.run()
    assert dst.received == [(1000, "a"), (2000, "b")]


def test_queue_accounting_and_peaks():
    sim = Simulator()
    link, _ = make_link(sim)
    link.send("a", 100)  # starts transmitting immediately
    link.send("b", 200)
    link.send("c", 300)
    assert link.queued_bytes == 500
    assert link.queued_frames == 2
    assert link.peak_queue_bytes == 500
    sim.run()
    assert link.queued_bytes == 0
    assert link.tx_frames == 3
    assert link.tx_bytes == 600


def test_on_transmit_hook_fires_at_serialization_start():
    sim = Simulator()
    link, _ = make_link(sim)
    starts = []
    link.on_transmit = lambda payload: starts.append((sim.now, payload))
    link.send("a", 125)
    link.send("b", 125)
    sim.run()
    assert starts == [(0, "a"), (1000, "b")]


def test_on_idle_fires_when_queue_drains():
    sim = Simulator()
    link, _ = make_link(sim)
    idles = []
    link.on_idle = lambda: idles.append(sim.now)
    link.send("a", 125)
    link.send("b", 125)
    sim.run()
    assert idles == [2000]


def test_fail_drops_queued_and_in_flight():
    sim = Simulator()
    link, dst = make_link(sim, rate_bps=GBPS, prop=1000)
    link.send("a", 125)
    link.send("b", 125)
    # Fail mid-serialization of "a".
    sim.schedule(500, link.fail)
    sim.run()
    assert dst.received == []


def test_send_on_down_link_raises():
    sim = Simulator()
    link, _ = make_link(sim)
    link.fail()
    with pytest.raises(LinkDown):
        link.send("x", 10)


def test_restore_allows_traffic_again():
    sim = Simulator()
    link, dst = make_link(sim)
    link.fail()
    link.restore()
    link.send("x", 125)
    sim.run()
    assert [p for _, p in dst.received] == ["x"]


def test_zero_size_frame_rejected():
    sim = Simulator()
    link, _ = make_link(sim)
    with pytest.raises(ValueError):
        link.send("x", 0)


def test_bad_rate_rejected():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(ValueError):
        Link(sim, a, b, 0)


def test_duplex_creates_symmetric_pair_and_attaches_ports():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    fwd, rev = duplex(sim, a, b, gbps(50), propagation_ns=10)
    assert fwd.src is a and fwd.dst is b
    assert rev.src is b and rev.dst is a
    assert a.ports == [fwd]
    assert b.ports == [rev]
    fwd.send("ping", 125)
    rev.send("pong", 125)
    sim.run()
    assert [p for _, p in b.received] == ["ping"]
    assert [p for _, p in a.received] == ["pong"]


def test_restore_mid_serialization_keeps_frame_pairing():
    # Regression: a frame serializing when the link fails leaves its
    # completion event pending.  If the link is restored and a smaller
    # frame is sent before that stale event fires, the *new* frame's
    # completion arrives first — each completion must process its own
    # frame, not whatever sits at the head of the FIFO.
    sim = Simulator()
    link, dst = make_link(sim, rate_bps=GBPS)  # 8 ns/byte
    link.send("BIG", 10_000)  # completes at t=80000
    sim.schedule(100, link.fail)
    sim.schedule(500, link.restore)
    sim.schedule(800, lambda: link.send("small", 100))  # completes t=1600
    sim.run()
    assert dst.received == [(1600, "small"), (80000, "BIG")]
    assert link.tx_frames == 2
    assert link.tx_bytes == 10_100


def test_50g_link_timing():
    sim = Simulator()
    link, dst = make_link(sim, rate_bps=gbps(50))
    link.send("cell", 256)  # 2048 bits at 50 Gbps => 41 ns (rounded up)
    sim.run()
    assert dst.received[0][0] == 41


class TestFailureLossAccounting:
    """Link.fail() must *count* every frame it kills — queued, being
    serialized, or propagating — not silently drop them (the fault
    subsystem's loss metrics are built from these counters)."""

    def test_fail_counts_queued_frames_and_bytes(self):
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS)
        for i in range(4):
            link.send(f"f{i}", 1000)  # f0 serializing, f1-f3 queued
        lost = link.fail()
        assert lost == 3
        assert link.dropped_frames == 3
        assert link.dropped_bytes == 3000
        assert link.failed_at_ns == sim.now

    def test_fail_during_serialization_counts_the_inflight_frame(self):
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS)  # 8 ns/byte
        link.send("dying", 1000)  # completes at t=8000
        sim.schedule(100, link.fail)
        sim.run()
        assert dst.received == []
        # Counted when the serialization event fired into a dead link.
        assert link.dropped_frames == 1
        assert link.dropped_bytes == 1000
        assert link.tx_frames == 1  # it *was* serialized...
        assert dst.received == []  # ...but never delivered

    def test_fail_during_propagation_counts_the_inflight_frame(self):
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS, prop=5000)
        link.send("wire", 125)  # serialized at 1000, delivered at 6000
        sim.schedule(2000, link.fail)  # dies mid-propagation
        sim.run()
        assert dst.received == []
        assert link.dropped_frames == 1  # bytes unknown at delivery

    def test_restore_before_completion_still_delivers_uncounted(self):
        # The pre-fail frame whose completion fires after restore() is
        # delivered (existing semantics) and must NOT count as lost.
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS)
        link.send("BIG", 10_000)  # completes at t=80000
        sim.schedule(100, link.fail)
        sim.schedule(500, link.restore)
        sim.run()
        assert [p for _, p in dst.received] == ["BIG"]
        assert link.dropped_frames == 0
        assert link.dropped_bytes == 0

    def test_loss_counters_survive_fail_restore_cycles(self):
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS)
        link.send("a", 1000)
        link.fail()  # "a" mid-serialization: counted when event fires
        sim.run()
        link.restore()
        link.send("b", 500)
        sim.run()
        link.send("c", 500)
        link.send("d", 500)
        link.fail()  # "c" serializing (counted on event), "d" queued
        sim.run()
        assert [p for _, p in dst.received] == ["b"]
        assert link.dropped_frames == 3
        assert link.dropped_bytes == 2000


class TestDegradedRate:
    def test_set_rate_changes_future_serializations(self):
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS)  # 8 ns/byte
        link.send("fast", 125)  # 1000 ns
        sim.run()
        link.set_rate(GBPS // 2)  # 16 ns/byte
        link.send("slow", 125)  # 2000 ns
        sim.run()
        assert dst.received == [(1000, "fast"), (3000, "slow")]

    def test_set_rate_rejects_nonpositive(self):
        sim = Simulator()
        link, _ = make_link(sim)
        with pytest.raises(ValueError):
            link.set_rate(0)

    def test_set_rate_same_value_keeps_memo(self):
        sim = Simulator()
        link, dst = make_link(sim, rate_bps=GBPS)
        link.send("x", 125)
        sim.run()
        memo = link._tx_ns
        link.set_rate(GBPS)
        assert link._tx_ns is memo  # unchanged rate: no memo rebuild
