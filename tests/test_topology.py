"""Unit tests for the Appendix A scaling math and fat-tree graphs."""

from fractions import Fraction

import pytest

from repro.sim.units import GBPS
from repro.topology.fattree import FatTreeGraph
from repro.topology.scaling import (
    SwitchModel,
    fabric_switches,
    fig2_network_devices,
    fig2_network_links,
    fig2_series_hosts_vs_tiers,
    link_bundles,
    links_per_tor,
    max_hosts,
    max_tors,
    min_tiers_for_hosts,
    switches_per_tor,
)

# The paper's Fig 2 switch generations: 12.8 Tbps, 50G lanes.
STARDUST = SwitchModel(12_800 * GBPS, bundle=1)  # 256 x 50G
FT_L2 = SwitchModel(12_800 * GBPS, bundle=2)  # 128 x 100G
FT_L4 = SwitchModel(12_800 * GBPS, bundle=4)  # 64 x 200G
FT_L8 = SwitchModel(12_800 * GBPS, bundle=8)  # 32 x 400G


class TestSwitchModel:
    def test_radix_from_bundle(self):
        assert STARDUST.radix == 256
        assert FT_L2.radix == 128
        assert FT_L4.radix == 64
        assert FT_L8.radix == 32

    def test_port_rate(self):
        assert FT_L8.port_rate_bps == 400 * GBPS

    def test_invalid_bundle(self):
        with pytest.raises(ValueError):
            SwitchModel(12_800 * GBPS, bundle=0)

    def test_non_divisible_bandwidth(self):
        with pytest.raises(ValueError):
            SwitchModel(12_801 * GBPS, bundle=1)


class TestTable2:
    """The explicit Table 2 rows."""

    def test_max_tors_rows(self):
        k = 8
        assert max_tors(k, 1) == 8
        assert max_tors(k, 2) == 32  # k^2/2
        assert max_tors(k, 3) == 128  # k^3/4
        assert max_tors(k, 4) == 512  # k^4/8

    def test_switch_count_rows(self):
        k, t = 8, 4
        assert fabric_switches(k, t, 1) == t
        assert fabric_switches(k, t, 2) == 3 * t * k // 2
        assert fabric_switches(k, t, 3) == 5 * t * k**2 // 4
        assert fabric_switches(k, t, 4) == 7 * t * k**3 // 8

    def test_switches_per_tor(self):
        k, t = 8, 4
        assert switches_per_tor(k, t, 2) == Fraction(3 * t, k)
        assert switches_per_tor(k, t, 3) == Fraction(5 * t, k)

    def test_link_bundle_rows(self):
        k, t = 8, 4
        assert link_bundles(k, t, 1) == t * k
        assert link_bundles(k, t, 2) == t * k**2
        assert link_bundles(k, t, 3) == 3 * t * k**3 // 4
        assert link_bundles(k, t, 4) == 7 * t * k**4 // 8

    def test_links_per_tor_consistent_with_bundles(self):
        k, t, l = 8, 4, 2
        # links/ToR * ToRs == bundles * l, by construction.
        for n in range(1, 5):
            assert links_per_tor(k, t, l, n) * max_tors(k, n) == (
                link_bundles(k, t, n) * l
            )

    def test_links_per_tor_row_values(self):
        k, t, l = 8, 4, 1
        assert links_per_tor(k, t, l, 1) == t
        assert links_per_tor(k, t, l, 2) == 2 * t
        assert links_per_tor(k, t, l, 3) == 3 * t
        assert links_per_tor(k, t, l, 4) == 7 * t

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            max_tors(1, 1)
        with pytest.raises(ValueError):
            max_tors(4, 0)
        with pytest.raises(ValueError):
            fabric_switches(4, 0, 1)


class TestFig2Claims:
    """§2.2's headline numbers."""

    def test_one_tier_l1_connects_over_10k_hosts(self):
        assert max_hosts(STARDUST.radix, 1, 40) == 10_240

    def test_one_tier_l8_is_one_eighth(self):
        assert max_hosts(FT_L8.radix, 1, 40) == 10_240 // 8

    def test_two_tier_l8_limited_to_20k(self):
        assert max_hosts(FT_L8.radix, 2, 40) == 20_480

    def test_two_tier_l1_is_64x_l8(self):
        l1 = max_hosts(STARDUST.radix, 2, 40)
        l8 = max_hosts(FT_L8.radix, 2, 40)
        assert l1 == 64 * l8  # the paper's "x64 the number of hosts"

    def test_nth_tier_advantage_is_bundle_to_the_n(self):
        # §5.1: n-tier Stardust supports x(l^n) more ToRs than an
        # l-bundled fat-tree of the same silicon.
        for n in (1, 2, 3):
            ratio = max_tors(STARDUST.radix, n) / max_tors(FT_L8.radix, n)
            assert ratio == 8**n

    def test_hosts_vs_tiers_series_monotone(self):
        series = fig2_series_hosts_vs_tiers(STARDUST)
        assert series == sorted(series)
        assert len(series) == 4

    def test_devices_decrease_with_smaller_bundle(self):
        hosts = 200_000
        devices = [
            fig2_network_devices(sw, hosts)
            for sw in (STARDUST, FT_L2, FT_L4, FT_L8)
        ]
        assert all(d is not None for d in devices)
        assert devices == sorted(devices)  # Stardust needs the fewest

    def test_links_decrease_with_smaller_bundle(self):
        hosts = 200_000
        links = [
            fig2_network_links(sw, hosts)
            for sw in (STARDUST, FT_L2, FT_L4, FT_L8)
        ]
        assert all(x is not None for x in links)
        assert links == sorted(links)

    def test_min_tiers(self):
        assert min_tiers_for_hosts(256, 10_000, 40) == 1
        assert min_tiers_for_hosts(256, 11_000, 40) == 2
        assert min_tiers_for_hosts(32, 1_000_000, 40) == 4

    def test_unreachable_size_returns_none(self):
        assert min_tiers_for_hosts(2, 10**12, 40, max_n=3) is None
        tiny = SwitchModel(100 * GBPS, bundle=1)  # 2x50G
        assert fig2_network_devices(tiny, 10**9) is None


class TestFatTreeGraph:
    def test_single_pod_shape(self):
        g = FatTreeGraph(pods=1, tors_per_pod=4, t1_per_pod=2)
        assert g.tor_count == 4
        assert g.fabric_count == 2
        assert g.graph.number_of_edges() == 8

    def test_two_pod_shape(self):
        g = FatTreeGraph(pods=2, tors_per_pod=2, t1_per_pod=2, spines=2)
        assert g.tor_count == 4
        assert g.fabric_count == 6
        # edges: 2 pods * 2*2 (tier1) + 4 t1 * 2 spines = 8 + 8.
        assert g.graph.number_of_edges() == 16

    def test_path_diversity_equals_t1_count_within_pod(self):
        g = FatTreeGraph(pods=1, tors_per_pod=4, t1_per_pod=3)
        assert g.path_diversity("tor0", "tor1") == 3

    def test_cross_pod_paths_scale_with_spines(self):
        g = FatTreeGraph(pods=2, tors_per_pod=2, t1_per_pod=2, spines=4)
        # src t1 (2) x spines (4) x dst t1 — shortest paths go
        # tor-t1-spine-t1-tor: 2*4*2.
        assert g.path_diversity("tor0", "tor2") == 16

    def test_diameter(self):
        one_pod = FatTreeGraph(pods=1, tors_per_pod=2, t1_per_pod=2)
        assert one_pod.diameter_hops() == 2
        two_pod = FatTreeGraph(pods=2, tors_per_pod=2, t1_per_pod=2, spines=2)
        assert two_pod.diameter_hops() == 4

    def test_min_cut_matches_uplinks(self):
        g = FatTreeGraph(pods=1, tors_per_pod=3, t1_per_pod=4)
        assert g.min_edge_cut_between_tors("tor0", "tor1") == 4

    def test_multi_pod_requires_spines(self):
        with pytest.raises(ValueError):
            FatTreeGraph(pods=2, tors_per_pod=2, t1_per_pod=2, spines=0)
