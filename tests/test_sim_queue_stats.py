"""Unit tests for FIFO queues, stats primitives and units."""

import pytest

from repro.sim.queue import FifoQueue
from repro.sim.stats import (
    Counter,
    Histogram,
    RateMeter,
    TimeWeightedMean,
    percentile,
)
from repro.sim.units import (
    bits_to_time_ns,
    bytes_in_time,
    gbps,
    time_ns_for_bytes,
)


class Item:
    def __init__(self, size):
        self.size_bytes = size


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        a, b = Item(10), Item(20)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_byte_accounting(self):
        q = FifoQueue()
        q.push(Item(10))
        q.push(Item(20))
        assert q.bytes == 30
        assert q.frames == 2
        q.pop()
        assert q.bytes == 20

    def test_drop_tail_on_capacity(self):
        q = FifoQueue(capacity_bytes=25)
        assert q.push(Item(10))
        assert q.push(Item(15))
        assert not q.push(Item(1))
        assert q.stats.dropped_frames == 1
        assert q.bytes == 25

    def test_would_fit(self):
        q = FifoQueue(capacity_bytes=20)
        q.push(Item(15))
        assert q.would_fit(Item(5))
        assert not q.would_fit(Item(6))

    def test_unbounded_never_drops(self):
        q = FifoQueue()
        for _ in range(1000):
            assert q.push(Item(1000))
        assert q.stats.dropped_frames == 0

    def test_peek_does_not_remove(self):
        q = FifoQueue()
        item = Item(5)
        q.push(item)
        assert q.peek() is item
        assert q.frames == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoQueue().pop()

    def test_clear_counts_drops(self):
        q = FifoQueue()
        q.push(Item(10))
        q.push(Item(10))
        assert q.clear() == 2
        assert q.stats.dropped_frames == 2
        assert q.bytes == 0

    def test_peak_tracking(self):
        q = FifoQueue()
        q.push(Item(10))
        q.push(Item(30))
        q.pop()
        q.pop()
        assert q.stats.peak_bytes == 40
        assert q.stats.peak_frames == 2

    def test_wire_bytes_preferred_for_sizing(self):
        class Wired:
            wire_bytes = 84
            size_bytes = 64

        q = FifoQueue()
        q.push(Wired())
        assert q.bytes == 84

    def test_custom_size_of(self):
        q = FifoQueue(size_of=len)
        q.push("hello")
        assert q.bytes == 5

    def test_unsizable_item_raises(self):
        q = FifoQueue()
        with pytest.raises(TypeError):
            q.push(object())


class TestPercentile:
    def test_median_of_odd_set(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 50) == 5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestHistogram:
    def test_summary_stats(self):
        h = Histogram()
        h.extend([1, 2, 3, 4])
        assert h.mean() == 2.5
        assert h.minimum() == 1
        assert h.maximum() == 4
        assert h.count == 4

    def test_distribution_bins(self):
        h = Histogram()
        h.extend([0.1, 0.2, 1.5, 2.7])
        dist = h.distribution(1.0)
        assert dist[0.0] == pytest.approx(0.5)
        assert dist[1.0] == pytest.approx(0.25)
        assert dist[2.0] == pytest.approx(0.25)

    def test_distribution_probabilities_sum_to_one(self):
        h = Histogram()
        h.extend(range(100))
        assert sum(h.distribution(7.0).values()) == pytest.approx(1.0)

    def test_ccdf_monotone_decreasing(self):
        h = Histogram()
        h.extend([1, 1, 2, 3, 3, 3])
        points = h.ccdf()
        probs = [p for _, p in points]
        assert probs == sorted(probs, reverse=True)
        assert points[0] == (1, 1.0)

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().mean()

    def test_stdev(self):
        h = Histogram()
        h.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert h.stdev() == pytest.approx(2.138, abs=1e-3)

    def test_array_backing_stores_plain_floats(self):
        # The sample store is a packed array('d') (RSS: 8 bytes per
        # sample on 5M-event runs), but the visible samples must remain
        # ordinary floats with list-of-floats coercion semantics.
        h = Histogram()
        h.record(3)
        h.record(2.5)
        assert h.samples == [3.0, 2.5]
        assert all(type(s) is float for s in h.samples)
        other = Histogram()
        other.extend([1, 2])
        other.merge(h)
        assert other.samples == [1.0, 2.0, 3.0, 2.5]

    def test_digest_hash_pinned_across_storage_changes(self):
        # Regression pin: run digests hash Histogram samples via
        # values_hash; switching the backing store (list -> array('d'))
        # must never move a digest.  This literal was recorded from the
        # list-backed implementation.
        from repro.perf.digest import values_hash

        h = Histogram("pin")
        for value in (0, 1, 2.5, 3735.5, 10**9, 0.1 + 0.2):
            h.record(value)
        assert values_hash(h.samples) == "e9f68eb1a5d07a8c"


class TestTimeWeightedMean:
    def test_constant_level(self):
        twm = TimeWeightedMean()
        twm.update(0, 5.0)
        assert twm.value(100) == pytest.approx(5.0)

    def test_step_function(self):
        twm = TimeWeightedMean()
        twm.update(0, 0.0)
        twm.update(50, 10.0)
        # Half the time at 0, half at 10.
        assert twm.value(100) == pytest.approx(5.0)

    def test_peak(self):
        twm = TimeWeightedMean()
        twm.update(10, 3.0)
        twm.update(20, 7.0)
        twm.update(30, 1.0)
        assert twm.peak == 7.0

    def test_backwards_time_raises(self):
        twm = TimeWeightedMean()
        twm.update(10, 1.0)
        with pytest.raises(ValueError):
            twm.update(5, 1.0)


class TestRateMeter:
    def test_average_rate(self):
        m = RateMeter()
        m.record(0, 0)
        m.record(1000, 125)  # 1000 bits over 1000 ns = 1 Gbps
        assert m.rate_bps() == pytest.approx(1e9)

    def test_explicit_window(self):
        m = RateMeter()
        m.record(500, 125)
        assert m.rate_bps(window_ns=1000) == pytest.approx(1e9)

    def test_no_samples_is_zero(self):
        assert RateMeter().rate_bps() == 0.0


class TestCounter:
    def test_add(self):
        c = Counter()
        c.add()
        c.add(5)
        assert c.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add(-1)


class TestUnits:
    def test_bits_to_time_rounds_up(self):
        assert bits_to_time_ns(1, gbps(1)) == 1
        assert bits_to_time_ns(3, gbps(2)) == 2  # 1.5 ns -> 2

    def test_bytes_timing_on_50g(self):
        # 256B = 2048 bits at 50 Gbps = 40.96 ns -> 41.
        assert time_ns_for_bytes(256, gbps(50)) == 41

    def test_bytes_in_time_inverse(self):
        assert bytes_in_time(1000, gbps(1)) == 125

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            bits_to_time_ns(8, 0)


class TestRateMeterWindow:
    """The deque-trimmed trailing window added for telemetry probes."""

    @staticmethod
    def naive_window_bytes(samples, last_ns, window_ns):
        cutoff = last_ns - window_ns
        return sum(nb for t, nb in samples if t > cutoff)

    def test_windowed_matches_naive_scan(self):
        m = RateMeter(retention_ns=10_000)
        samples = [(t, (t * 7) % 300 + 1) for t in range(0, 5000, 130)]
        for t, nb in samples:
            m.record(t, nb)
        for window_ns in (100, 1000, 2600, 9999):
            expected = self.naive_window_bytes(
                samples, samples[-1][0], window_ns
            )
            assert m.window_bytes(window_ns) == expected
            assert m.rate_bps(window_ns) == pytest.approx(
                expected * 8 * 1e9 / window_ns
            )

    def test_window_wider_than_span_uses_total(self):
        m = RateMeter(retention_ns=1000)
        m.record(100, 10)
        m.record(200, 20)
        # Span is 100ns; a 500ns window covers everything observed.
        assert m.window_bytes(500) == 30

    def test_window_wider_than_retention_raises(self):
        m = RateMeter(retention_ns=1000)
        for t in range(0, 5000, 100):
            m.record(t, 1)
        with pytest.raises(ValueError):
            m.window_bytes(2000)

    def test_retention_bounds_memory(self):
        m = RateMeter(retention_ns=1000)
        for t in range(0, 100_000, 10):
            m.record(t, 1)
        assert len(m._window) <= 101
        assert m.total_bytes == 10_000  # cumulative stats unaffected

    def test_nonpositive_window_is_zero(self):
        m = RateMeter()
        m.record(10, 5)
        assert m.window_bytes(0) == 0
        assert m.rate_bps(window_ns=0) == 0.0

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError):
            RateMeter(retention_ns=0)
