"""Unit tests for spray arbitration and cell reassembly."""

import random

import pytest

from repro.core.cell import VoqId
from repro.core.packing import pack_burst
from repro.core.reassembly import ReassemblyEngine
from repro.core.spray import SprayArbiter
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.engine import Simulator

DST = PortAddress(fa=9, port=0)
SRC = PortAddress(fa=1, port=4)
VOQ = VoqId(dst=DST)


class TestSprayArbiter:
    def test_permutation_mode_is_perfectly_balanced(self):
        arb = SprayArbiter(random.Random(1), mode="permutation")
        links = ["a", "b", "c", "d"]
        counts = {l: 0 for l in links}
        for _ in range(4000):
            counts[arb.pick("dst", links)] += 1
        assert set(counts.values()) == {1000}

    def test_round_robin_within_permutation(self):
        arb = SprayArbiter(random.Random(1), mode="permutation")
        links = ["a", "b", "c"]
        picks = [arb.pick("d", links) for _ in range(3)]
        assert sorted(picks) == links  # each link exactly once per round

    def test_random_mode_covers_all_links(self):
        arb = SprayArbiter(random.Random(1), mode="random")
        links = ["a", "b", "c"]
        picks = {arb.pick("d", links) for _ in range(200)}
        assert picks == set(links)

    def test_static_mode_pins_destination_to_one_link(self):
        arb = SprayArbiter(random.Random(1), mode="static")
        links = ["a", "b", "c"]
        picks = {arb.pick("dst1", links) for _ in range(50)}
        assert len(picks) == 1

    def test_link_set_change_restarts_walk(self):
        arb = SprayArbiter(random.Random(1))
        arb.pick("d", ["a", "b"])
        pick = arb.pick("d", ["a", "c"])  # set changed
        assert pick in ("a", "c")

    def test_separate_destinations_independent(self):
        arb = SprayArbiter(random.Random(1))
        links = ["a", "b"]
        seq1 = [arb.pick("d1", links) for _ in range(2)]
        seq2 = [arb.pick("d2", links) for _ in range(2)]
        assert sorted(seq1) == sorted(seq2) == links

    def test_empty_links_raise(self):
        arb = SprayArbiter(random.Random(1))
        with pytest.raises(ValueError):
            arb.pick("d", [])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SprayArbiter(random.Random(1), mode="bogus")

    def test_reshuffle_changes_order_eventually(self):
        arb = SprayArbiter(random.Random(3), reshuffle_every=4)
        links = list("abcdefgh")
        rounds = []
        for _ in range(40):
            rounds.append(tuple(arb.pick("d", links) for _ in links))
        assert len(set(rounds)) > 1  # order was reshuffled at least once


def mk_cells(sizes, payload=240, first_seq=0, voq=VOQ):
    packets = [Packet(size_bytes=s, src=SRC, dst=voq.dst) for s in sizes]
    return packets, pack_burst(
        packets,
        payload_bytes=payload,
        header_bytes=16,
        dst_fa=voq.dst.fa,
        src_fa=SRC.fa,
        voq=voq,
        first_seq=first_seq,
    )


class TestReassembly:
    def make(self, timeout=1_000_000):
        sim = Simulator()
        delivered = []
        engine = ReassemblyEngine(
            sim, lambda pkt, voq: delivered.append(pkt), timeout
        )
        return sim, engine, delivered

    def test_in_order_single_packet(self):
        sim, engine, delivered = self.make()
        packets, cells = mk_cells([1000])
        for cell in cells:
            engine.receive(cell)
        assert delivered == packets
        assert engine.packets_completed == 1

    def test_packed_cells_deliver_all_packets(self):
        sim, engine, delivered = self.make()
        packets, cells = mk_cells([100, 100, 300, 50])
        for cell in cells:
            engine.receive(cell)
        assert delivered == packets

    def test_out_of_order_cells_resequenced(self):
        sim, engine, delivered = self.make()
        packets, cells = mk_cells([1000])
        # Deliver in scrambled order.
        for cell in [cells[2], cells[0], cells[4], cells[1], cells[3]]:
            engine.receive(cell)
        assert delivered == packets
        assert engine.cells_out_of_order > 0

    def test_interleaved_sources_use_separate_contexts(self):
        sim, engine, delivered = self.make()
        p1, c1 = mk_cells([500])
        packets2 = [Packet(size_bytes=500, src=PortAddress(2, 0), dst=DST)]
        c2 = pack_burst(
            packets2,
            payload_bytes=240,
            header_bytes=16,
            dst_fa=DST.fa,
            src_fa=2,
            voq=VOQ,
            first_seq=0,
        )
        # Interleave the two streams cell by cell.
        for a, b in zip(c1, c2):
            engine.receive(a)
            engine.receive(b)
        assert engine.open_contexts == 2
        assert set(p.pkt_id for p in delivered) == {
            p1[0].pkt_id,
            packets2[0].pkt_id,
        }

    def test_sequences_continue_across_bursts(self):
        sim, engine, delivered = self.make()
        p1, c1 = mk_cells([300], first_seq=0)
        p2, c2 = mk_cells([300], first_seq=len(c1))
        for cell in c1 + c2:
            engine.receive(cell)
        assert len(delivered) == 2

    def test_duplicate_cell_ignored(self):
        sim, engine, delivered = self.make()
        packets, cells = mk_cells([100])
        engine.receive(cells[0])
        engine.receive(cells[0])
        assert len(delivered) == 1

    def test_timeout_skips_gap_and_discards_partial(self):
        sim, engine, delivered = self.make(timeout=1000)
        packets, cells = mk_cells([1000])
        # Lose cells[1]; later cells are buffered.
        engine.receive(cells[0])
        for cell in cells[2:]:
            engine.receive(cell)
        assert delivered == []
        sim.run(until=10_000)
        # Timeout fired: the packet is discarded, engine unblocked.
        assert engine.timeouts >= 1
        assert engine.packets_discarded == 1
        assert delivered == []

    def test_stream_recovers_after_timeout(self):
        sim, engine, delivered = self.make(timeout=1000)
        p1, c1 = mk_cells([1000], first_seq=0)
        engine.receive(c1[0])  # lose c1[1:]... stream stalls
        sim.run(until=5_000)
        # Next burst arrives after the loss.
        p2, c2 = mk_cells([200], first_seq=len(c1))
        for cell in c2:
            engine.receive(cell)
        sim.run(until=20_000)
        assert p2[0] in delivered

    def test_max_pending_bounded_by_burst(self):
        sim, engine, delivered = self.make()
        packets, cells = mk_cells([2400])
        for cell in reversed(cells):
            engine.receive(cell)
        assert engine.max_pending() == 0  # drained once seq 0 arrived
        assert len(delivered) == 1
