"""Unit tests for FabricElement internals (routing, FCI, stats)."""

import pytest

from repro.core.cell import Cell, CellKind, VoqId
from repro.core.config import StardustConfig
from repro.core.fabric_element import FabricElement
from repro.net.addressing import PortAddress
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.link import Link
from repro.sim.units import gbps


class Sink(Entity):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.cells = []

    def receive(self, cell, link):
        self.cells.append(cell)


def make_fe(config=None, n_down=2, n_up=2):
    sim = Simulator()
    cfg = config or StardustConfig()
    fe = FabricElement(sim, cfg, fe_id=0, tier=1, name="fe0")
    sinks = []
    for i in range(n_down + n_up):
        sink = Sink(sim, f"n{i}")
        out = Link(sim, fe, sink, gbps(50))
        inbound = Link(sim, sink, fe, gbps(50))
        direction = "down" if i < n_down else "up"
        fe.add_port(neighbor=100 + i, out=out, inbound=inbound,
                    direction=direction)
        sinks.append(sink)
    return sim, fe, sinks


def data_cell(dst_fa, size=100):
    from repro.core.cell import CellFragment
    from repro.net.packet import Packet

    pkt = Packet(size_bytes=size, src=PortAddress(0, 0),
                 dst=PortAddress(dst_fa, 0))
    return Cell(
        kind=CellKind.DATA, dst_fa=dst_fa, src_fa=0, header_bytes=16,
        voq=VoqId(dst=PortAddress(dst_fa, 0)),
        fragments=(CellFragment(pkt, size, True),),
    )


class TestRouting:
    def test_down_route_preferred_over_up(self):
        sim, fe, sinks = make_fe()
        down_port = fe.down_ports[0]
        fe.set_static_reachability(
            {5: [down_port]}, up_reaches_everything=True
        )
        fe.receive(data_cell(5), None)
        sim.run()
        assert len(sinks[0].cells) == 1
        assert all(not s.cells for s in sinks[2:])

    def test_unknown_destination_goes_up(self):
        sim, fe, sinks = make_fe()
        fe.set_static_reachability({}, up_reaches_everything=True)
        fe.receive(data_cell(9), None)
        sim.run()
        up_deliveries = sum(len(s.cells) for s in sinks[2:])
        assert up_deliveries == 1

    def test_no_route_counts_drop(self):
        sim, fe, sinks = make_fe(n_up=2)
        fe.set_static_reachability({}, up_reaches_everything=False)
        fe.receive(data_cell(9), None)
        assert fe.no_route_drops == 1

    def test_failed_down_link_falls_back_to_up(self):
        sim, fe, sinks = make_fe()
        down_port = fe.down_ports[0]
        fe.set_static_reachability(
            {5: [down_port]}, up_reaches_everything=True
        )
        down_port.out.fail()
        fe.receive(data_cell(5), None)
        sim.run()
        assert sum(len(s.cells) for s in sinks[2:]) == 1

    def test_spray_covers_all_eligible_down_links(self):
        sim, fe, sinks = make_fe(n_down=4, n_up=0)
        fe.set_static_reachability(
            {5: list(fe.down_ports)}, up_reaches_everything=False
        )
        for _ in range(40):
            fe.receive(data_cell(5), None)
        sim.run()
        counts = [len(s.cells) for s in sinks]
        assert counts == [10, 10, 10, 10]  # perfect balance

    def test_invalid_port_direction_rejected(self):
        sim, fe, _ = make_fe()
        sink = Sink(sim, "x")
        out = Link(sim, fe, sink, gbps(50))
        inbound = Link(sim, sink, fe, gbps(50))
        with pytest.raises(ValueError):
            fe.add_port(neighbor=1, out=out, inbound=inbound,
                        direction="sideways")


class TestFci:
    def test_cells_marked_above_threshold(self):
        cfg = StardustConfig(fci_threshold_cells=3)
        sim, fe, sinks = make_fe(config=cfg, n_down=1, n_up=0)
        fe.set_static_reachability(
            {5: list(fe.down_ports)}, up_reaches_everything=False
        )
        cells = [data_cell(5, size=200) for _ in range(10)]
        for cell in cells:
            fe.receive(cell, None)
        # The first few go out unmarked; once the link queue passes the
        # threshold, later cells carry FCI.
        assert fe.cells_fci_marked > 0
        assert any(c.fci for c in cells)
        assert not cells[0].fci

    def test_no_marks_below_threshold(self):
        cfg = StardustConfig(fci_threshold_cells=1000)
        sim, fe, sinks = make_fe(config=cfg, n_down=1, n_up=0)
        fe.set_static_reachability(
            {5: list(fe.down_ports)}, up_reaches_everything=False
        )
        for _ in range(10):
            fe.receive(data_cell(5), None)
        assert fe.cells_fci_marked == 0


class TestStats:
    def test_forwarded_counter(self):
        sim, fe, sinks = make_fe()
        fe.set_static_reachability(
            {5: [fe.down_ports[0]]}, up_reaches_everything=False
        )
        for _ in range(7):
            fe.receive(data_cell(5), None)
        assert fe.cells_forwarded == 7

    def test_queue_sampling_only_on_down_ports(self):
        sim, fe, sinks = make_fe()
        fe.sample_down_queues = True
        fe.set_static_reachability(
            {5: [fe.down_ports[0]]}, up_reaches_everything=True
        )
        fe.receive(data_cell(5), None)  # down: sampled
        fe.receive(data_cell(9), None)  # up: not sampled
        assert fe.down_queue_depth.count == 1
