"""Shared fixtures: simple hosts and pre-wired Stardust networks."""

from __future__ import annotations

import pytest

from repro.core.network import OneTierSpec, StardustNetwork, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.net.packet import Packet
from repro.sim.entity import Entity


class RecordingHost(Entity):
    """A host that records everything delivered to it."""

    def __init__(self, sim, name, address):
        super().__init__(sim, name)
        self.address = address
        self.received = []

    def receive(self, packet, link):
        self.received.append((self.sim.now, packet))

    def send(self, packet: Packet) -> None:
        self.ports[0].send(packet, packet.wire_bytes)

    def send_to(self, dst: PortAddress, size_bytes: int, **kw) -> Packet:
        packet = Packet(
            size_bytes=size_bytes,
            src=self.address,
            dst=dst,
            created_ns=self.sim.now,
            **kw,
        )
        self.send(packet)
        return packet


def build_network(spec, config=None, reachability="static", **kw):
    """A StardustNetwork with a RecordingHost on every port."""
    net = StardustNetwork(spec, config=config, reachability=reachability, **kw)
    hosts = {}
    for fa_idx in range(len(net.fas)):
        for port in range(spec.hosts_per_fa):
            addr = PortAddress(fa_idx, port)
            host = RecordingHost(net.sim, f"h{fa_idx}.{port}", addr)
            net.attach_host(addr, host)
            hosts[addr] = host
    return net, hosts


@pytest.fixture
def small_one_tier():
    spec = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=2)
    return build_network(spec)


@pytest.fixture
def small_two_tier():
    spec = TwoTierSpec(
        pods=2, fas_per_pod=4, fes_per_pod=2, spines=2, hosts_per_fa=2
    )
    return build_network(spec)
