"""Unit tests for the discrete-event engine."""

import random

import pytest

from repro.sim.engine import PeriodicTask, SimError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(100, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_run_until_stops_and_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(50, lambda: fired.append(50))
    sim.run(until=20)
    assert fired == [10]
    assert sim.now == 20
    sim.run()
    assert fired == [10, 50]


def test_run_until_inclusive_of_boundary_event():
    sim = Simulator()
    fired = []
    sim.schedule(20, lambda: fired.append(20))
    sim.run(until=20)
    assert fired == [20]


def test_run_advances_clock_to_horizon_when_queue_drains():
    sim = Simulator()
    sim.run(until=1000)
    assert sim.now == 1000


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append("no"))
    event.cancel()
    sim.schedule(20, lambda: fired.append("yes"))
    sim.run()
    assert fired == ["yes"]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-1, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(5, lambda: order.append("second"))

    sim.schedule(10, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 15


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule(7, outer)
    sim.run()
    assert times == [7]


def test_events_fired_counter():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_fired == 10


def test_max_events_limits_run():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


class TestFastSchedulingPath:
    """call_later / schedule_at: no Event handle, same total order."""

    def test_fast_and_slow_paths_share_one_sequence_space(self):
        sim = Simulator()
        order = []
        sim.schedule(10, lambda: order.append("a"))
        sim.call_later(10, lambda: order.append("b"))
        sim.schedule_at(10, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("d"))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_call_later_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.call_later(-1, lambda: None)

    def test_schedule_at_past_raises(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.schedule_at(5, lambda: None)

    def test_fast_path_returns_no_handle(self):
        sim = Simulator()
        assert sim.call_later(5, lambda: None) is None
        assert sim.schedule_at(5, lambda: None) is None


class TestLazyDeletionAccounting:
    """Cancel/reschedule churn: no inflated counters, no leaked heap."""

    def test_set_period_churn_never_inflates_events_fired(self):
        # A DCQCN-style rate-update storm: hundreds of set_period calls,
        # each shortening cancels the pending tick and re-arms it.  Only
        # callbacks that actually executed may count.
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 1000, lambda: ticks.append(sim.now))

        def churn():
            for step in range(400):
                task.set_period(1000 - step)  # always shorter: re-arms

        sim.schedule(5, churn)
        sim.run(until=5000)
        assert sim.events_fired == len(ticks) + 1  # ticks + churn driver
        task.stop()

    def test_cancelled_events_do_not_leak_past_run_until(self):
        sim = Simulator()
        for i in range(10):
            sim.at(10_000 + i, lambda: None)
        doomed = [sim.at(50_000 + i, lambda: None) for i in range(5000)]
        for event in doomed:
            event.cancel()
        sim.run(until=100)
        # The corpses were compacted away, not retained until t=50000.
        assert sim.pending_live == 10
        assert sim.pending <= 10 + 2 * Simulator.COMPACT_MIN_CANCELLED
        assert sim.events_fired == 0

    def test_heap_compacts_when_cancelled_events_dominate(self):
        sim = Simulator()
        keep = Simulator.COMPACT_MIN_CANCELLED
        events = [sim.at(100 + i, lambda: None) for i in range(4 * keep)]
        for event in events[keep:]:
            event.cancel()
        # More than half the heap was cancelled -> compaction ran.
        assert sim.pending < len(events)
        assert sim.pending_live == keep
        sim.run()
        assert sim.events_fired == keep

    def test_compaction_preserves_total_firing_order(self):
        rng = random.Random(3)
        sim = Simulator()
        fired = []
        expected = []
        events = []
        for seq in range(2000):
            t = rng.randrange(0, 200)
            tag = (t, seq)
            events.append((sim.at(t, lambda tag=tag: fired.append(tag)), tag))
        for event, tag in events:
            if rng.random() < 0.7:
                event.cancel()
            else:
                expected.append(tag)
        sim.run()
        assert fired == sorted(expected)
        assert sim.events_fired == len(expected)
        assert sim.pending == 0

    def test_cancel_is_idempotent_in_the_accounting(self):
        sim = Simulator()
        event = sim.schedule(10, lambda: None)
        survivor = sim.schedule(20, lambda: None)
        for _ in range(5):
            event.cancel()
        assert sim.pending_live == 1
        sim.run()
        assert sim.events_fired == 1
        assert survivor.time_ns == 20

    def test_cancelling_a_fired_event_is_free(self):
        # Stale handles (RTO guards kept past their firing) must not be
        # booked as heap corpses when finally cancelled.
        sim = Simulator()
        events = [sim.schedule(i + 1, lambda: None) for i in range(8)]
        sim.run()
        for event in events:
            event.cancel()
        assert sim.pending == 0
        assert sim.pending_live == 0
        assert sim.events_fired == 8

    def test_max_events_stop_does_not_lose_the_boundary_event(self):
        # Regression: the old loop popped the (max_events+1)-th event
        # before noticing the budget was spent, silently dropping it.
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i + 1, lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]
        sim.run()
        assert fired == list(range(10))


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.run(until=450)
        assert ticks == [100, 200, 300, 400]

    def test_phase_controls_first_firing(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 100, lambda: ticks.append(sim.now), phase_ns=10)
        sim.run(until=250)
        assert ticks == [10, 110, 210]

    def test_stop_halts_future_ticks(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 50, lambda: ticks.append(sim.now))
        sim.schedule(120, task.stop)
        sim.run(until=500)
        assert ticks == [50, 100]

    def test_set_period_takes_effect_next_rearm(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.schedule(150, lambda: task.set_period(200))
        sim.run(until=700)
        assert ticks == [100, 200, 400, 600]

    def test_set_period_shorter_rearms_pending_tick(self):
        # Shortening must apply to the tick already in flight, not one
        # stale period later: armed at t=100 for t=200, shortened to 30
        # at t=150 -> due time 100+30=130 is past, so it fires now.
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.schedule(150, lambda: task.set_period(30))
        sim.run(until=250)
        assert ticks == [100, 150, 180, 210, 240]

    def test_set_period_shorter_before_elapsed_moves_tick_up(self):
        # Shortened before the new period has elapsed: the pending tick
        # moves from armed_at+old to armed_at+new, not to "now".
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.schedule(120, lambda: task.set_period(50))
        sim.run(until=300)
        assert ticks == [100, 150, 200, 250, 300]

    def test_set_period_from_within_callback(self):
        # Changing the period inside the callback affects the re-arm
        # without double-scheduling.
        sim = Simulator()
        ticks = []
        task = None

        def fire():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.set_period(25)

        task = PeriodicTask(sim, 100, fire)
        sim.run(until=300)
        assert ticks == [100, 200, 225, 250, 275, 300]

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            PeriodicTask(sim, 0, lambda: None)
