"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import PeriodicTask, SimError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(100, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_run_until_stops_and_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(50, lambda: fired.append(50))
    sim.run(until=20)
    assert fired == [10]
    assert sim.now == 20
    sim.run()
    assert fired == [10, 50]


def test_run_until_inclusive_of_boundary_event():
    sim = Simulator()
    fired = []
    sim.schedule(20, lambda: fired.append(20))
    sim.run(until=20)
    assert fired == [20]


def test_run_advances_clock_to_horizon_when_queue_drains():
    sim = Simulator()
    sim.run(until=1000)
    assert sim.now == 1000


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10, lambda: fired.append("no"))
    event.cancel()
    sim.schedule(20, lambda: fired.append("yes"))
    sim.run()
    assert fired == ["yes"]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-1, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(5, lambda: order.append("second"))

    sim.schedule(10, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 15


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule(7, outer)
    sim.run()
    assert times == [7]


def test_events_fired_counter():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.events_fired == 10


def test_max_events_limits_run():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(i + 1, lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.run(until=450)
        assert ticks == [100, 200, 300, 400]

    def test_phase_controls_first_firing(self):
        sim = Simulator()
        ticks = []
        PeriodicTask(sim, 100, lambda: ticks.append(sim.now), phase_ns=10)
        sim.run(until=250)
        assert ticks == [10, 110, 210]

    def test_stop_halts_future_ticks(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 50, lambda: ticks.append(sim.now))
        sim.schedule(120, task.stop)
        sim.run(until=500)
        assert ticks == [50, 100]

    def test_set_period_takes_effect_next_rearm(self):
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.schedule(150, lambda: task.set_period(200))
        sim.run(until=700)
        assert ticks == [100, 200, 400, 600]

    def test_set_period_shorter_rearms_pending_tick(self):
        # Shortening must apply to the tick already in flight, not one
        # stale period later: armed at t=100 for t=200, shortened to 30
        # at t=150 -> due time 100+30=130 is past, so it fires now.
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.schedule(150, lambda: task.set_period(30))
        sim.run(until=250)
        assert ticks == [100, 150, 180, 210, 240]

    def test_set_period_shorter_before_elapsed_moves_tick_up(self):
        # Shortened before the new period has elapsed: the pending tick
        # moves from armed_at+old to armed_at+new, not to "now".
        sim = Simulator()
        ticks = []
        task = PeriodicTask(sim, 100, lambda: ticks.append(sim.now))
        sim.schedule(120, lambda: task.set_period(50))
        sim.run(until=300)
        assert ticks == [100, 150, 200, 250, 300]

    def test_set_period_from_within_callback(self):
        # Changing the period inside the callback affects the re-arm
        # without double-scheduling.
        sim = Simulator()
        ticks = []
        task = None

        def fire():
            ticks.append(sim.now)
            if len(ticks) == 2:
                task.set_period(25)

        task = PeriodicTask(sim, 100, fire)
        sim.run(until=300)
        assert ticks == [100, 200, 225, 250, 275, 300]

    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            PeriodicTask(sim, 0, lambda: None)
