"""Unit/integration tests for the Ethernet switch and push fabric."""

import pytest

from repro.baselines.ethernet import EthConfig
from repro.baselines.push_fabric import PushFabricNetwork
from repro.core.network import OneTierSpec, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import MICROSECOND, MILLISECOND, gbps

from tests.conftest import RecordingHost


def build_push(spec, config=None, **kw):
    net = PushFabricNetwork(spec, config=config, **kw)
    hosts = {}
    for t in range(len(net.tors)):
        for p in range(spec.hosts_per_fa):
            addr = PortAddress(t, p)
            host = RecordingHost(net.sim, f"h{t}.{p}", addr)
            net.attach_host(addr, host)
            hosts[addr] = host
    return net, hosts


class TestEthConfig:
    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            EthConfig(port_buffer_bytes=0)

    def test_invalid_lb_mode(self):
        with pytest.raises(ValueError):
            EthConfig(load_balance="flows")


class TestPushFabricDelivery:
    def test_single_packet_one_tier(self):
        spec = OneTierSpec(num_fas=4, uplinks_per_fa=4, hosts_per_fa=2)
        net, hosts = build_push(spec)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 1)
        src.send_to(dst, 1000)
        net.run(100 * MICROSECOND)
        assert len(hosts[dst].received) == 1

    def test_single_packet_two_tier_cross_pod(self):
        spec = TwoTierSpec(
            pods=2, fas_per_pod=2, fes_per_pod=2, spines=2, hosts_per_fa=1
        )
        net, hosts = build_push(spec)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(3, 0)
        src.send_to(dst, 1500)
        net.run(100 * MICROSECOND)
        assert len(hosts[dst].received) == 1

    def test_local_switching_within_tor(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=2)
        net, hosts = build_push(spec)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(0, 1)
        src.send_to(dst, 800)
        net.run(100 * MICROSECOND)
        assert len(hosts[dst].received) == 1
        # Fabric saw nothing.
        assert all(s.forwarded == 0 for s in net.fabric)

    def test_flow_pinned_to_one_path(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=4, hosts_per_fa=1)
        net, hosts = build_push(spec)
        src = hosts[PortAddress(0, 0)]
        for _ in range(50):
            src.send_to(PortAddress(1, 0), 1000, flow_id=77)
        net.run(1 * MILLISECOND)
        used = [up.out.tx_frames for up in net.tors[0].up_ports]
        assert sorted(used, reverse=True)[0] == 50  # all on one uplink
        assert sum(1 for u in used if u) == 1

    def test_packet_spray_mode_spreads(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=4, hosts_per_fa=1)
        cfg = EthConfig(load_balance="packet")
        net, hosts = build_push(spec, config=cfg)
        src = hosts[PortAddress(0, 0)]
        for _ in range(40):
            src.send_to(PortAddress(1, 0), 1000, flow_id=77)
        net.run(1 * MILLISECOND)
        used = [up.out.tx_frames for up in net.tors[0].up_ports]
        assert min(used) >= 5  # spread across all four uplinks


class TestDropTailAndEcn:
    def test_oversubscribed_port_drops(self):
        # Two hosts blast one destination port: 2:1 oversubscription at
        # the destination ToR's host port must drop roughly half.
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=4, hosts_per_fa=1)
        cfg = EthConfig(port_buffer_bytes=20_000, ecn_threshold_bytes=None)
        net, hosts = build_push(spec, config=cfg)
        dst = PortAddress(2, 0)
        for src_fa in (0, 1):
            src = hosts[PortAddress(src_fa, 0)]
            for _ in range(200):
                src.send_to(dst, 1500, flow_id=src_fa)
        net.run(5 * MILLISECOND)
        got = len(hosts[dst].received)
        assert net.total_drops() > 0
        assert got < 400

    def test_ecn_marks_above_threshold(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=1, hosts_per_fa=1)
        cfg = EthConfig(port_buffer_bytes=10**9, ecn_threshold_bytes=10_000)
        net, hosts = build_push(spec, config=cfg)
        dst = PortAddress(2, 0)
        for src_fa in (0, 1):
            for _ in range(100):
                hosts[PortAddress(src_fa, 0)].send_to(dst, 1500, flow_id=src_fa)
        net.run(5 * MILLISECOND)
        marked = [p for _, p in hosts[dst].received if p.ecn]
        assert marked  # congestion was signalled
        assert net.fabric[0].ecn_marked > 0

    def test_no_marks_when_uncongested(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        net, hosts = build_push(spec)
        hosts[PortAddress(0, 0)].send_to(PortAddress(1, 0), 1000)
        net.run(1 * MILLISECOND)
        assert all(not p.ecn for _, p in hosts[PortAddress(1, 0)].received)


class TestFig7Scenario:
    """§5.2: congested port A must not hurt uncongested port B."""

    def _run(self, network_kind):
        # Ports A and B on the destination device; A is 2:1
        # oversubscribed, B is cleanly loaded at line rate.
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=2, hosts_per_fa=2)
        if network_kind == "push":
            cfg = EthConfig(port_buffer_bytes=30_000,
                            ecn_threshold_bytes=None)
            net, hosts = build_push(
                spec, config=cfg,
                fabric_link_rate_bps=gbps(10),
                host_link_rate_bps=gbps(10),
            )
        else:
            from repro.core.config import StardustConfig
            from tests.conftest import build_network

            cfg = StardustConfig(
                fabric_link_rate_bps=gbps(10), host_link_rate_bps=gbps(10)
            )
            net, hosts = build_network(spec, config=cfg)
        a = PortAddress(2, 0)
        b = PortAddress(2, 1)
        # A is oversubscribed 2:1 by many flows from two sources (so
        # ECMP puts A-traffic on every fabric path); B is cleanly
        # loaded at line rate by one flow.
        duration = 2 * MILLISECOND

        def blast(src, dst, flow_ids):
            n = int(gbps(10) / 8 * (duration / 1e9) / 1520) + 50
            for i in range(n):
                hosts[src].send_to(
                    dst, 1500, flow_id=flow_ids[i % len(flow_ids)]
                )

        blast(PortAddress(0, 0), a, list(range(10, 18)))
        blast(PortAddress(0, 1), b, [2])
        blast(PortAddress(1, 0), a, list(range(30, 38)))
        net.run(2 * duration)
        got_b = sum(
            p.size_bytes for _, p in hosts[b].received
        ) * 8 / (2 * duration / 1e9)
        got_a = sum(
            p.size_bytes for _, p in hosts[a].received
        ) * 8 / (2 * duration / 1e9)
        return got_a, got_b

    def test_stardust_protects_victim_port(self):
        got_a, got_b = self._run("stardust")
        # B gets (nearly) everything it asked for; A is bounded by its
        # port rate.
        assert got_b > 0.85 * gbps(5)  # half window of full rate
        assert got_a <= gbps(10) * 1.02

    def test_push_fabric_hurts_victim_port(self):
        got_a_push, got_b_push = self._run("push")
        _, got_b_star = self._run("stardust")
        # The pushed fabric delivers measurably less of B's traffic
        # than Stardust does (Fig 7's 66% vs 100%).
        assert got_b_push < 0.9 * got_b_star
