"""Tests for workload generators and distributions."""

import random

import pytest

from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, StardustNetwork
from repro.net.addressing import PortAddress
from repro.sim.units import MILLISECOND, gbps
from repro.workloads.distributions import (
    EmpiricalDistribution,
    FLOW_SIZES,
    PACKET_SIZE_MIXES,
    flow_size_distribution,
    packet_size_distribution,
)
from repro.workloads.generator import RateInjector, UniformRandomTraffic
from repro.workloads.permutation import derangement, host_permutation


class TestEmpiricalDistribution:
    def test_samples_come_from_support(self):
        dist = packet_size_distribution("web")
        rng = random.Random(1)
        for _ in range(500):
            assert dist.sample(rng) in dist.support

    def test_sampling_matches_cdf(self):
        dist = EmpiricalDistribution([(10, 0.5), (20, 1.0)])
        rng = random.Random(42)
        draws = [dist.sample(rng) for _ in range(10_000)]
        frac_small = sum(1 for d in draws if d == 10) / len(draws)
        assert frac_small == pytest.approx(0.5, abs=0.02)

    def test_mean(self):
        dist = EmpiricalDistribution([(10, 0.5), (20, 1.0)])
        assert dist.mean() == pytest.approx(15.0)

    def test_bad_cdfs_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])
        with pytest.raises(ValueError):
            EmpiricalDistribution([(10, 0.8)])  # doesn't reach 1.0
        with pytest.raises(ValueError):
            EmpiricalDistribution([(10, 0.9), (20, 0.5)])  # decreasing

    def test_all_named_mixes_are_valid(self):
        for name in PACKET_SIZE_MIXES:
            packet_size_distribution(name)
        for name in FLOW_SIZES:
            flow_size_distribution(name)

    def test_web_packets_smaller_than_hadoop(self):
        web = packet_size_distribution("web")
        hadoop = packet_size_distribution("hadoop")
        assert web.mean() < hadoop.mean()

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            packet_size_distribution("nosuch")
        with pytest.raises(ValueError):
            flow_size_distribution("nosuch")

    def test_web_flows_heavy_tailed(self):
        dist = flow_size_distribution("web")
        rng = random.Random(3)
        draws = [dist.sample_int(rng) for _ in range(20_000)]
        median = sorted(draws)[len(draws) // 2]
        mean = sum(draws) / len(draws)
        assert mean > 5 * median  # heavy tail


class TestDerangement:
    def test_no_fixed_points(self):
        rng = random.Random(1)
        for n in (2, 5, 16, 100):
            perm = derangement(n, rng)
            assert all(i != p for i, p in enumerate(perm))
            assert sorted(perm) == list(range(n))

    def test_forbid_constraint_respected(self):
        rng = random.Random(1)
        # Forbid mapping into the same parity class.
        perm = derangement(10, rng, forbid=lambda i, j: i % 2 == j % 2)
        assert all(i % 2 != p % 2 for i, p in enumerate(perm))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            derangement(1, random.Random(1))

    def test_host_permutation_cross_fa(self):
        addrs = [PortAddress(f, p) for f in range(4) for p in range(2)]
        mapping = host_permutation(addrs, random.Random(5))
        assert set(mapping) == set(addrs)
        assert set(mapping.values()) == set(addrs)
        for src, dst in mapping.items():
            assert src.fa != dst.fa


class TestRateInjector:
    def test_injection_rate_tracks_utilization(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        cfg = StardustConfig(
            fabric_link_rate_bps=gbps(10), host_link_rate_bps=gbps(10)
        )
        net = StardustNetwork(spec, config=cfg)
        addrs = [PortAddress(0, 0), PortAddress(1, 0)]
        traffic = UniformRandomTraffic(
            net, addrs, utilization=0.5, packet_bytes=1000, seed=9
        )
        traffic.start()
        duration = 4 * MILLISECOND
        net.run(duration)
        sent_bytes = sum(i.bytes_sent for i in traffic.injectors)
        rate = sent_bytes * 8 / (duration / 1e9)
        assert rate == pytest.approx(2 * 0.5 * gbps(10), rel=0.1)

    def test_traffic_is_delivered(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        cfg = StardustConfig(
            fabric_link_rate_bps=gbps(10), host_link_rate_bps=gbps(10)
        )
        net = StardustNetwork(spec, config=cfg)
        addrs = [PortAddress(f, 0) for f in range(3)]
        traffic = UniformRandomTraffic(net, addrs, utilization=0.3, seed=2)
        traffic.start()
        net.run(2 * MILLISECOND)
        traffic.stop()
        net.run(2 * MILLISECOND)
        assert traffic.total_received() > 0.9 * traffic.total_sent()

    def test_zero_utilization_sends_nothing(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        net = StardustNetwork(spec)
        addrs = [PortAddress(0, 0), PortAddress(1, 0)]
        traffic = UniformRandomTraffic(net, addrs, utilization=0.0)
        traffic.start()
        net.run(1 * MILLISECOND)
        assert traffic.total_sent() == 0

    def test_destinations_exclude_own_fa(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=2)
        net = StardustNetwork(spec)
        addrs = [PortAddress(f, p) for f in range(2) for p in range(2)]
        traffic = UniformRandomTraffic(net, addrs, utilization=0.1)
        for injector in traffic.injectors:
            assert all(
                d.fa != injector.address.fa for d in injector.destinations
            )

    def test_negative_utilization_rejected(self):
        from repro.sim.engine import Simulator

        with pytest.raises(ValueError):
            RateInjector(
                Simulator(), "x", PortAddress(0, 0),
                [PortAddress(1, 0)], gbps(10), -0.1, random.Random(1),
            )
