"""Invariants of the calendar-wheel scheduler and cell trains.

The engine replaced one global binary heap with a calendar wheel plus a
spill heap (see :mod:`repro.sim.engine`); every golden trace depends on
the merged structure still firing in the exact ``(time_ns, seq)`` total
order.  These tests pin that contract at its seams — same-timestamp
FIFO across bucket boundaries, wheel-horizon spills, cancellation
churn, ``run(until=...)`` at rotation edges — mirroring the
seeded-random style of ``tests/test_invariants.py``, plus the
link-level train-splitting guarantees under ``set_rate``/``fail()``.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import SimError, Simulator
from repro.sim.entity import Entity
from repro.sim.kernel import get_kernel, kernel_names
from repro.sim.link import Link
from repro.sim.units import gbps

SLOT = Simulator.WHEEL_SLOT_NS
HORIZON = Simulator.WHEEL_SLOT_NS * Simulator.WHEEL_SLOTS


@pytest.fixture(params=kernel_names())
def sim_cls(request):
    """Each registered engine kernel's simulator class.

    Every invariant in this module is part of the kernel contract
    (see :mod:`repro.sim.kernel.registry`): the whole suite must pass
    identically — same timestamps, same counters — for every kernel.
    """
    return get_kernel(request.param).cls


# ----------------------------------------------------------------------
# Total order across the wheel's seams
# ----------------------------------------------------------------------


def test_same_timestamp_fifo_across_bucket_boundaries(sim_cls):
    """Events at one instant fire in schedule order, wherever the
    instant falls relative to bucket edges."""
    for t in (SLOT - 1, SLOT, SLOT + 1, 5 * SLOT, 5 * SLOT + 7):
        sim = sim_cls()
        order = []
        for tag in range(6):
            # Alternate fast-path and handle-path scheduling: both
            # share one sequence space.
            if tag % 2:
                sim.schedule_at(t, lambda tag=tag: order.append(tag))
            else:
                sim.at(t, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == list(range(6)), f"FIFO broken at t={t}"


def test_boundary_straddling_times_fire_in_time_order(sim_cls):
    sim = sim_cls()
    fired = []
    times = [SLOT + 1, SLOT - 1, SLOT, 2 * SLOT, 0, 3 * SLOT - 1]
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)


def test_wheel_wrap_preserves_order(sim_cls):
    """Times one full rotation apart share a ring slot; the later one
    must wait for the next rotation, not jump the queue."""
    sim = sim_cls()
    fired = []
    sim.schedule_at(HORIZON + 5, lambda: fired.append("far"))  # spills
    sim.schedule_at(5, lambda: fired.append("near"))
    sim.schedule_at(HORIZON - 1, lambda: fired.append("edge"))
    sim.run()
    assert fired == ["near", "edge", "far"]


def test_seeded_random_schedule_storm_fires_in_total_order(sim_cls):
    """Randomized mix of both scheduling surfaces, near and far times,
    with random cancellations: survivors fire in exact (t, seq) order
    and the accounting conserves events."""
    rng = random.Random(11)
    sim = sim_cls()
    fired = []
    expected = []
    scheduled = cancelled = 0
    handles = []
    for seq in range(4000):
        # Bias toward the wheel but cross the horizon regularly.
        t = rng.randrange(0, HORIZON * 2 if seq % 5 == 0 else 3000)
        tag = (t, seq)
        scheduled += 1
        if rng.random() < 0.5:
            sim.schedule_at(t, lambda tag=tag: fired.append(tag))
            expected.append(tag)
        else:
            handles.append(
                (sim.at(t, lambda tag=tag: fired.append(tag)), tag)
            )
    for handle, tag in handles:
        if rng.random() < 0.6:
            handle.cancel()
            cancelled += 1
        else:
            expected.append(tag)
    sim.run()
    assert fired == sorted(expected)
    assert sim.events_fired == scheduled - cancelled
    assert sim.pending_events == 0


def test_events_scheduled_from_callbacks_interleave_exactly(sim_cls):
    """Sub-slot re-scheduling (the cell-train pattern) interleaves with
    already-queued same-bucket events in time order."""
    sim = sim_cls()
    fired = []

    def chain(n):
        fired.append(("chain", sim.now))
        if n:
            sim.call_later(7, lambda: chain(n - 1))

    for t in range(0, 200, 10):
        sim.schedule_at(t, lambda t=t: fired.append(("fixed", t)))
    sim.schedule_at(3, lambda: chain(20))
    sim.run()
    times = [t for _, t in fired]
    assert times == sorted(times)
    assert len(fired) == 20 + 21


# ----------------------------------------------------------------------
# Cancellation churn and compaction
# ----------------------------------------------------------------------


def test_cancel_then_compact_under_churn_keeps_order_and_counts(sim_cls):
    rng = random.Random(7)
    sim = sim_cls()
    fired = []
    expected = []
    live = []

    def churn():
        # Cancel from inside a callback, forcing compaction mid-run.
        for handle, _ in live:
            handle.cancel()

    for seq in range(3000):
        t = rng.randrange(10, 5000)
        tag = (t, seq)
        handle = sim.at(t, lambda tag=tag: fired.append(tag))
        if rng.random() < 0.8:
            live.append((handle, tag))
        else:
            expected.append((t, seq))
    sim.at(5, churn)
    sim.run()
    assert fired == sorted(expected)
    assert sim.pending_events == 0
    assert sim.pending <= Simulator.COMPACT_MIN_CANCELLED * 2


def test_compact_with_offsetting_pushes_mid_drain_keeps_order(sim_cls):
    """Regression (batch kernel drain bound): a callback that cancels
    past ``COMPACT_MIN_CANCELLED`` (so compaction removes N corpses in
    place) and pushes an offsetting number of new spill entries leaves
    ``len(spill)`` unchanged while installing an *earlier* spill head.
    A drain bound watching only the heap's length then fires the rest
    of the bucket (67/68/70) before the earlier spill event (66),
    sending the clock non-monotonic and diverging from the wheel
    kernel's (time, seq) order."""
    sim = sim_cls()
    fired = []
    n = Simulator.COMPACT_MIN_CANCELLED + 1
    far = 1_000_000
    handles = [sim.at(far + i, lambda: None) for i in range(n + 4)]

    def storm():
        fired.append(sim.now)
        # Cancel enough to cross the compaction threshold: the corpses
        # are dropped from the spill heap in place...
        for handle in handles[:n]:
            handle.cancel()
        # ...and an equal number of pushes restores len(spill) exactly,
        # with the new head (t=66) earlier than the remainder of the
        # bucket currently being drained.
        sim.at(66, lambda: fired.append(sim.now))
        for i in range(n - 1):
            sim.at(2 * far + i, lambda: None)

    sim.schedule_at(64, lambda: fired.append(sim.now))
    sim.schedule_at(65, storm)
    for t in (67, 68, 70):
        sim.schedule_at(t, lambda: fired.append(sim.now))
    sim.run(until=100)
    assert fired == [64, 65, 66, 67, 68, 70]
    assert fired == sorted(fired), "sim clock went non-monotonic"


def test_pending_events_excludes_corpses_exactly(sim_cls):
    """Regression (engine accounting): the raw structure length counts
    lazily-deleted corpses until compaction happens to run;
    ``pending_events`` / ``len(sim)`` must be exact regardless."""
    sim = sim_cls()
    keep = Simulator.COMPACT_MIN_CANCELLED // 2
    handles = [sim.at(100 + i, lambda: None) for i in range(2 * keep)]
    for handle in handles[keep:]:
        handle.cancel()
    # Below the compaction threshold: corpses are still in the heap.
    assert sim.pending == 2 * keep
    assert sim.pending_events == keep
    assert len(sim) == keep
    # Wheel events count too.
    sim.schedule_at(50, lambda: None)
    assert len(sim) == keep + 1
    sim.run()
    assert sim.pending == 0
    assert sim.pending_events == 0
    assert len(sim) == 0
    assert sim.events_fired == keep + 1


# ----------------------------------------------------------------------
# run(until=...) at rotation edges
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "until",
    [SLOT - 1, SLOT, SLOT + 1, HORIZON - 1, HORIZON, HORIZON + SLOT],
)
def test_run_until_at_bucket_edges_is_inclusive_and_resumable(until, sim_cls):
    sim = sim_cls()
    fired = []
    for t in (until - 1, until, until + 1, until + SLOT):
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run(until=until)
    assert fired == [until - 1, until]
    assert sim.now == until
    sim.run()
    assert fired == [until - 1, until, until + 1, until + SLOT]


def test_run_until_mid_bucket_leaves_same_bucket_remainder(sim_cls):
    """Two events share one bucket; the horizon splits them."""
    sim = sim_cls()
    fired = []
    base = 10 * SLOT
    sim.schedule_at(base + 10, lambda: fired.append("early"))
    sim.schedule_at(base + 20, lambda: fired.append("late"))
    sim.run(until=base + 10)
    assert fired == ["early"]
    # Scheduling into the partially drained bucket keeps order.
    sim.schedule_at(base + 15, lambda: fired.append("wedge"))
    sim.run()
    assert fired == ["early", "wedge", "late"]


def test_run_until_before_any_wheel_event_then_resume_across_wrap(sim_cls):
    sim = sim_cls()
    fired = []
    sim.schedule_at(HORIZON + 10, lambda: fired.append("beyond"))
    sim.run(until=HORIZON // 2)
    assert fired == []
    assert sim.now == HORIZON // 2
    # A new near event lands in the wheel after the clamp and fires
    # before the spilled far event.
    sim.schedule_at(HORIZON // 2 + 5, lambda: fired.append("near"))
    sim.run()
    assert fired == ["near", "beyond"]


def test_max_events_stop_resumes_in_order_across_buckets(sim_cls):
    sim = sim_cls()
    fired = []
    for i in range(20):
        sim.schedule_at(1 + i * (SLOT // 2), lambda i=i: fired.append(i))
    sim.run(max_events=7)
    assert fired == list(range(7))
    sim.run()
    assert fired == list(range(20))


# ----------------------------------------------------------------------
# rearm_at: the train primitive
# ----------------------------------------------------------------------


def test_rearm_at_orders_like_a_fresh_schedule(sim_cls):
    sim = sim_cls()
    order = []
    entry = [0, 0, None]

    def first():
        order.append("first")
        # Recycle the spent entry at the same instant: it must fire
        # after the already-queued same-time event (fresh, larger seq).
        sim.rearm_at(sim.now, entry, lambda: order.append("rearmed"))

    sim.schedule_at(10, first)
    sim.schedule_at(10, lambda: order.append("queued"))
    sim.run()
    assert order == ["first", "queued", "rearmed"]


def test_event_beyond_the_never_sentinel_still_fires(sim_cls):
    """Regression: the int "no horizon" sentinel must behave like the
    old float('inf') — an event at an absurdly large time is still live
    when run() has no `until`, not a crash or a lost event."""
    from repro.sim.engine import _NEVER

    far = _NEVER + 5
    sim = sim_cls()
    fired = []
    sim.schedule_at(far, lambda: fired.append("wheel-far"))
    sim.at(far + 1, lambda: fired.append("spill-far"))
    sim.run()
    assert fired == ["wheel-far", "spill-far"]
    assert sim.now == far + 1


def test_rearm_at_past_raises(sim_cls):
    sim = sim_cls()
    sim.schedule_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimError):
        sim.rearm_at(5, [0, 0, None], lambda: None)


# ----------------------------------------------------------------------
# Cell trains: splitting under mid-train disturbances
# ----------------------------------------------------------------------


class _Recorder(Entity):
    def __init__(self, sim, name="rx"):
        super().__init__(sim, name)
        self.got = []

    def receive(self, payload, link):
        self.got.append((self.sim.now, payload))


def _link(sim, rate=gbps(10), prop=0):
    src = _Recorder(sim, "src")
    dst = _Recorder(sim, "dst")
    return Link(sim, src, dst, rate, propagation_ns=prop), dst


def test_train_delivers_back_to_back_frames_at_exact_times(sim_cls):
    sim = sim_cls()
    link, dst = _link(sim, rate=gbps(10), prop=100)
    for i in range(5):
        link.send(f"f{i}", 1000)  # 800ns each at 10G
    sim.run()
    assert [t for t, _ in dst.got] == [
        900, 1700, 2500, 3300, 4100
    ]
    assert [p for _, p in dst.got] == [f"f{i}" for i in range(5)]


def test_train_splits_on_mid_train_set_rate(sim_cls):
    """Frames serialized after a rate change take the new rate; the
    frame in flight finishes at the old rate."""
    sim = sim_cls()
    link, dst = _link(sim, rate=gbps(10))
    for i in range(4):
        link.send(f"f{i}", 1000)
    # Halve the rate mid-train, while frame 1 serializes.
    sim.at(1200, lambda: link.set_rate(gbps(5)))
    sim.run()
    # f0: 800, f1: 1600 (started before the change), f2/f3: 1600 each.
    assert [t for t, _ in dst.got] == [800, 1600, 3200, 4800]


def test_train_splits_on_mid_train_fail(sim_cls):
    sim = sim_cls()
    link, dst = _link(sim, rate=gbps(10))
    for i in range(6):
        link.send(f"f{i}", 1000)
    sim.at(900, link.fail)  # f1 serializing, f2..f5 queued
    sim.run()
    assert [p for _, p in dst.got] == ["f0"]
    # f1 finished into the dead link, f2..f5 were dropped queued.
    assert link.dropped_frames == 5
    assert link.dropped_bytes == 5000
    assert link.tx_frames == 2  # f0 and f1 left the serializer


def test_train_restarts_cleanly_after_restore(sim_cls):
    """A post-restore train lays a fresh entry while the stale pre-fail
    completion is pending, and both frames resolve correctly."""
    sim = sim_cls()
    link, dst = _link(sim, rate=gbps(10))
    link.send("old", 1000)  # completes at 800
    sim.at(100, link.fail)
    sim.at(200, link.restore)
    sim.at(300, lambda: link.send("new", 500))  # completes at 700
    sim.run()
    # "new" serialized into the live link and was delivered; "old"
    # finished later into... the link is up again, so it delivers too.
    assert [p for _, p in dst.got] == ["new", "old"]
    assert link.tx_frames == 2
    conserved = len(dst.got) + link.dropped_frames + link.queued_frames
    assert conserved == 2


def test_train_conservation_under_seeded_fault_storm(sim_cls):
    """Seeded random sends, fails, restores and rate changes: every
    frame is delivered, dropped, queued or in flight — none vanish,
    none duplicate (the scheduler-churn mirror of the fabric
    conservation tests in test_invariants.py)."""
    rng = random.Random(23)
    sim = sim_cls()
    link, dst = _link(sim, rate=gbps(10), prop=50)
    sent = 0

    def maybe_send():
        nonlocal sent
        if link.up and rng.random() < 0.8:
            link.send(object(), rng.choice([256, 512, 1000]))
            sent += 1

    for t in range(0, 20_000, 100):
        sim.at(t, maybe_send)
        if rng.random() < 0.08:
            sim.at(t + rng.randrange(1, 90), lambda: link.up and link.fail())
        if rng.random() < 0.08:
            sim.at(
                t + rng.randrange(1, 90),
                lambda: link.up or link.restore(),
            )
        if rng.random() < 0.05:
            sim.at(
                t + rng.randrange(1, 90),
                lambda: link.set_rate(rng.choice([gbps(5), gbps(10)])),
            )
    sim.run()
    serializing = (0 if link._ser_done == -1 else 1) + len(link._ser_extra)
    accounted = (
        len(dst.got)
        + link.dropped_frames
        + link.queued_frames
        + len(link._in_flight)
        + serializing
    )
    assert accounted == sent
    assert len(dst.got) > 0
    assert link.dropped_frames > 0
