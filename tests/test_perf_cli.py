"""Tests for the ``python -m repro.perf`` CLI gating logic.

The bench suite itself is exercised by the perf smoke tests; here the
suite is stubbed out so the *gate* semantics — regression detection,
missing-baseline failure, ``--allow-missing``, kernel validation — are
pinned without minutes of wall time.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.perf.__main__ as perf_cli
from repro.perf.__main__ import compare, regressions, unbaselined
from repro.perf.bench import BenchResult, bench_name


def fake_results():
    return [
        BenchResult(name="engine_events", wall_s=1.0, events=100_000),
        BenchResult(name="permutation_default", wall_s=2.0, events=400_000),
    ]


def write_baseline(path: Path, benches: dict) -> None:
    path.write_text(json.dumps({"schema": 1, "benches": benches}))


def baseline_from(results) -> dict:
    return {b.name: b.to_dict() for b in results}


# ----------------------------------------------------------------------
# Pure comparison helpers
# ----------------------------------------------------------------------


class TestCompareHelpers:
    def test_unbaselined_lists_uncovered_benches(self):
        results = fake_results()
        baseline = baseline_from(results[:1])  # only engine_events covered
        rows = compare(results, baseline)
        assert unbaselined(rows) == ["permutation_default"]

    def test_full_coverage_has_no_unbaselined(self):
        results = fake_results()
        rows = compare(results, baseline_from(results))
        assert unbaselined(rows) == []
        assert not regressions(rows)

    def test_kernel_rows_do_not_collide_with_wheel_rows(self):
        # A batch-kernel run produces 'name[batch]' rows, so a wheel
        # baseline never silently gates (or is clobbered by) them.
        assert bench_name("engine_events") == "engine_events"
        assert bench_name("engine_events", "wheel") == "engine_events"
        assert bench_name("engine_events", "batch") == "engine_events[batch]"
        assert bench_name("engine_events", "reference") == "engine_events"


# ----------------------------------------------------------------------
# CLI gate (suite stubbed)
# ----------------------------------------------------------------------


@pytest.fixture
def stub_suite(monkeypatch):
    monkeypatch.setattr(
        perf_cli, "suite", lambda quick, only, kernel=None: fake_results()
    )


@pytest.fixture
def paths(tmp_path):
    return {
        "out": str(tmp_path / "BENCH_perf.json"),
        "baseline": str(tmp_path / "baseline.json"),
    }


def run_cli(paths, *extra):
    return perf_cli.main(
        ["--out", paths["out"], "--baseline", paths["baseline"], *extra]
    )


class TestCheckGate:
    def test_check_fails_without_baseline(self, stub_suite, paths, capsys):
        assert run_cli(paths, "--check") == 1
        assert "no readable baseline" in capsys.readouterr().err

    def test_check_passes_with_full_baseline(self, stub_suite, paths):
        write_baseline(
            Path(paths["baseline"]), baseline_from(fake_results())
        )
        assert run_cli(paths, "--check") == 0

    def test_check_fails_on_missing_bench_row(
        self, stub_suite, paths, capsys
    ):
        # Baseline predates one bench: --check must fail, not silently
        # skip the uncovered bench.
        write_baseline(
            Path(paths["baseline"]), baseline_from(fake_results()[:1])
        )
        assert run_cli(paths, "--check") == 1
        err = capsys.readouterr().err
        assert "no baseline row for: permutation_default" in err
        assert "--allow-missing" in err

    def test_allow_missing_downgrades_to_warning(
        self, stub_suite, paths, capsys
    ):
        write_baseline(
            Path(paths["baseline"]), baseline_from(fake_results()[:1])
        )
        assert run_cli(paths, "--check", "--allow-missing") == 0
        assert "WARNING: no baseline row" in capsys.readouterr().err

    def test_check_fails_on_regression(self, stub_suite, paths, capsys):
        # Baseline claims 3x the throughput the stub delivers.
        benches = baseline_from(fake_results())
        for row in benches.values():
            row["events_per_sec"] *= 3
        write_baseline(Path(paths["baseline"]), benches)
        assert run_cli(paths, "--check") == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_missing_rows_warn_even_without_check(
        self, stub_suite, paths, capsys
    ):
        write_baseline(
            Path(paths["baseline"]), baseline_from(fake_results()[:1])
        )
        assert run_cli(paths) == 0  # informational run still succeeds
        assert "WARNING: no baseline row" in capsys.readouterr().err

    def test_unknown_kernel_rejected(self, stub_suite, paths, capsys):
        assert run_cli(paths, "--kernel", "nope") == 2
        assert "nope" in capsys.readouterr().err

    def test_results_payload_written(self, stub_suite, paths):
        assert run_cli(paths) == 0
        payload = json.loads(Path(paths["out"]).read_text())
        assert set(payload["benches"]) == {
            "engine_events", "permutation_default"
        }
