"""Failure injection: the fabric under partial damage.

§5.10: link errors, device death, reassembly-timeout cleanup, buffer
exhaustion, and degraded-but-alive operation.
"""


from repro.core.config import StardustConfig
from repro.core.network import OneTierSpec, TwoTierSpec
from repro.net.addressing import PortAddress
from repro.sim.units import KB, MICROSECOND, MILLISECOND, gbps

from tests.conftest import build_network


def kill_fa_uplink(net, fa, index):
    """Fail uplink ``index`` of ``fa`` in both directions."""
    dead = fa.uplinks[index]
    dead.fail()
    fe = dead.dst
    for port in fe.fabric_ports:
        if port.out.dst is fa:
            port.out.fail()
    return dead, fe


class TestLinkLoss:
    def test_cells_in_flight_lost_then_stream_recovers(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        cfg = StardustConfig(
            reassembly_timeout_ns=50 * MICROSECOND,
        )
        net, hosts = build_network(spec, config=cfg)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)

        # Launch a stream and kill a link mid-flight (static
        # reachability: the FA stops using it only via link.up).
        for _ in range(30):
            src.send_to(dst, 1400)
        net.sim.run(until=5 * MICROSECOND)
        net.fas[0].uplinks[0].fail()
        net.run(5 * MILLISECOND)

        fa2 = net.fas[2]
        # Some packets may have died with the link, but the stream
        # resumed: late packets delivered, timeouts cleaned up state.
        delivered = len(hosts[dst].received)
        assert delivered >= 25
        assert delivered + fa2.reassembly.packets_discarded >= 30

    def test_reassembly_timeout_bounds_stall(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        cfg = StardustConfig(reassembly_timeout_ns=20 * MICROSECOND)
        net, hosts = build_network(spec, config=cfg)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        for _ in range(10):
            src.send_to(dst, 1400)
        net.sim.run(until=3 * MICROSECOND)
        net.fas[0].uplinks[1].fail()
        net.run(2 * MILLISECOND)
        # Later packets still arrive even if earlier cells were lost.
        assert len(hosts[dst].received) >= 8


class TestDeviceDeath:
    def test_fe_death_heals_in_dynamic_mode(self):
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=3, hosts_per_fa=1)
        net, hosts = build_network(spec, reachability="dynamic")
        net.run(400 * MICROSECOND)  # converge
        # Kill every link of FE 0 (device death: it goes silent).
        fe = net.fes[0]
        for port in fe.fabric_ports:
            port.out.fail()
        for fa in net.fas:
            for up in fa.uplinks:
                if up.dst is fe:
                    up.fail()
        net.run(500 * MICROSECOND)  # detection
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(2, 0)
        for _ in range(50):
            src.send_to(dst, 1000)
        net.run(3 * MILLISECOND)
        assert len(hosts[dst].received) == 50
        # The survivors carried everything.
        assert net.fas[0].eligible_uplinks(2) != []

    def test_degraded_capacity_still_lossless(self):
        spec = TwoTierSpec(
            pods=2, fas_per_pod=2, fes_per_pod=2, spines=2, hosts_per_fa=1
        )
        net, hosts = build_network(spec, reachability="dynamic")
        net.run(400 * MICROSECOND)
        # Remove one spine entirely.
        spine = [fe for fe in net.fes if fe.tier == 2][0]
        for port in spine.fabric_ports:
            port.out.fail()
        for fe in net.fes:
            for port in fe.fabric_ports:
                if port.out.dst is spine:
                    port.out.fail()
        net.run(500 * MICROSECOND)
        src = hosts[PortAddress(0, 0)]
        dst = PortAddress(3, 0)  # cross-pod: must cross a spine
        for _ in range(40):
            src.send_to(dst, 1000)
        net.run(3 * MILLISECOND)
        assert len(hosts[dst].received) == 40
        assert net.fabric_cell_drops() == 0


class TestBufferExhaustion:
    def test_ingress_drops_on_persistent_oversubscription(self):
        # §3.1: "Long-term over-subscription from the hosts ... packets
        # will be dropped in the Fabric Adapter."
        spec = OneTierSpec(num_fas=3, uplinks_per_fa=2, hosts_per_fa=2)
        cfg = StardustConfig(
            ingress_buffer_bytes=20 * KB,
            fabric_link_rate_bps=gbps(10),
            host_link_rate_bps=gbps(10),
        )
        net, hosts = build_network(spec, config=cfg)
        dst = PortAddress(2, 0)  # one 10G port...
        for fa in (0, 1):
            for p in range(2):
                src = hosts[PortAddress(fa, p)]
                for _ in range(300):  # ...offered 40G for a while
                    src.send_to(dst, 1400)
        net.run(5 * MILLISECOND)
        assert net.ingress_drops() > 0
        assert net.fabric_cell_drops() == 0  # the fabric itself: never

    def test_empty_voqs_use_no_buffer(self):
        spec = OneTierSpec(num_fas=2, uplinks_per_fa=2, hosts_per_fa=1)
        net, hosts = build_network(spec)
        hosts[PortAddress(0, 0)].send_to(PortAddress(1, 0), 1000)
        net.run(2 * MILLISECOND)
        # Everything delivered: the shared pool is fully released.
        assert net.fas[0].buffer_pool.used_bytes == 0
