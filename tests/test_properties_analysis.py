"""Property-based tests on the analytical models and scaling math."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mdq import (
    md1_mean_queue,
    md1_queue_distribution,
    md1_tail_probability,
)
from repro.core.packing import cells_for_bytes
from repro.pipeline.parallelism import (
    standard_parallelism,
    stardust_parallelism,
)
from repro.topology.scaling import (
    fabric_switches,
    link_bundles,
    links_per_tor,
    max_tors,
    switches_per_tor,
)

radices = st.sampled_from([4, 8, 16, 32, 64, 128, 256])
uplinks = st.integers(min_value=1, max_value=64)
tiers = st.integers(min_value=1, max_value=6)
loads = st.floats(min_value=0.01, max_value=0.97)


class TestScalingProperties:
    @given(k=radices, n=tiers)
    def test_max_tors_monotone_in_tiers(self, k, n):
        assert max_tors(k, n + 1) >= max_tors(k, n)

    @given(k=radices, n=tiers)
    def test_max_tors_closed_form(self, k, n):
        assert max_tors(k, n) == 2 * (k // 2) ** n

    @given(k=radices, t=uplinks, n=st.integers(min_value=1, max_value=4))
    def test_switch_count_matches_per_tor_ratio(self, k, t, n):
        total = fabric_switches(k, t, n)
        per_tor = switches_per_tor(k, t, n)
        assert total == per_tor * max_tors(k, n)

    @given(k=radices, t=uplinks, l=st.integers(1, 8),
           n=st.integers(min_value=1, max_value=4))
    def test_links_bundles_consistency(self, k, t, l, n):
        assert links_per_tor(k, t, l, n) * max_tors(k, n) == (
            link_bundles(k, t, n) * l
        )

    @given(k=radices, n=st.integers(min_value=1, max_value=4))
    def test_halving_radix_costs_2_to_n(self, k, n):
        if k >= 8:
            ratio = max_tors(k, n) / max_tors(k // 2, n)
            assert ratio == 2**n


class TestMD1Properties:
    @settings(max_examples=25)
    @given(rho=loads)
    def test_distribution_is_normalized_probability(self, rho):
        dist = md1_queue_distribution(rho, 150)
        assert all(p >= 0 for p in dist)
        assert abs(sum(dist) - 1.0) < 1e-9

    @settings(max_examples=25)
    @given(rho=loads)
    def test_p0_equals_idle_fraction(self, rho):
        dist = md1_queue_distribution(rho, 200)
        assert abs(dist[0] - (1 - rho)) < 5e-3

    @settings(max_examples=25)
    @given(rho=loads, n=st.integers(min_value=1, max_value=50))
    def test_tail_decreasing_in_n(self, rho, n):
        assert md1_tail_probability(rho, n) >= md1_tail_probability(
            rho, n + 1
        ) - 1e-12

    @settings(max_examples=25)
    @given(rho=st.floats(min_value=0.01, max_value=0.9))
    def test_mean_bounded_by_distribution_mean(self, rho):
        dist = md1_queue_distribution(rho, 400)
        empirical = sum(i * p for i, p in enumerate(dist))
        theoretical = md1_mean_queue(rho)
        assert abs(empirical - theoretical) < max(0.05, 0.1 * theoretical)


class TestParallelismProperties:
    B = 12_800_000_000_000

    @given(size=st.integers(min_value=64, max_value=9000))
    def test_standard_at_least_packet_rate_over_clock(self, size):
        p = standard_parallelism(self.B, size)
        assert p > 0

    @given(size=st.integers(min_value=64, max_value=9000))
    def test_stardust_independent_of_size(self, size):
        assert stardust_parallelism(self.B, size) == stardust_parallelism(
            self.B, 64
        )

    @given(
        size=st.integers(min_value=64, max_value=8999),
        bus=st.sampled_from([64, 128, 256, 512]),
    )
    def test_parallelism_never_drops_when_size_crosses_boundary(
        self, size, bus
    ):
        # Crossing a bus boundary can only add slots (sawtooth up).
        below = standard_parallelism(self.B, size, bus_bytes=bus)
        above = standard_parallelism(self.B, size + 1, bus_bytes=bus)
        if size % bus == 0:
            assert above > below
        # (between boundaries the curve declines smoothly; both cases
        # are covered by the boundary assertion plus positivity.)

    @given(
        nbytes=st.integers(min_value=0, max_value=10**7),
        payload=st.integers(min_value=1, max_value=4096),
    )
    def test_cells_for_bytes_is_exact_ceiling(self, nbytes, payload):
        assert cells_for_bytes(nbytes, payload) == math.ceil(
            nbytes / payload
        )
