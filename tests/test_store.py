"""repro.store: binary framing, shard recovery, queries, migration —
plus the result-cache correctness regressions the record format fixes."""

from __future__ import annotations

import json
import os
import struct

import pytest

from repro.experiments import (
    ResultStore,
    RunResult,
    TopologySpec,
    build_scenario,
    run_matrix,
)
from repro.experiments.store import open_store as facade_open_store
from repro.store import (
    FORMAT_VERSION,
    RecordStore,
    Shard,
    StoreFormatError,
    is_record_store,
    migrate_legacy,
    open_store,
    prefix_from_selector,
    scan_store,
    store_records,
    store_results,
    verify_store,
)
from repro.store.format import (
    BlockCorruptError,
    CODEC_BZ2,
    CODEC_RAW,
    CODEC_ZLIB,
    TruncatedBlockError,
    encode_block,
    encode_shard_header,
    read_block,
    read_shard_header,
)
from repro.store.synth import fill_store, synthetic_cells
from repro.sim.units import MICROSECOND

#: Same tiny topology the experiments tests use, so runner-integration
#: tests stay fast.
TINY = TopologySpec(
    "one_tier", dict(num_fas=3, uplinks_per_fa=2, hosts_per_fa=1)
)


def tiny_permutation(kind: str = "stardust", seed: int = 3, **updates):
    spec = build_scenario(
        "permutation",
        kind=kind,
        seed=seed,
        topology=TINY,
        warmup_ns=100 * MICROSECOND,
        measure_ns=400 * MICROSECOND,
    )
    return spec.with_updates(**updates) if updates else spec


# ----------------------------------------------------------------------
# Binary framing
# ----------------------------------------------------------------------


class TestFormat:
    PAYLOADS = [b'{"key":"a"}', b'{"key":"b"}' * 40, b"x"]

    @pytest.mark.parametrize("codec", [CODEC_RAW, CODEC_ZLIB, CODEC_BZ2])
    def test_block_round_trip(self, codec):
        block = encode_block(self.PAYLOADS, codec)
        payloads, end = read_block(block, 0)
        assert payloads == self.PAYLOADS
        assert end == len(block)

    def test_flipped_byte_fails_block_crc(self):
        block = bytearray(encode_block(self.PAYLOADS, CODEC_ZLIB))
        block[len(block) // 2] ^= 0xFF
        with pytest.raises(BlockCorruptError):
            read_block(bytes(block), 0)

    def test_truncated_block_is_distinguished(self):
        block = encode_block(self.PAYLOADS, CODEC_ZLIB)
        with pytest.raises(TruncatedBlockError):
            read_block(block[:-3], 0)
        # ... and a corrupt magic is NOT a truncation:
        garbled = b"XXXX" + block[4:]
        with pytest.raises(BlockCorruptError) as excinfo:
            read_block(garbled, 0)
        assert not isinstance(excinfo.value, TruncatedBlockError)

    def test_shard_header_round_trip(self):
        meta = {"shard": 3, "num_shards": 8}
        header = encode_shard_header(meta)
        parsed, first_block = read_shard_header(header + b"tail")
        assert parsed == meta
        assert first_block == len(header)

    def test_newer_format_version_is_refused(self):
        header = bytearray(encode_shard_header({}))
        struct.pack_into("<H", header, 8, FORMAT_VERSION + 1)
        with pytest.raises(StoreFormatError, match="newer"):
            read_shard_header(bytes(header))


# ----------------------------------------------------------------------
# Shard files: recovery paths
# ----------------------------------------------------------------------


def _records(tag: str, n: int):
    return [
        (
            f"{tag}{i:03d}",
            f"scenario={tag}/{i:03d}",
            json.dumps({"key": f"{tag}{i:03d}", "spec_key": f"scenario={tag}/{i:03d}"}).encode(),
        )
        for i in range(n)
    ]


class TestShardRecovery:
    def test_append_get_round_trip(self, tmp_path):
        shard = Shard(tmp_path / "s.rsd", {"shard": 0})
        records = _records("a", 5)
        shard.append(records)
        for key, _, payload in records:
            assert shard.get(key) == payload
        assert shard.get("missing") is None
        assert len(shard) == 5

    def test_corrupt_block_is_skipped_and_scan_continues(self, tmp_path):
        path = tmp_path / "s.rsd"
        shard = Shard(path, {"shard": 0})
        first = _records("a", 4)
        second = _records("b", 4)
        span = shard.append(first)
        shard.append(second)
        data = bytearray(path.read_bytes())
        data[(span[0] + span[1]) // 2] ^= 0xFF  # inside block 1
        path.write_bytes(data)

        reopened = Shard(path, {"shard": 0})
        scanned = {key for key, _, _ in reopened.scan()}
        assert scanned == {key for key, _, _ in second}
        assert reopened.corrupt_blocks >= 1
        # Index entries into the bad block fail their CRC on read and
        # are reported missing, never served corrupted.
        assert reopened.get("b001") is not None

    def test_torn_tail_is_truncated_on_next_append(self, tmp_path):
        path = tmp_path / "s.rsd"
        shard = Shard(path, {"shard": 0})
        shard.append(_records("a", 4))
        shard.append(_records("b", 4))
        os.truncate(path, path.stat().st_size - 5)  # kill mid-append

        reopened = Shard(path, {"shard": 0})
        assert {k for k, _, _ in reopened.scan()} == {
            k for k, _, _ in _records("a", 4)
        }
        reopened.append(_records("c", 2))
        final = Shard(path, {"shard": 0})
        keys = {k for k, _, _ in final.scan()}
        assert keys == {"a000", "a001", "a002", "a003", "c000", "c001"}
        assert final.corrupt_blocks == 0

    def test_index_sidecar_self_heals(self, tmp_path):
        path = tmp_path / "s.rsd"
        shard = Shard(path, {"shard": 0})
        records = _records("a", 6)
        shard.append(records[:3])
        shard.append(records[3:])
        sidecar = path.with_suffix(".rsx")
        lines = sidecar.read_text().splitlines()
        sidecar.write_text(lines[0] + "\n{not json\n")

        reopened = Shard(path, {"shard": 0})
        for key, _, payload in records:
            assert reopened.get(key) == payload
        # The sidecar was rebuilt from the shard bytes, not trusted.
        healed = Shard(path, {"shard": 0})
        assert len(healed) == 6

    def test_missing_sidecar_is_rebuilt(self, tmp_path):
        path = tmp_path / "s.rsd"
        shard = Shard(path, {"shard": 0})
        shard.append(_records("a", 3))
        path.with_suffix(".rsx").unlink()
        reopened = Shard(path, {"shard": 0})
        assert len(reopened) == 3


# ----------------------------------------------------------------------
# RecordStore
# ----------------------------------------------------------------------


class TestRecordStore:
    def test_round_trip_and_buffered_reads(self, tmp_path):
        store = RecordStore(tmp_path, flush_records=1000)
        cells = list(synthetic_cells(10))
        for spec, result in cells:
            store.put(spec, result)
        # Un-flushed records must still be visible to get()...
        assert store.get(cells[0][0]).to_dict() == cells[0][1].to_dict()
        store.flush()
        # ... and to a brand-new handle after flush.
        fresh = RecordStore(tmp_path)
        for spec, result in cells:
            assert fresh.get(spec).to_dict() == result.to_dict()
        assert len(fresh) == 10

    def test_prefix_query_matches_brute_force(self, tmp_path):
        store = RecordStore(tmp_path)
        cells = list(synthetic_cells(45))
        fill_store(store, 45)
        for selector in (
            "scenario=incast",
            "scenario=incast/fabric=push",
            "scenario=mixed/fabric=push/transport=dctcp",
            "fabric=push",  # no match: selectors are prefixes
            "",
        ):
            got = {r["key"] for r in store.iter_records(selector)}
            prefix = prefix_from_selector(selector)
            expect = {
                spec.content_hash()
                for spec, _ in cells
                if f"scenario={spec.scenario}/fabric={spec.fabric}"
                f"/transport={spec.transport}/seed={spec.seed:08d}"
                f"/{spec.content_hash()}".startswith(prefix)
            }
            assert got == expect, selector

    def test_uninstrumented_put_replaces_instrumented_record(self, tmp_path):
        # The record-store version of the stale-sidecar rule: telemetry
        # presence is part of the stored value.
        store = RecordStore(tmp_path, flush_records=1)
        spec, result = next(synthetic_cells(1))
        result.telemetry = {"schema": 1, "series": [], "spans": []}
        store.put(spec, result)
        assert store.get(spec).telemetry is not None

        result.telemetry = None
        store.put(spec, result)
        assert store.get(spec).telemetry is None

    def test_tmp_orphans_swept_on_open(self, tmp_path):
        (tmp_path / "dead.tmp").write_text("leftover")
        RecordStore(tmp_path)
        assert not (tmp_path / "dead.tmp").exists()

    def test_clear_removes_shards_keeps_meta(self, tmp_path):
        store = RecordStore(tmp_path)
        fill_store(store, 12)
        assert store.clear() == 12
        assert len(RecordStore(tmp_path)) == 0
        assert is_record_store(tmp_path)

    def test_newer_store_format_is_refused(self, tmp_path):
        RecordStore(tmp_path)
        meta_path = tmp_path / "store.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreFormatError):
            RecordStore(tmp_path)


class TestOpenStore:
    def test_fresh_directory_gets_record_format(self, tmp_path):
        assert isinstance(open_store(tmp_path / "new"), RecordStore)

    def test_legacy_cells_keep_legacy_format(self, tmp_path):
        legacy = ResultStore(tmp_path)
        spec, result = next(synthetic_cells(1))
        legacy.put(spec, result)
        opened = open_store(tmp_path)
        assert isinstance(opened, ResultStore)
        assert facade_open_store(tmp_path).get(spec) is not None

    def test_forced_formats(self, tmp_path):
        assert isinstance(
            open_store(tmp_path / "a", "record"), RecordStore
        )
        assert isinstance(
            open_store(tmp_path / "b", "legacy"), ResultStore
        )
        with pytest.raises(ValueError):
            open_store(tmp_path, "parquet")


# ----------------------------------------------------------------------
# Queries & verification
# ----------------------------------------------------------------------


class TestQuery:
    def test_scan_matches_indexed_reads(self, tmp_path):
        fill_store(RecordStore(tmp_path), 30)
        indexed = store_records(tmp_path, "scenario=uniform_random")
        scanned = scan_store(tmp_path, "scenario=uniform_random").records
        assert indexed == scanned
        parallel = store_records(
            tmp_path, "scenario=uniform_random", processes=3
        )
        assert parallel == indexed

    def test_verify_counts_corruption(self, tmp_path):
        fill_store(RecordStore(tmp_path), 40)
        clean = verify_store(tmp_path)
        assert clean["corrupt_blocks"] == 0
        assert clean["records"] == 40

        shard = max(
            tmp_path.glob("*.rsd"), key=lambda p: p.stat().st_size
        )
        data = bytearray(shard.read_bytes())
        data[len(data) // 2] ^= 0xFF
        shard.write_bytes(data)
        dirty = verify_store(tmp_path)
        assert dirty["corrupt_blocks"] >= 1
        assert 0 < dirty["records"] < 40

    def test_store_results_speaks_both_formats(self, tmp_path):
        legacy_root = tmp_path / "legacy"
        record_root = tmp_path / "record"
        legacy = ResultStore(legacy_root)
        record = RecordStore(record_root)
        for spec, result in synthetic_cells(15):
            legacy.put(spec, result)
            record.put(spec, result)
        record.flush()
        a = [r.to_dict() for r in store_results(legacy_root, "scenario=incast")]
        b = [r.to_dict() for r in store_results(record_root, "scenario=incast")]
        assert a == b
        assert a  # the selector actually matched something


class TestMigration:
    def test_round_trip_is_bit_identical(self, tmp_path):
        src, dst = tmp_path / "legacy", tmp_path / "record"
        legacy = ResultStore(src)
        cells = list(synthetic_cells(25))
        for spec, result in cells:
            legacy.put(spec, result)
        report = migrate_legacy(src, dst)
        assert report.cells == 25
        migrated = RecordStore(dst)
        for spec, result in cells:
            assert migrated.get(spec).to_dict() == result.to_dict()

    def test_sidecar_telemetry_lands_in_record(self, tmp_path):
        src, dst = tmp_path / "legacy", tmp_path / "record"
        legacy = ResultStore(src)
        spec, result = next(synthetic_cells(1))
        result.telemetry = {"schema": 1, "series": [], "spans": [],
                            "samples": 7}
        legacy.put(spec, result)  # writes cell + .telemetry.jsonl sidecar
        report = migrate_legacy(src, dst)
        assert report.with_telemetry == 1
        got = RecordStore(dst).get(spec)
        assert got.telemetry["samples"] == 7

    def test_unreadable_cells_are_skipped_not_fatal(self, tmp_path):
        src, dst = tmp_path / "legacy", tmp_path / "record"
        legacy = ResultStore(src)
        for spec, result in synthetic_cells(3):
            legacy.put(spec, result)
        (src / "broken.json").write_text("{nope")
        report = migrate_legacy(src, dst)
        assert report.cells == 3
        assert report.skipped == 1

    def test_refuses_in_place_migration(self, tmp_path):
        with pytest.raises(ValueError):
            migrate_legacy(tmp_path, tmp_path)


# ----------------------------------------------------------------------
# Legacy ResultStore regressions
# ----------------------------------------------------------------------


class TestLegacyStoreRegressions:
    def test_uninstrumented_put_retires_stale_sidecar(self, tmp_path):
        store = ResultStore(tmp_path)
        spec, result = next(synthetic_cells(1))
        result.telemetry = {"schema": 1, "series": [], "spans": []}
        store.put(spec, result)
        assert store.telemetry_path_for(spec).exists()

        result.telemetry = None
        store.put(spec, result)
        assert not store.telemetry_path_for(spec).exists()
        assert store.get(spec).telemetry is None

    def test_tmp_orphans_swept_on_open_and_clear(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "abc123.tmp").write_text("killed writer")
        store = ResultStore(tmp_path)
        assert not (tmp_path / "abc123.tmp").exists()
        (tmp_path / "def456.tmp").write_text("killed writer")
        store.clear()
        assert not (tmp_path / "def456.tmp").exists()

    def test_from_dict_tolerates_unknown_keys(self):
        spec, result = next(synthetic_cells(1))
        data = result.to_dict()
        data["a_future_field"] = {"anything": 1}
        rebuilt = RunResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------


class TestRunnerIntegration:
    def test_run_matrix_caches_on_record_store(self, tmp_path):
        store = RecordStore(tmp_path)
        specs = [tiny_permutation(seed=s) for s in (3, 4)]
        first = run_matrix(specs, store=store)
        assert store.hits == 0
        # run_matrix flushed, so a fresh handle sees both cells.
        fresh = RecordStore(tmp_path)
        second = run_matrix(specs, store=fresh)
        assert second == first
        assert fresh.hits == 2

    def test_telemetry_request_reruns_uninstrumented_cache(self, tmp_path):
        from repro.telemetry.probes import TelemetryConfig

        store = RecordStore(tmp_path)
        spec = tiny_permutation()
        run_matrix([spec], store=store)
        assert store.get(spec).telemetry is None

        instrumented = spec.with_updates(
            telemetry=TelemetryConfig(sample_interval_ns=50_000).to_dict()
        )
        # Same content hash: the uninstrumented cell would satisfy the
        # lookup, silently dropping the requested instrumentation.
        assert instrumented.content_hash() == spec.content_hash()
        messages = []
        results = run_matrix(
            [instrumented], store=store, progress=messages.append
        )
        assert results[0].telemetry is not None
        assert any("re-running" in m for m in messages)
        # The instrumented re-run replaced the stored cell.
        assert store.get(instrumented).telemetry is not None

    def test_instrumented_cache_hit_still_serves(self, tmp_path):
        from repro.telemetry.probes import TelemetryConfig

        store = RecordStore(tmp_path)
        spec = tiny_permutation(
            telemetry=TelemetryConfig(sample_interval_ns=50_000).to_dict()
        )
        run_matrix([spec], store=store)
        misses = store.misses
        run_matrix([spec], store=store)
        assert store.misses == misses  # served from cache

    def test_legacy_store_telemetry_rerun(self, tmp_path):
        # The same regression through the legacy format: a stale
        # uninstrumented cell must not satisfy an instrumented request.
        from repro.telemetry.probes import TelemetryConfig

        store = ResultStore(tmp_path)
        spec = tiny_permutation()
        run_matrix([spec], store=store)
        instrumented = spec.with_updates(
            telemetry=TelemetryConfig(sample_interval_ns=50_000).to_dict()
        )
        results = run_matrix([instrumented], store=store)
        assert results[0].telemetry is not None


# ----------------------------------------------------------------------
# Synthetic sweep determinism (what the nightly job leans on)
# ----------------------------------------------------------------------


class TestSynth:
    def test_cells_are_deterministic(self):
        a = [
            (s.content_hash(), r.to_dict())
            for s, r in synthetic_cells(20, seed=9)
        ]
        b = [
            (s.content_hash(), r.to_dict())
            for s, r in synthetic_cells(20, seed=9)
        ]
        assert a == b

    def test_specs_are_valid_and_results_sorted(self):
        spec, result = next(synthetic_cells(1))
        assert spec.content_hash() == result.spec_hash
        assert result.flow_rates_gbps == sorted(result.flow_rates_gbps)
