"""Unit tests: control plane, config validation, reachability monitor."""

import pytest

from repro.core.cell import VoqId
from repro.core.config import StardustConfig
from repro.core.control import (
    ControlPlane,
    CreditGrant,
    VoqDrained,
    VoqStatus,
)
from repro.core.reachability import ReachabilityMonitor
from repro.net.addressing import PortAddress
from repro.sim.engine import Simulator
from repro.sim.units import MICROSECOND

VOQ = VoqId(dst=PortAddress(2, 0))


class Endpoint:
    def __init__(self):
        self.messages = []

    def on_control(self, message):
        self.messages.append(message)


class TestControlPlane:
    def test_delivery_with_delay(self):
        sim = Simulator()
        plane = ControlPlane(sim, lambda s, d: 500)
        ep = Endpoint()
        plane.register(1, ep)
        plane.send(0, 1, CreditGrant(voq=VOQ, credit_bytes=4096))
        sim.run(until=499)
        assert ep.messages == []
        sim.run(until=500)
        assert len(ep.messages) == 1

    def test_delay_function_receives_endpoints(self):
        sim = Simulator()
        seen = []

        def delay(src, dst):
            seen.append((src, dst))
            return 1

        plane = ControlPlane(sim, delay)
        plane.register(7, Endpoint())
        plane.send(3, 7, VoqDrained(ingress_fa=3, voq=VOQ))
        assert seen == [(3, 7)]

    def test_unknown_destination_raises(self):
        plane = ControlPlane(Simulator(), lambda s, d: 1)
        with pytest.raises(KeyError):
            plane.send(0, 9, VoqDrained(ingress_fa=0, voq=VOQ))

    def test_double_register_rejected(self):
        plane = ControlPlane(Simulator(), lambda s, d: 1)
        plane.register(1, Endpoint())
        with pytest.raises(ValueError):
            plane.register(1, Endpoint())

    def test_message_count(self):
        sim = Simulator()
        plane = ControlPlane(sim, lambda s, d: 1)
        plane.register(1, Endpoint())
        for _ in range(5):
            plane.send(0, 1, VoqStatus(ingress_fa=0, voq=VOQ,
                                       enqueued_bytes=100))
        assert plane.messages_sent == 5


class TestConfigValidation:
    def test_defaults_valid(self):
        StardustConfig()

    def test_header_must_fit_cell(self):
        with pytest.raises(ValueError):
            StardustConfig(cell_size_bytes=64, cell_header_bytes=64)

    def test_credit_must_cover_cell(self):
        with pytest.raises(ValueError):
            StardustConfig(credit_size_bytes=100, cell_size_bytes=256,
                           cell_header_bytes=16)

    def test_watermark_ordering(self):
        with pytest.raises(ValueError):
            StardustConfig(egress_high_watermark=0.4,
                           egress_low_watermark=0.6)

    def test_negative_speedup_rejected(self):
        with pytest.raises(ValueError):
            StardustConfig(credit_speedup=-0.01)

    def test_throttle_factor_at_least_one(self):
        with pytest.raises(ValueError):
            StardustConfig(fci_throttle_factor=0.9)

    def test_cell_payload_property(self):
        cfg = StardustConfig(cell_size_bytes=256, cell_header_bytes=16)
        assert cfg.cell_payload_bytes == 240

    def test_zero_traffic_classes_rejected(self):
        with pytest.raises(ValueError):
            StardustConfig(traffic_classes=0)


class TestReachabilityMonitor:
    PERIOD = 10 * MICROSECOND

    def make(self):
        sim = Simulator()
        changes = []
        monitor = ReachabilityMonitor(
            sim, self.PERIOD, up_threshold=3, miss_threshold=3,
            on_change=lambda: changes.append(sim.now),
        )
        return sim, monitor, changes

    def test_link_needs_up_threshold_messages(self):
        sim, monitor, changes = self.make()
        monitor.track(1)
        monitor.heard(1, frozenset({5}))
        monitor.heard(1, frozenset({5}))
        assert not monitor.alive(1)
        monitor.heard(1, frozenset({5}))
        assert monitor.alive(1)
        assert monitor.reachable_via(1) == frozenset({5})

    def test_silence_declares_link_down(self):
        sim, monitor, changes = self.make()
        monitor.track(1)
        for _ in range(3):
            monitor.heard(1, frozenset({5}))
        assert monitor.alive(1)
        # No more messages: after miss_threshold periods the sweeper
        # kills the link.
        sim.run(until=self.PERIOD * 6)
        assert not monitor.alive(1)
        assert monitor.reachable_via(1) == frozenset()
        assert monitor.links_declared_down == 1

    def test_recovery_needs_fresh_threshold(self):
        sim, monitor, changes = self.make()
        monitor.track(1)
        for _ in range(3):
            monitor.heard(1, frozenset({5}))
        sim.run(until=self.PERIOD * 6)
        assert not monitor.alive(1)
        monitor.heard(1, frozenset({5}))
        assert not monitor.alive(1)  # one message is not enough
        monitor.heard(1, frozenset({5}))
        monitor.heard(1, frozenset({5}))
        assert monitor.alive(1)
        assert monitor.links_declared_up == 2  # initial + recovery

    def test_set_change_triggers_callback(self):
        sim, monitor, changes = self.make()
        monitor.track(1)
        for _ in range(3):
            monitor.heard(1, frozenset({5}))
        n = len(changes)
        monitor.heard(1, frozenset({5, 6}))
        assert len(changes) == n + 1

    def test_same_set_no_callback(self):
        sim, monitor, changes = self.make()
        monitor.track(1)
        for _ in range(3):
            monitor.heard(1, frozenset({5}))
        n = len(changes)
        monitor.heard(1, frozenset({5}))
        assert len(changes) == n

    def test_dead_link_reports_empty_reachability(self):
        sim, monitor, _ = self.make()
        monitor.track(1)
        assert monitor.reachable_via(1) == frozenset()
        assert not monitor.alive(1)

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ReachabilityMonitor(sim, 0, 1, 1, lambda: None)
        with pytest.raises(ValueError):
            ReachabilityMonitor(sim, 100, 0, 1, lambda: None)
